"""Tests for the exporter layer (console/CSV/JSON artifacts)."""

from __future__ import annotations

import json

import pytest

from repro.metrics.export import (
    Artifact,
    TableData,
    cell_text,
    render_console,
    render_csv,
    render_json,
)


def small_table() -> TableData:
    return TableData(
        name="demo",
        columns=("name", "rate", "ok"),
        rows=(("a", 1.5, True), ("b", 0.25, False)),
        formats=(None, ".2f", None),
    )


class TestCellText:
    def test_none_renders_empty(self):
        assert cell_text(None) == ""

    def test_bools_lowercase(self):
        assert cell_text(True) == "true"
        assert cell_text(False) == "false"

    def test_floats_use_shortest_round_trip_repr(self):
        assert cell_text(0.1) == "0.1"
        assert cell_text(1 / 3) == repr(1 / 3)

    def test_ints_and_strings_pass_through(self):
        assert cell_text(7) == "7"
        assert cell_text("x") == "x"


class TestTableData:
    def test_row_width_must_match_columns(self):
        with pytest.raises(ValueError, match="cells"):
            TableData(name="t", columns=("a", "b"), rows=(("only",),))

    def test_cells_must_be_scalars(self):
        with pytest.raises(ValueError, match="scalars"):
            TableData(name="t", columns=("a",), rows=(([1, 2],),))

    def test_needs_a_column(self):
        with pytest.raises(ValueError, match="column"):
            TableData(name="t", columns=())

    def test_formats_must_cover_every_column(self):
        with pytest.raises(ValueError, match="formats"):
            TableData(name="t", columns=("a", "b"), formats=(".2f",))

    def test_display_rows_apply_formats(self):
        table = small_table()
        assert table.display_rows() == [
            ["a", "1.50", "true"], ["b", "0.25", "false"],
        ]

    def test_display_skips_formats_for_none(self):
        table = TableData(
            name="t", columns=("v",), rows=((None,),), formats=(".2f",)
        )
        assert table.display_rows() == [[""]]


class TestRenderers:
    def test_console_titles_each_table(self):
        text = render_console([small_table()])
        assert text.startswith("demo:\n")
        assert "1.50" in text  # format applied

    def test_csv_blocks_with_comment_headers(self):
        text = render_csv([small_table()])
        lines = text.splitlines()
        assert lines[0] == "# demo"
        assert lines[1] == "name,rate,ok"
        assert lines[2] == "a,1.5,true"  # raw value, not the display format
        assert text.endswith("\n")

    def test_csv_quotes_special_cells(self):
        table = TableData(
            name="t", columns=("v",), rows=(('he said "hi", twice',),)
        )
        assert '"he said ""hi"", twice"' in render_csv([table])

    def test_json_is_canonical(self):
        text = render_json([small_table()], meta={"z": 1, "a": 2})
        payload = json.loads(text)
        assert payload["meta"] == {"z": 1, "a": 2}
        assert payload["tables"]["demo"]["rows"][0] == ["a", 1.5, True]
        # Canonical form: sorted keys, indent 2, single trailing newline.
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def test_renderers_are_deterministic(self):
        tables = [small_table()]
        assert render_csv(tables) == render_csv(tables)
        assert render_json(tables) == render_json(tables)
        assert render_console(tables) == render_console(tables)


class TestArtifact:
    def test_needs_a_name(self):
        with pytest.raises(ValueError, match="name"):
            Artifact(name="", tables=(small_table(),))

    def test_write_emits_json_and_csv(self, tmp_path):
        artifact = Artifact(name="demo", tables=(small_table(),),
                            meta={"k": "v"})
        paths = artifact.write(tmp_path)
        assert [p.name for p in paths] == ["demo.json", "demo.csv"]
        assert paths[0].read_text() == artifact.json_text()
        assert paths[1].read_text() == artifact.csv_text()

    def test_markdown_console_form(self):
        artifact = Artifact(name="demo", tables=(small_table(),))
        md = artifact.console_text(markdown=True)
        header = md.splitlines()[1]
        assert header.startswith("| name ") and header.endswith("|")
        assert "|---" in md  # the markdown separator row


class TestFaultTable:
    def test_records_become_rows(self):
        from repro.metrics.export import fault_table
        from repro.simulation.failures import FaultRecord

        table = fault_table([
            FaultRecord(time=1.0, kind="fail", target="m1", count=1),
            FaultRecord(time=2.0, kind="degrade", target="m1", count=2,
                        factor=2.5),
            FaultRecord(time=3.0, kind="cut", target="m1->m2", count=0),
        ])
        assert table.name == "faults"
        assert table.columns == ("time", "kind", "target", "count", "factor")
        assert table.rows == (
            (1.0, "fail", "m1", 1, None),
            (2.0, "degrade", "m1", 2, 2.5),
            (3.0, "cut", "m1->m2", 0, None),
        )

    def test_scenario_result_exports_the_fault_timeline(self):
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenario import AppSpec, Scenario, TraceSpec
        from repro.metrics.export import scenario_result_tables
        from repro.pipeline.profiles import ModelProfile
        from repro.simulation.failures import FailureEvent

        def scenario(failures=()):
            return Scenario(
                name="faulty",
                app=AppSpec.chained(
                    ["ex_a"], slo=0.3, pipeline="export-pipe",
                    profiles=[ModelProfile("ex_a", base=0.01,
                                           per_item=0.003, max_batch=8)],
                ),
                trace=TraceSpec(name="poisson", duration=3.0, base_rate=40.0),
                policy="Naive",
                workers=2,
                failures=failures,
            )

        faulty = run_scenario(scenario(
            (FailureEvent(time=1.0, module_id="m1", workers=1,
                          downtime=0.5),),
        ))
        tables = {t.name: t for t in scenario_result_tables(faulty)}
        assert [r[1] for r in tables["faults"].rows] == ["fail", "recover"]
        clean = run_scenario(scenario())
        assert "faults" not in {
            t.name for t in scenario_result_tables(clean)
        }
