"""Tests for study execution: determinism, caching, bisection, goldens."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.studies import (
    load_study_file,
    run_capacity_study,
    run_chaos_study,
    run_interference_study,
    run_study,
)

from .test_spec import capacity_study, chaos_study, interference_study

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples" / "studies"
GOLDENS = REPO / "benchmarks" / "goldens" / "studies"


class TestInterferenceRunner:
    def test_rows_cover_the_grid_in_order(self):
        study = interference_study()
        result = run_interference_study(study, cache_dir=None)
        table = result.artifact.tables[0]
        assert table.name == "interference"
        assert table.columns[:2] == ("admission.slack", "aggressor_rate")
        assert [row[:2] for row in table.rows] == [
            (1.5, 20.0), (1.5, 80.0), (3.0, 20.0), (3.0, 80.0),
        ]
        assert result.cells_total == 4
        assert result.cells_simulated == 4
        assert result.cells_cached == 0

    def test_more_aggressor_load_never_helps_the_victim(self):
        result = run_interference_study(interference_study(), cache_dir=None)
        by_slack: dict = {}
        for row in result.artifact.tables[0].rows:
            by_slack.setdefault(row[0], []).append(row[3])  # good_fraction
        for fractions in by_slack.values():
            assert fractions == sorted(fractions, reverse=True)

    def test_serial_and_pooled_artifacts_are_byte_identical(self):
        study = interference_study()
        serial = run_interference_study(study, workers=1, cache_dir=None)
        pooled = run_interference_study(study, workers=2, cache_dir=None)
        assert pooled.artifact.json_text() == serial.artifact.json_text()
        assert pooled.artifact.csv_text() == serial.artifact.csv_text()

    def test_cache_reuse_skips_every_cell(self, tmp_path):
        study = interference_study()
        first = run_interference_study(study, cache_dir=tmp_path)
        second = run_interference_study(study, cache_dir=tmp_path)
        assert first.cells_simulated == 4
        assert second.cells_simulated == 0
        assert second.cells_cached == 4
        assert second.artifact.json_text() == first.artifact.json_text()

    def test_meta_pins_the_base_fingerprint(self):
        study = interference_study()
        result = run_interference_study(study, cache_dir=None)
        assert result.artifact.meta["base_fingerprint"] == (
            study.base.fingerprint()
        )
        assert result.artifact.meta["cells"] == 4


class TestCapacityRunner:
    def test_bisection_finds_the_smallest_satisfying_count(self, tmp_path):
        study = capacity_study()
        result = run_capacity_study(study, cache_dir=tmp_path)
        capacity = result.artifact.tables[0]
        assert capacity.name == "capacity"
        for rate, required, fraction, satisfiable in capacity.rows:
            assert satisfiable
            assert fraction >= study.target
            assert study.min_workers <= required <= study.max_workers
        by_rate = {row[0]: row[1] for row in capacity.rows}
        assert by_rate[30.0] <= by_rate[90.0]
        # Every probed (rate, workers) point is on record for the paper.
        probes = result.artifact.tables[1]
        assert probes.name == "probes"
        assert len(probes.rows) == result.cells_total

    def test_probes_bracket_the_answer(self, tmp_path):
        study = capacity_study()
        result = run_capacity_study(study, cache_dir=tmp_path)
        required = {r: n for r, n, _, _ in result.artifact.tables[0].rows}
        for rate, workers, _, meets in result.artifact.tables[1].rows:
            if workers >= required[rate]:
                assert meets
            else:
                assert not meets

    def test_unsatisfiable_rate_reports_none(self, tmp_path):
        study = capacity_study(rates=(2000.0,), max_workers=1)
        result = run_capacity_study(study, cache_dir=tmp_path)
        ((rate, required, fraction, satisfiable),) = (
            result.artifact.tables[0].rows
        )
        assert rate == 2000.0
        assert required is None
        assert not satisfiable
        assert fraction < study.target

    def test_replanning_only_simulates_new_probes(self, tmp_path):
        study = capacity_study()
        first = run_capacity_study(study, cache_dir=tmp_path)
        second = run_capacity_study(study, cache_dir=tmp_path)
        assert first.cells_simulated == first.cells_total
        assert second.cells_simulated == 0
        assert second.cells_cached == second.cells_total
        assert second.artifact.json_text() == first.artifact.json_text()

    def test_worker_count_does_not_change_the_artifact(self, tmp_path):
        study = capacity_study()
        one = run_capacity_study(study, workers=1, cache_dir=None)
        two = run_capacity_study(study, workers=2, cache_dir=None)
        assert one.artifact.json_text() == two.artifact.json_text()


class TestChaosRunner:
    def test_rows_cover_the_grid_in_order(self):
        study = chaos_study()
        result = run_chaos_study(study, cache_dir=None)
        table = result.artifact.tables[0]
        assert table.name == "chaos"
        assert table.columns[:2] == ("resilience.m1.timeout", "fault_seed")
        assert table.columns[2:] == (
            "good_fraction", "min_window_good", "recover_s", "retries",
            "hedges", "timeouts", "fallbacks", "amplification",
        )
        assert [row[:2] for row in table.rows] == [
            (0.15, 0), (0.15, 1), (0.4, 0), (0.4, 1),
        ]
        assert result.cells_total == 4
        assert result.cells_simulated == 4

    def test_serial_and_pooled_artifacts_are_byte_identical(self):
        study = chaos_study()
        serial = run_chaos_study(study, workers=1, cache_dir=None)
        pooled = run_chaos_study(study, workers=2, cache_dir=None)
        assert pooled.artifact.json_text() == serial.artifact.json_text()
        assert pooled.artifact.csv_text() == serial.artifact.csv_text()

    def test_cache_round_trips_the_windowed_columns(self, tmp_path):
        # Chaos cells run full (not lean): the availability columns need
        # per-request records, which the cell cache must reproduce.
        study = chaos_study()
        first = run_chaos_study(study, cache_dir=tmp_path)
        second = run_chaos_study(study, cache_dir=tmp_path)
        assert first.cells_simulated == 4
        assert second.cells_simulated == 0
        assert second.cells_cached == 4
        assert second.artifact.json_text() == first.artifact.json_text()

    def test_meta_pins_the_study_parameters(self):
        study = chaos_study()
        result = run_chaos_study(study, cache_dir=None)
        meta = result.artifact.meta
        assert meta["study"] == "chaos"
        assert meta["base_fingerprint"] == study.base.fingerprint()
        assert meta["cells"] == 4
        assert meta["kinds"] == list(study.kinds)


class TestRunStudyDispatch:
    def test_dispatches_by_kind(self, tmp_path):
        result = run_study(capacity_study(), cache_dir=tmp_path)
        assert result.artifact.meta["study"] == "capacity"
        result = run_study(interference_study(), cache_dir=tmp_path)
        assert result.artifact.meta["study"] == "interference"
        result = run_study(chaos_study(), cache_dir=tmp_path)
        assert result.artifact.meta["study"] == "chaos"

    def test_rejects_non_studies(self):
        with pytest.raises(TypeError, match="not a study"):
            run_study(object())


class TestCommittedGoldens:
    """The committed example studies reproduce their goldens bitwise."""

    @pytest.mark.parametrize("stem", ["interference", "capacity", "chaos"])
    def test_example_reproduces_golden_bytes(self, stem):
        study = load_study_file(EXAMPLES / f"{stem}.json")
        result = run_study(study, cache_dir=None)
        assert result.artifact.json_text() == (
            (GOLDENS / f"{stem}.json").read_text()
        )
        assert result.artifact.csv_text() == (
            (GOLDENS / f"{stem}.csv").read_text()
        )
