"""Tests for the declarative study specs (interference + capacity)."""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.scenario import (
    AppSpec,
    MultiScenario,
    Scenario,
    TenantSpec,
    TraceSpec,
)
from repro.pipeline.profiles import ModelProfile
from repro.studies import (
    CapacityStudy,
    ChaosStudy,
    InterferenceStudy,
    load_study_file,
    study_from_dict,
)


def victim_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="victim",
        app=AppSpec.chained(
            ["vic_a"],
            slo=0.30,
            pipeline="victim-pipe",
            profiles=[
                ModelProfile("vic_a", base=0.015, per_item=0.005,
                             max_batch=16),
            ],
        ),
        trace=TraceSpec(name="poisson", duration=6.0, base_rate=40.0),
        policy="PARD",
        seed=3,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def aggressor_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="aggressor",
        app=AppSpec.chained(
            ["agg_a"],
            slo=0.25,
            pipeline="aggressor-pipe",
            profiles=[
                ModelProfile("agg_a", base=0.020, per_item=0.008,
                             max_batch=8),
            ],
        ),
        trace=TraceSpec(name="poisson", duration=6.0, base_rate=30.0),
        policy="Naive",
        seed=5,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def pair_multi(**overrides) -> MultiScenario:
    defaults = dict(
        name="pair",
        tenants=(
            TenantSpec(scenario=victim_scenario()),
            TenantSpec(scenario=aggressor_scenario()),
        ),
        workers=1,
        admission={"name": "weighted-fair",
                   "params": {"backlog": 2.0, "window": 4.0, "slack": 1.5}},
        seed=0,
    )
    defaults.update(overrides)
    return MultiScenario(**defaults)


def interference_study(**overrides) -> InterferenceStudy:
    defaults = dict(
        base=pair_multi(),
        victim="victim",
        aggressor="aggressor",
        loads=(20.0, 80.0),
        axes=(("admission.slack", (1.5, 3.0)),),
        name="demo",
    )
    defaults.update(overrides)
    return InterferenceStudy(**defaults)


def capacity_study(**overrides) -> CapacityStudy:
    defaults = dict(
        base=victim_scenario(trace=TraceSpec(name="poisson", duration=6.0)),
        rates=(30.0, 90.0),
        target=0.9,
        min_workers=1,
        max_workers=4,
        name="cap",
    )
    defaults.update(overrides)
    return CapacityStudy(**defaults)


def chaos_base(**overrides) -> Scenario:
    defaults = dict(
        name="chaos-base",
        app=AppSpec.chained(
            ["cha_a", "cha_b"],
            slo=0.35,
            pipeline="chaos-pipe",
            profiles=[
                ModelProfile("cha_a", base=0.015, per_item=0.005,
                             max_batch=8),
                ModelProfile("cha_b", base=0.010, per_item=0.004,
                             max_batch=8),
            ],
        ),
        trace=TraceSpec(name="poisson", duration=4.0, base_rate=60.0),
        policy="Naive",
        seed=1,
        resilience={"m1": {"timeout": 0.2, "retry": {"max": 1,
                                                     "base": 0.02}}},
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def chaos_study(**overrides) -> ChaosStudy:
    defaults = dict(
        base=chaos_base(),
        seeds=(0, 1),
        faults=2,
        axes=(("resilience.m1.timeout", (0.15, 0.4)),),
        name="chaos-demo",
    )
    defaults.update(overrides)
    return ChaosStudy(**defaults)


class TestInterferenceSpec:
    def test_dict_round_trip(self):
        study = interference_study()
        assert study_from_dict(study.to_dict()) == study

    def test_json_round_trip(self):
        study = interference_study()
        body = json.loads(json.dumps(study.to_dict()))
        assert study_from_dict(body) == study

    def test_victim_must_be_a_tenant(self):
        with pytest.raises(ValueError, match="victim 'ghost'"):
            interference_study(victim="ghost")

    def test_roles_must_be_distinct(self):
        with pytest.raises(ValueError, match="distinct"):
            interference_study(victim="aggressor")

    def test_needs_a_multi_tenant_base(self):
        with pytest.raises(ValueError, match="multi-tenant"):
            InterferenceStudy(
                base=victim_scenario(), victim="victim",
                aggressor="aggressor", loads=(10.0,),
            )

    def test_loads_must_be_positive(self):
        with pytest.raises(ValueError, match="> 0"):
            interference_study(loads=(10.0, -1.0))
        with pytest.raises(ValueError, match="at least one"):
            interference_study(loads=())

    def test_axis_values_must_be_scalars(self):
        with pytest.raises(ValueError, match="scalars"):
            interference_study(axes=(("admission.slack", ({"a": 1},)),))
        with pytest.raises(ValueError, match="no values"):
            interference_study(axes=(("admission.slack", ()),))

    def test_axis_names_put_load_last(self):
        assert interference_study().axis_names() == [
            "admission.slack", "aggressor_rate",
        ]

    def test_expand_crosses_axes_with_loads_varying_fastest(self):
        points = interference_study().expand()
        assert len(points) == 4
        assert [vals["aggressor_rate"] for vals, _ in points] == [
            20.0, 80.0, 20.0, 80.0,
        ]
        assert [vals["admission.slack"] for vals, _ in points] == [
            1.5, 1.5, 3.0, 3.0,
        ]
        for vals, spec in points:
            tenant = dict(zip(spec.tenant_names(), spec.tenants))["aggressor"]
            assert tenant.scenario.trace.base_rate == vals["aggressor_rate"]

    def test_validate_resolves_every_grid_member(self):
        interference_study().validate()
        bad = interference_study(axes=(("tenant.victim.quota", (0,)),))
        with pytest.raises(ValueError):
            bad.validate()


class TestCapacitySpec:
    def test_dict_round_trip(self):
        study = capacity_study()
        assert study_from_dict(study.to_dict()) == study

    def test_multi_base_round_trips(self):
        study = capacity_study(base=pair_multi())
        assert study_from_dict(study.to_dict()) == study

    def test_target_range(self):
        with pytest.raises(ValueError, match="target"):
            capacity_study(target=0.0)
        with pytest.raises(ValueError, match="target"):
            capacity_study(target=1.5)

    def test_worker_bounds(self):
        with pytest.raises(ValueError, match="min_workers"):
            capacity_study(min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            capacity_study(min_workers=4, max_workers=2)

    def test_rejects_file_backed_traces(self, tmp_path):
        log = tmp_path / "arrivals.csv"
        log.write_text("0.1\n0.2\n0.3\n")
        base = victim_scenario(
            trace=TraceSpec(name="poisson", duration=6.0, path=str(log)),
        )
        with pytest.raises(ValueError, match="generator traces"):
            capacity_study(base=base)

    def test_rejects_calibrated_sizing(self):
        with pytest.raises(ValueError, match="utilization"):
            capacity_study(base=victim_scenario(utilization=0.8))

    def test_spec_at_sets_rate_and_workers(self):
        spec = capacity_study().spec_at(55.0, 3)
        assert spec.trace.base_rate == 55.0
        assert spec.workers == 3

    def test_spec_at_rates_every_tenant_of_a_multi_base(self):
        spec = capacity_study(base=pair_multi()).spec_at(25.0, 2)
        assert spec.workers == 2
        assert all(t.scenario.trace.base_rate == 25.0 for t in spec.tenants)


class TestChaosSpec:
    def test_dict_round_trip(self):
        study = chaos_study()
        assert study_from_dict(study.to_dict()) == study

    def test_json_round_trip(self):
        study = chaos_study()
        clone = study_from_dict(json.loads(json.dumps(study.to_dict())))
        assert clone == study

    def test_schedule_is_a_pure_function_of_the_seed(self):
        study = chaos_study()
        assert study.schedule(0) == study.schedule(0)
        assert study.schedule(0) != study.schedule(1)

    def test_schedule_draws_within_the_declared_bounds(self):
        study = chaos_study(seeds=tuple(range(8)), faults=3)
        duration = study.base.trace.duration
        edges = {("m1", "m2")}
        for seed in study.seeds:
            for event in study.schedule(seed):
                assert event.kind in study.kinds
                lo, hi = study.start
                assert lo * duration <= event.time <= hi * duration
                assert study.downtime[0] <= event.downtime <= study.downtime[1]
                if event.kind == "link":
                    assert (event.module_id, event.dst) in edges
                if event.kind == "degrade":
                    assert study.factor[0] <= event.factor <= study.factor[1]

    def test_link_falls_back_to_kill_without_edges(self):
        single = chaos_base(
            app=AppSpec.chained(
                ["cha_a"], slo=0.35, pipeline="chaos-solo",
                profiles=[ModelProfile("cha_a", base=0.015,
                                       per_item=0.005, max_batch=8)],
            ),
            resilience={},
        )
        study = chaos_study(base=single, kinds=("link",))
        for seed in range(4):
            assert all(e.kind == "kill" for e in study.schedule(seed))

    def test_expand_crosses_axes_with_seeds_varying_fastest(self):
        study = chaos_study()
        points = study.expand()
        assert len(points) == 4
        assert [
            (vals["resilience.m1.timeout"], vals["fault_seed"])
            for vals, _ in points
        ] == [(0.15, 0), (0.15, 1), (0.4, 0), (0.4, 1)]
        for vals, spec in points:
            assert spec.failures == study.schedule(vals["fault_seed"])
            hops = dict(spec.resilience)
            assert hops["m1"].timeout == vals["resilience.m1.timeout"]

    def test_axis_names_put_the_fault_seed_last(self):
        assert chaos_study().axis_names() == [
            "resilience.m1.timeout", "fault_seed",
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="single-cluster"):
            chaos_study(base=pair_multi())
        with pytest.raises(ValueError, match="at least one fault seed"):
            chaos_study(seeds=())
        with pytest.raises(ValueError, match="faults must be >= 1"):
            chaos_study(faults=0)
        with pytest.raises(ValueError, match="kinds"):
            chaos_study(kinds=("meteor",))
        with pytest.raises(ValueError, match="start must lie"):
            chaos_study(start=(0.5, 1.5))
        with pytest.raises(ValueError, match="downtime"):
            chaos_study(downtime=(0.0, 1.0))
        with pytest.raises(ValueError, match="factor"):
            chaos_study(factor=(1.0, 2.0))
        with pytest.raises(ValueError, match="target"):
            chaos_study(target=0.0)

    def test_validate_resolves_every_grid_member(self):
        chaos_study().validate()


class TestDispatch:
    def test_requires_an_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            study_from_dict([1, 2])

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown study kind"):
            study_from_dict({"study": "latency"})

    def test_unknown_keys_rejected(self):
        body = interference_study().to_dict()
        body["extra"] = 1
        with pytest.raises(ValueError, match="extra"):
            study_from_dict(body)

    def test_load_study_file(self, tmp_path):
        study = capacity_study()
        path = tmp_path / "cap.json"
        path.write_text(json.dumps(study.to_dict()))
        assert load_study_file(path) == study

    def test_committed_examples_parse_and_validate(self):
        examples = Path(__file__).resolve().parents[2] / "examples" / "studies"
        for name in ("interference", "capacity"):
            load_study_file(examples / f"{name}.json").validate()


class TestFrozen:
    def test_specs_are_immutable(self):
        with pytest.raises(AttributeError):
            interference_study().loads = ()
        with pytest.raises(AttributeError):
            capacity_study().target = 0.5

    def test_replace_builds_variants(self):
        study = replace(capacity_study(), target=0.5)
        assert study.target == 0.5
