"""Tests for report formatting."""

from __future__ import annotations

import pytest

from repro.metrics.report import format_table, pct


class TestFormatTable:
    def test_plain_alignment(self):
        out = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 3
        # All lines equal width.
        assert len({len(line) for line in lines}) == 1

    def test_markdown_structure(self):
        out = format_table(["x", "y"], [["1", "2"]], markdown=True)
        lines = out.splitlines()
        assert lines[0].startswith("| x")
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2].startswith("| 1")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert out == "a"

    def test_pct(self):
        assert pct(0.1234) == "12.34%"


class TestResultTables:
    def test_comparison_and_per_module_tables(self):
        from repro.experiments.runner import ExperimentConfig, run_experiment
        from repro.metrics.report import comparison_table, per_module_drop_table
        from repro.policies.naive import NaivePolicy

        config = ExperimentConfig(
            app="tm", trace="tweet", base_rate=20, duration=5.0, workers=1
        )
        results = {"Naive": run_experiment(config, NaivePolicy())}
        table = comparison_table(results)
        assert "Naive" in table and "goodput" in table
        module_table = per_module_drop_table(results)
        for mid in results["Naive"].module_ids:
            assert mid in module_table
        md = comparison_table(results, markdown=True)
        assert md.startswith("| policy")
