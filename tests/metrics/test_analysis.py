"""Tests for the metrics layer (§5.1 definitions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.analysis import (
    consumed_budget_per_module,
    dispatch_amplification,
    drop_rate_at_min_goodput,
    drop_rate_series,
    drops_per_module,
    goodput_series,
    latency_component_cdf,
    max_drop_rate,
    merge_collectors,
    min_normalized_goodput,
    normalized_goodput_series,
    per_app_summaries,
    summarize,
    time_to_recover,
)
from repro.metrics.collector import MetricsCollector
from repro.simulation.request import DropReason, Request


def completed(sent_at: float, latency: float, slo: float = 1.0,
              gpu: float = 0.01) -> Request:
    r = Request(sent_at=sent_at, slo=slo)
    v = r.begin_visit("m1", sent_at)
    v.t_batched = sent_at
    v.t_exec_start = sent_at
    v.t_exec_end = sent_at + latency
    v.batch_size = 1
    v.gpu_time = gpu
    r.mark_completed(sent_at + latency)
    return r


def dropped(sent_at: float, at: float, module: str = "m1",
            gpu: float = 0.0) -> Request:
    r = Request(sent_at=sent_at, slo=1.0)
    v = r.begin_visit(module, sent_at)
    if gpu:
        v.t_batched = sent_at
        v.t_exec_start = sent_at
        v.t_exec_end = at
        v.gpu_time = gpu
        v.batch_size = 1
    r.mark_dropped(module, DropReason.ESTIMATED_VIOLATION, at)
    return r


def collect(*requests: Request) -> MetricsCollector:
    c = MetricsCollector()
    for r in requests:
        c.record_submitted()
        c.record_request(r)
    return c


class TestSummarize:
    def test_empty(self):
        s = summarize(MetricsCollector())
        assert s.total == 0 and s.goodput == 0.0

    def test_basic_counts(self):
        c = collect(
            completed(0.0, 0.5),  # good
            completed(1.0, 2.0),  # SLO violation -> counts as dropped
            dropped(2.0, 2.1),
        )
        s = summarize(c, duration=10.0)
        assert s.total == 3
        assert s.good == 1
        assert s.completed == 2
        assert s.dropped == 2
        assert s.drop_rate == pytest.approx(2 / 3)
        assert s.goodput == pytest.approx(0.1)

    def test_invalid_rate_is_wasted_gpu_share(self):
        c = collect(
            completed(0.0, 0.5, gpu=0.03),  # good: valid gpu
            completed(1.0, 2.0, gpu=0.01),  # violates: wasted
        )
        s = summarize(c, duration=10.0)
        assert s.invalid_rate == pytest.approx(0.01 / 0.04)

    def test_slo_violating_completion_counts_as_dropped(self):
        c = collect(completed(0.0, 5.0))
        assert summarize(c, duration=1.0).dropped == 1

    def test_in_flight_request_rejected(self):
        c = MetricsCollector()
        with pytest.raises(ValueError):
            c.record_request(Request(sent_at=0.0, slo=1.0))


class TestPerApp:
    def test_merge_collectors_concatenates_books(self):
        a = collect(completed(0.0, 0.1), dropped(0.5, 0.6))
        b = collect(completed(1.0, 0.2))
        merged = merge_collectors({"a": a, "b": b})
        assert len(merged) == 3
        assert merged.submitted == 3
        # Originals untouched.
        assert len(a) == 2 and len(b) == 1
        # Sequence form works too.
        assert len(merge_collectors([a, b])) == 3

    def test_per_app_summaries_with_per_app_durations(self):
        a = collect(completed(0.0, 0.1), completed(1.0, 0.1))
        b = collect(completed(0.0, 0.1))
        out = per_app_summaries({"a": a, "b": b},
                                durations={"a": 2.0, "b": 1.0})
        assert out["a"].goodput == pytest.approx(1.0)
        assert out["b"].goodput == pytest.approx(1.0)
        assert out["a"].total == 2

    def test_per_app_summaries_scalar_duration(self):
        a = collect(completed(0.0, 0.1))
        out = per_app_summaries({"a": a}, durations=4.0)
        assert out["a"].goodput == pytest.approx(0.25)


class TestWindowedSeries:
    def build(self):
        reqs = []
        # Window [0, 10): 10 good.  Window [10, 20): 5 good, 5 dropped.
        for i in range(10):
            reqs.append(completed(i, 0.5))
        for i in range(5):
            reqs.append(completed(10 + i, 0.5))
        for i in range(5):
            reqs.append(dropped(15 + i, 15 + i + 0.1))
        return collect(*reqs)

    def test_goodput_series(self):
        starts, goods, arrivals = goodput_series(self.build(), window=10.0)
        assert list(arrivals) == [10, 10]
        assert list(goods) == [10, 5]

    def test_normalized_goodput(self):
        _, norm = normalized_goodput_series(self.build(), window=10.0)
        assert norm[0] == pytest.approx(1.0)
        assert norm[1] == pytest.approx(0.5)

    def test_min_normalized_goodput(self):
        assert min_normalized_goodput(self.build(), 10.0) == pytest.approx(0.5)

    def test_drop_rate_series_and_max(self):
        c = self.build()
        _, rates = drop_rate_series(c, window=10.0)
        assert rates[1] == pytest.approx(0.5)
        assert max_drop_rate(c, 10.0) == pytest.approx(0.5)

    def test_drop_rate_at_min_goodput(self):
        assert drop_rate_at_min_goodput(self.build(), 10.0) == pytest.approx(0.5)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            goodput_series(self.build(), window=0.0)

    def test_empty_collector(self):
        c = MetricsCollector()
        starts, goods, arrivals = goodput_series(c, 5.0)
        assert len(starts) == 0
        assert min_normalized_goodput(c, 5.0) == 0.0
        assert max_drop_rate(c, 5.0) == 0.0


class TestAvailability:
    def outage(self):
        """Good until t=10, an outage window [10, 20), recovered after."""
        reqs = []
        for i in range(10):
            reqs.append(completed(i, 0.5))
        for i in range(10):
            reqs.append(dropped(10 + i, 10 + i + 0.1))
        for i in range(10):
            reqs.append(completed(20 + i, 0.5))
        return collect(*reqs)

    def test_time_to_recover_measures_from_the_fault(self):
        # Windows starting before the fault are excluded: their sends
        # would dilute the outage with pre-fault traffic.
        assert time_to_recover(
            self.outage(), after=10.0, target=0.9, window=10.0
        ) == pytest.approx(10.0)

    def test_time_to_recover_none_when_target_never_reached(self):
        assert time_to_recover(
            self.outage(), after=10.0, target=0.9, window=30.0
        ) is None

    def test_time_to_recover_zero_when_unaffected(self):
        c = collect(*[completed(float(i), 0.1) for i in range(20)])
        assert time_to_recover(c, after=5.0, target=0.9, window=5.0) == 0.0

    def test_dispatch_amplification(self):
        c = collect(completed(0.0, 0.5), completed(1.0, 0.5))
        assert dispatch_amplification(c) == pytest.approx(1.0)
        c.res_retries = 2
        c.res_hedges = 1
        assert dispatch_amplification(c) == pytest.approx(2.5)

    def test_dispatch_amplification_empty(self):
        assert dispatch_amplification(MetricsCollector()) == 1.0

    def test_merge_collectors_folds_resilience_counters(self):
        a = collect(completed(0.0, 0.5))
        a.res_retries, a.res_hedges = 2, 1
        a.res_timeouts, a.res_fallbacks = 3, 1
        b = collect(completed(1.0, 0.5))
        b.res_retries = 1
        merged = merge_collectors([a, b])
        assert (merged.res_retries, merged.res_hedges,
                merged.res_timeouts, merged.res_fallbacks) == (3, 1, 3, 1)


class TestPerModule:
    def test_drops_per_module_shares(self):
        c = collect(
            dropped(0.0, 0.1, module="m1"),
            dropped(1.0, 1.1, module="m1"),
            dropped(2.0, 2.1, module="m2"),
            completed(3.0, 0.5),
        )
        shares = drops_per_module(c, ["m1", "m2", "m3"])
        assert shares["m1"] == pytest.approx(2 / 3)
        assert shares["m2"] == pytest.approx(1 / 3)
        assert shares["m3"] == 0.0

    def test_slo_violations_not_attributed_to_modules(self):
        c = collect(completed(0.0, 5.0))  # violates but never "dropped at"
        shares = drops_per_module(c, ["m1"])
        assert shares["m1"] == 0.0

    def test_consumed_budget_only_counts_good_requests(self):
        c = collect(completed(0.0, 0.5), completed(1.0, 5.0))
        budgets = consumed_budget_per_module(c, ["m1"])
        assert budgets["m1"] == pytest.approx(0.5)


class TestComponentCdf:
    def test_cdf_shape(self):
        c = collect(*[completed(float(i), 0.2 + 0.01 * i) for i in range(10)])
        xs, ps = latency_component_cdf(c, "exec")
        assert len(xs) == 10
        assert np.all(np.diff(xs) >= 0)
        assert ps[-1] == pytest.approx(1.0)

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            latency_component_cdf(MetricsCollector(), "nope")
