"""Package marker so relative conftest imports resolve under pytest."""
