"""Tests for goodput-under-constraints: spec, checks, report, merge, table."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.metrics.analysis import merge_collectors
from repro.metrics.collector import MetricsCollector
from repro.metrics.goodput import (
    GoodputSpec,
    constraint_checks,
    goodput_report,
    is_good,
)
from repro.metrics.report import goodput_table
from repro.simulation.request import RequestStatus


@dataclass
class FakeRequest:
    """Just enough terminal-request surface for the collector and checks."""

    rid: int = 0
    sent_at: float = 0.0
    finished_at: float = 1.0
    status: RequestStatus = RequestStatus.COMPLETED
    met_slo: bool = True
    slo: float = 5.0
    gpu_time: float = 0.1
    dropped_at_module: str | None = None
    drop_reason: None = None
    first_token_at: float | None = 0.2
    last_token_at: float | None = 0.9
    tokens_out: int = 8
    visits: dict = field(default_factory=dict)


class TestGoodputSpec:
    def test_unconstrained_by_default(self):
        assert not GoodputSpec().declared
        assert GoodputSpec(ttft=0.5).declared
        assert GoodputSpec(tpot=0.01).declared
        assert GoodputSpec(e2e=2.0).declared

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            GoodputSpec(ttft=0.0)
        with pytest.raises(ValueError):
            GoodputSpec(e2e=-1.0)

    def test_round_trip_and_unknown_keys(self):
        spec = GoodputSpec(ttft=0.5, e2e=2.0)
        assert GoodputSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError):
            GoodputSpec.from_dict({"ttfb": 0.5})


class TestConstraintChecks:
    def test_undeclared_constraints_pass_vacuously(self):
        r = FakeRequest(first_token_at=None, last_token_at=None, tokens_out=0)
        assert constraint_checks(GoodputSpec(), r) == (True, True, True)

    def test_declared_ttft_fails_without_tokens(self):
        r = FakeRequest(first_token_at=None)
        ttft_ok, _, _ = constraint_checks(GoodputSpec(ttft=10.0), r)
        assert not ttft_ok

    def test_declared_tpot_needs_two_tokens(self):
        # A single-token response has no inter-token gap to judge:
        # a declared TPOT constraint counts as not met.
        r = FakeRequest(tokens_out=1, first_token_at=0.2, last_token_at=0.2)
        _, tpot_ok, _ = constraint_checks(GoodputSpec(tpot=10.0), r)
        assert not tpot_ok

    def test_tpot_is_mean_inter_token_gap(self):
        # 8 tokens over [0.2, 0.9]: gap = 0.7 / 7 = 0.1 exactly.
        r = FakeRequest()
        assert constraint_checks(GoodputSpec(tpot=0.1), r)[1]
        assert not constraint_checks(GoodputSpec(tpot=0.09), r)[1]

    def test_e2e_measured_from_sent_at(self):
        r = FakeRequest(sent_at=1.0, finished_at=2.5)
        assert constraint_checks(GoodputSpec(e2e=1.5), r)[2]
        assert not constraint_checks(GoodputSpec(e2e=1.4), r)[2]

    def test_dropped_requests_are_never_good(self):
        r = FakeRequest(status=RequestStatus.DROPPED)
        assert not is_good(GoodputSpec(e2e=100.0), r)
        assert not is_good(GoodputSpec(), r)


def _requests() -> list[FakeRequest]:
    return [
        # Good: meets everything.
        FakeRequest(rid=1, sent_at=0.0, finished_at=1.0),
        # TTFT miss (first token late), e2e fine.
        FakeRequest(rid=2, sent_at=0.0, finished_at=1.0, first_token_at=0.6),
        # e2e miss.
        FakeRequest(rid=3, sent_at=0.0, finished_at=4.0, last_token_at=3.9),
        # Dropped: counts in total, never good.
        FakeRequest(
            rid=4, status=RequestStatus.DROPPED, met_slo=False,
            first_token_at=None, last_token_at=None, tokens_out=0,
        ),
    ]


SPEC = GoodputSpec(ttft=0.5, tpot=0.6, e2e=2.0)


class TestCollectorCounters:
    def test_streaming_counters_match_expected(self):
        collector = MetricsCollector(goodput=SPEC)
        for r in _requests():
            collector.record_request(r)
        report = goodput_report(collector, duration=2.0)
        assert report is not None
        assert (report.total, report.completed, report.good) == (4, 3, 1)
        assert (report.ttft_met, report.tpot_met, report.e2e_met) == (2, 3, 2)
        assert report.tokens_out == 24
        assert report.goodput == pytest.approx(0.5)
        assert report.good_fraction == pytest.approx(0.25)

    def test_lean_equals_full_collection(self):
        full = MetricsCollector(goodput=SPEC)
        lean = MetricsCollector(lean=True, goodput=SPEC)
        for r in _requests():
            full.record_request(r)
            lean.record_request(r)
        assert not lean.records
        assert goodput_report(lean, duration=2.0) == goodput_report(
            full, duration=2.0
        )

    def test_record_scan_fallback_agrees_with_streaming(self):
        streamed = MetricsCollector(goodput=SPEC)
        for r in _requests():
            streamed.record_request(r)
        # Hand-populated records (count == 0) force the scan path.
        scanned = MetricsCollector(goodput=SPEC)
        scanned.records.extend(streamed.records)
        assert goodput_report(scanned, duration=2.0) == goodput_report(
            streamed, duration=2.0
        )

    def test_report_none_without_declared_constraints(self):
        collector = MetricsCollector()
        collector.record_request(FakeRequest())
        assert goodput_report(collector) is None
        undeclared = MetricsCollector(goodput=GoodputSpec())
        undeclared.record_request(FakeRequest())
        assert goodput_report(undeclared) is None

    def test_empty_collector_reports_zeros(self):
        report = goodput_report(MetricsCollector(goodput=SPEC))
        assert report is not None
        assert report.total == report.good == 0
        assert report.goodput == 0.0


class TestMerge:
    def _collector(self, spec: GoodputSpec) -> MetricsCollector:
        c = MetricsCollector(goodput=spec)
        for r in _requests():
            c.record_request(r)
        return c

    def test_merge_folds_counters_additively(self):
        merged = merge_collectors([self._collector(SPEC), self._collector(SPEC)])
        assert merged.goodput == SPEC
        report = goodput_report(merged, duration=2.0)
        assert (report.total, report.good) == (8, 2)
        assert report.tokens_out == 48

    def test_merge_drops_spec_unless_unanimous(self):
        a = self._collector(SPEC)
        b = self._collector(GoodputSpec(e2e=9.0))
        merged = merge_collectors({"a": a, "b": b})
        assert merged.goodput is None
        assert goodput_report(merged) is None  # aggregate is undefined
        # The counters still folded (each part judged by its own spec).
        assert merged.gp_good == a.gp_good + b.gp_good


class TestTable:
    def test_table_shows_only_declared_constraint_columns(self):
        collector = MetricsCollector(goodput=GoodputSpec(ttft=0.5, e2e=2.0))
        for r in _requests():
            collector.record_request(r)
        report = goodput_report(collector, duration=2.0)
        text = goodput_table({"chat": report})
        assert "ttft met" in text and "e2e met" in text
        assert "tpot met" not in text
        assert "@0.5s" in text and "@2s" in text

    def test_table_filters_none_and_rejects_empty(self):
        with pytest.raises(ValueError):
            goodput_table({"a": None})

    def test_markdown_table(self):
        collector = MetricsCollector(goodput=SPEC)
        for r in _requests():
            collector.record_request(r)
        text = goodput_table(
            {"x": goodput_report(collector, duration=2.0)}, markdown=True
        )
        assert text.startswith("|")
