"""Tests for adaptive priority: DEPQ ordering, load smoothing, transitions."""

from __future__ import annotations

import pytest

from repro.core.priority import (
    AdaptivePriorityController,
    DeadlineDepqQueue,
    LoadSmoother,
    PriorityMode,
)
from repro.policies.naive import NaivePolicy
from repro.simulation.request import Request
from repro.workload.generators import step_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app


class TestLoadSmoother:
    def test_smoothed_is_mean_of_recent(self):
        s = LoadSmoother(history=10, smooth=3)
        for r in (10.0, 20.0, 30.0):
            s.record(r)
        assert s.smoothed() == pytest.approx(20.0)

    def test_epsilon_zero_for_constant_rate(self):
        s = LoadSmoother()
        for _ in range(10):
            s.record(50.0)
        assert s.epsilon() == pytest.approx(0.0)

    def test_epsilon_grows_with_variability(self):
        steady = LoadSmoother()
        bursty = LoadSmoother()
        for i in range(10):
            steady.record(50.0 + (i % 2))
            bursty.record(50.0 if i % 2 else 150.0)
        assert bursty.epsilon() > steady.epsilon()

    def test_empty_smoother(self):
        s = LoadSmoother()
        assert s.smoothed() == 0.0
        assert s.epsilon() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadSmoother(history=0)


class TestController:
    def make_module(self, workers=1, batch=4):
        cluster = make_cluster(NaivePolicy(), app=tiny_chain_app(n=1, slo=0.5),
                               workers=workers, batch_plan={"m1": batch})
        return cluster.modules["m1"], cluster

    def test_fixed_modes_never_change(self):
        module, _ = self.make_module()
        for mode in (PriorityMode.HBF, PriorityMode.LBF, PriorityMode.FCFS):
            ctrl = AdaptivePriorityController(mode=mode)
            ctrl.update(module, 1.0)
            assert ctrl.current("m1") == mode
            assert not ctrl.transitions

    def test_default_mode_is_lbf(self):
        ctrl = AdaptivePriorityController()
        assert ctrl.current("anything") == PriorityMode.LBF

    def test_switches_to_hbf_under_overload(self):
        module, cluster = self.make_module()
        ctrl = AdaptivePriorityController(mode=PriorityMode.INSTANT)
        # Saturate: record arrivals far above capacity.
        for i in range(2000):
            module.stats.record_arrival(i * 0.002)  # 500/s
        cluster.sim.run(until=0.0)
        assert ctrl.update(module, 4.0) == PriorityMode.HBF

    def test_stays_lbf_when_underloaded(self):
        module, _ = self.make_module()
        ctrl = AdaptivePriorityController(mode=PriorityMode.INSTANT)
        for i in range(20):
            module.stats.record_arrival(i * 0.2)  # 5/s, capacity ~100/s
        assert ctrl.update(module, 4.0) == PriorityMode.LBF

    def test_effective_load_includes_backlog(self):
        module, cluster = self.make_module()
        base = AdaptivePriorityController.effective_load(module, 0.0)
        # Stuff the worker queue without consuming.
        for i in range(100):
            r = Request(sent_at=0.0, slo=0.5)
            r.begin_visit("m1", 0.0)
            module.workers[0].queue.push(r, 0.0)
        loaded = AdaptivePriorityController.effective_load(module, 0.0)
        assert loaded > base

    def test_delayed_transition_holds_in_dead_band(self):
        """Inside [1 - eps, 1 + eps] the previous mode is kept."""
        module, _ = self.make_module()
        ctrl = AdaptivePriorityController(mode=PriorityMode.ADAPTIVE)
        # Prime with variable rates so epsilon > 0.
        smoother = ctrl._smoothers.setdefault("m1", LoadSmoother())
        for r in (40.0, 160.0, 40.0, 160.0, 40.0):
            smoother.record(r)
        eps = smoother.epsilon()
        assert eps > 0
        # Force current mode HBF, then a load factor just under 1.0 should
        # hold HBF rather than flip to LBF.
        ctrl._current["m1"] = PriorityMode.HBF
        # mu inside the dead band: fabricate via small queue + rate ~ cap.
        mu = AdaptivePriorityController.effective_load(module, 0.0)
        assert mu < 1.0  # idle module
        # With eps large enough the band covers mu ~ 1; emulate by direct
        # comparison of the rule:
        if mu > 1.0 - eps:
            assert ctrl.update(module, 1.0) == PriorityMode.HBF


class TestDeadlineDepqQueue:
    def queue(self, mode):
        module, _ = TestController().make_module()
        ctrl = AdaptivePriorityController(mode=mode)
        return DeadlineDepqQueue(module, ctrl)

    def push_three(self, q):
        reqs = [
            Request(sent_at=0.0, slo=0.30),
            Request(sent_at=0.0, slo=0.10),
            Request(sent_at=0.0, slo=0.20),
        ]
        for r in reqs:
            q.push(r, 0.0)
        return reqs

    def test_lbf_pops_tightest_deadline_first(self):
        q = self.queue(PriorityMode.LBF)
        reqs = self.push_three(q)
        assert q.pop(0.0) is reqs[1]  # slo 0.10
        assert q.pop(0.0) is reqs[2]
        assert q.pop(0.0) is reqs[0]
        assert q.pop(0.0) is None

    def test_hbf_pops_loosest_deadline_first(self):
        q = self.queue(PriorityMode.HBF)
        reqs = self.push_three(q)
        assert q.pop(0.0) is reqs[0]  # slo 0.30
        assert q.pop(0.0) is reqs[2]
        assert q.pop(0.0) is reqs[1]

    def test_len_tracks_contents(self):
        q = self.queue(PriorityMode.LBF)
        self.push_three(q)
        assert len(q) == 3
        q.pop(0.0)
        assert len(q) == 2


class TestTransitionsEndToEnd:
    def test_burst_triggers_hbf_then_recovery_to_lbf(self):
        from repro.core.policy import PardPolicy

        policy = PardPolicy(samples=500, priority_mode=PriorityMode.INSTANT)
        app = tiny_chain_app(n=2, slo=0.3)
        cluster = make_cluster(policy, app=app, workers=1,
                               batch_plan={"m1": 4, "m2": 4},
                               sync_interval=0.5)
        trace = step_trace(
            [(0.0, 30.0), (3.0, 250.0), (6.0, 30.0)], duration=12.0, seed=4
        )
        replay(trace, cluster)
        modes = [t.mode for t in policy.priority.transitions
                 if t.module_id == "m1"]
        assert PriorityMode.HBF in modes  # burst detected
        assert modes[-1] == PriorityMode.LBF  # recovered afterwards
