"""Tests for batch-wait estimation, including the paper's printed quantiles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_wait import (
    BatchWaitEstimator,
    aggregated_wait_quantile_uniform,
    irwin_hall_cdf,
    irwin_hall_quantile,
)


class TestIrwinHall:
    def test_cdf_bounds(self):
        assert irwin_hall_cdf(-1.0, 3) == 0.0
        assert irwin_hall_cdf(0.0, 3) == 0.0
        assert irwin_hall_cdf(3.0, 3) == 1.0
        assert irwin_hall_cdf(5.0, 3) == 1.0

    def test_n1_is_uniform(self):
        for x in (0.1, 0.5, 0.9):
            assert irwin_hall_cdf(x, 1) == pytest.approx(x)

    def test_n2_triangular(self):
        # Sum of two U(0,1): CDF(x) = x^2/2 for x <= 1.
        assert irwin_hall_cdf(0.5, 2) == pytest.approx(0.125)
        assert irwin_hall_cdf(1.0, 2) == pytest.approx(0.5)

    def test_median_is_half_n(self):
        for n in (1, 2, 3, 4, 7):
            assert irwin_hall_quantile(0.5, n) == pytest.approx(n / 2, abs=1e-6)

    def test_quantile_inverts_cdf(self):
        for n in (1, 3, 5):
            for p in (0.05, 0.25, 0.5, 0.9):
                x = irwin_hall_quantile(p, n)
                assert irwin_hall_cdf(x, n) == pytest.approx(p, abs=1e-6)

    def test_paper_figure6_quantiles(self):
        """The paper's worked example: lambda = 0.1 in a 4-module pipeline
        with equal durations d gives w = 1.24d (4 modules), 0.84d (3),
        0.44d (2) and 0.10d (1)."""
        assert irwin_hall_quantile(0.1, 4) == pytest.approx(1.24, abs=0.01)
        assert irwin_hall_quantile(0.1, 3) == pytest.approx(0.84, abs=0.01)
        assert irwin_hall_quantile(0.1, 2) == pytest.approx(0.44, abs=0.01)
        assert irwin_hall_quantile(0.1, 1) == pytest.approx(0.10, abs=0.01)

    def test_paper_figure6_fractions_of_total(self):
        """Same numbers expressed as the paper does: fractions of sum d_i
        (0.31, 0.28, 0.22, 0.10)."""
        for n, frac in ((4, 0.31), (3, 0.28), (2, 0.22), (1, 0.10)):
            assert irwin_hall_quantile(0.1, n) / n == pytest.approx(frac, abs=0.005)

    @given(st.integers(min_value=1, max_value=20),
           st.floats(min_value=0.01, max_value=0.99))
    def test_property_cdf_monotone(self, n, p):
        x = irwin_hall_quantile(p, n)
        assert 0 <= x <= n
        assert irwin_hall_cdf(x - 0.01, n) <= irwin_hall_cdf(x + 0.01, n)


class TestAggregatedQuantile:
    def test_empty_durations(self):
        assert aggregated_wait_quantile_uniform([], 0.5) == 0.0

    def test_equal_durations_match_irwin_hall(self):
        q = aggregated_wait_quantile_uniform([0.1, 0.1, 0.1], 0.25)
        assert q == pytest.approx(0.1 * irwin_hall_quantile(0.25, 3), abs=1e-6)

    def test_extremes(self):
        ds = [0.1, 0.2, 0.3]
        assert aggregated_wait_quantile_uniform(ds, 0.0) == 0.0
        assert aggregated_wait_quantile_uniform(ds, 1.0) == pytest.approx(0.6)

    def test_unequal_durations_close_to_monte_carlo(self):
        ds = [0.05, 0.10, 0.20]
        rng = np.random.default_rng(0)
        samples = sum(rng.uniform(0, d, 200_000) for d in ds)
        for lam in (0.1, 0.5, 0.9):
            approx = aggregated_wait_quantile_uniform(ds, lam)
            exact = np.quantile(samples, lam)
            assert approx == pytest.approx(exact, rel=0.12, abs=0.01)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            aggregated_wait_quantile_uniform([-0.1], 0.5)

    @settings(max_examples=50)
    @given(
        st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_quantile_within_support(self, ds, lam):
        q = aggregated_wait_quantile_uniform(ds, lam)
        assert 0.0 <= q <= sum(ds) + 1e-9


class TestBatchWaitEstimator:
    def test_lambda_zero_is_lower_bound(self):
        est = BatchWaitEstimator(lam=0.0)
        assert est.estimate([0.1, 0.2]) == 0.0

    def test_lambda_one_is_upper_bound(self):
        est = BatchWaitEstimator(lam=1.0)
        assert est.estimate([0.1, 0.2]) == pytest.approx(0.3)

    def test_default_matches_irwin_hall(self):
        est = BatchWaitEstimator(lam=0.1, samples=50_000, seed=1)
        got = est.estimate([0.1, 0.1, 0.1, 0.1])
        expected = 0.1 * irwin_hall_quantile(0.1, 4)
        assert got == pytest.approx(expected, rel=0.05)

    def test_quantile_monotone_in_lambda(self):
        ds = [0.1, 0.15]
        qs = [
            BatchWaitEstimator(lam=lam, samples=20_000, seed=2).estimate(ds)
            for lam in (0.1, 0.3, 0.5, 0.9)
        ]
        assert qs == sorted(qs)

    def test_observed_samples_override_uniform_model(self):
        # All observed waits pinned at the maximum: the estimate must rise
        # far above the uniform-model quantile.
        est = BatchWaitEstimator(lam=0.1, samples=5_000, min_observed=10, seed=3)
        observed = [[0.1] * 50]
        got = est.estimate([0.1], observed=observed)
        assert got == pytest.approx(0.1, abs=1e-9)

    def test_too_few_observed_falls_back_to_uniform(self):
        est = BatchWaitEstimator(lam=0.5, samples=50_000, min_observed=30, seed=4)
        got = est.estimate([0.1], observed=[[0.1] * 5])
        assert got == pytest.approx(0.05, rel=0.05)  # uniform median

    def test_empty_durations(self):
        assert BatchWaitEstimator().estimate([]) == 0.0

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            BatchWaitEstimator(lam=1.5)
