"""Tests for the State Planner's synchronised estimates."""

from __future__ import annotations

import pytest

from repro.core.state_planner import StatePlanner, WaitMode
from repro.policies.naive import NaivePolicy
from repro.workload.generators import constant_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app, tiny_dag_app


def bound_planner(app=None, **kw):
    cluster = make_cluster(NaivePolicy(), app=app or tiny_chain_app(n=3))
    planner = StatePlanner(samples=2000, **kw)
    planner.bind(cluster)
    return planner, cluster


class TestSubEstimate:
    def test_exit_module_has_zero_sub_estimate(self):
        planner, _ = bound_planner()
        assert planner.sub_estimate("m3") == 0.0

    def test_estimates_decrease_along_the_chain(self):
        planner, _ = bound_planner()
        e1 = planner.sub_estimate("m1")
        e2 = planner.sub_estimate("m2")
        assert e1 > e2 > 0.0

    def test_includes_downstream_durations(self):
        planner, cluster = bound_planner(wait_mode=WaitMode.LOWER)
        # With zero queueing observed and w = 0, L_sub is exactly the sum
        # of downstream effective durations.
        d2 = cluster.modules["m2"].effective_duration(0.0)
        d3 = cluster.modules["m3"].effective_duration(0.0)
        assert planner.sub_estimate("m1") == pytest.approx(d2 + d3)

    def test_upper_mode_doubles_duration_term(self):
        lower, _ = bound_planner(wait_mode=WaitMode.LOWER)
        upper, _ = bound_planner(wait_mode=WaitMode.UPPER)
        assert upper.sub_estimate("m1") == pytest.approx(
            2 * lower.sub_estimate("m1")
        )

    def test_quantile_mode_between_bounds(self):
        lower, _ = bound_planner(wait_mode=WaitMode.LOWER)
        upper, _ = bound_planner(wait_mode=WaitMode.UPPER)
        mid, _ = bound_planner(wait_mode=WaitMode.QUANTILE, lam=0.5)
        assert (
            lower.sub_estimate("m1")
            < mid.sub_estimate("m1")
            < upper.sub_estimate("m1")
        )

    def test_unknown_wait_mode_rejected(self):
        with pytest.raises(ValueError):
            StatePlanner(wait_mode="bogus")


class TestDagEstimates:
    def test_dag_takes_max_over_paths(self):
        planner, cluster = bound_planner(
            app=tiny_dag_app(), wait_mode=WaitMode.LOWER
        )
        # Paths from m1: [m2, m4] and [m3, m4]; estimate must be the max.
        d = {mid: cluster.modules[mid].effective_duration(0.0)
             for mid in ("m2", "m3", "m4")}
        expected = max(d["m2"], d["m3"]) + d["m4"]
        assert planner.sub_estimate("m1") == pytest.approx(expected)

    def test_path_components_reported_per_path(self):
        planner, _ = bound_planner(app=tiny_dag_app())
        details = planner.path_components("m1")
        assert len(details) == 2  # two downstream paths
        for parts in details:
            assert set(parts) == {"queue", "exec", "wait"}


class TestRuntimeRefresh:
    def test_queueing_delay_feeds_estimates(self):
        app = tiny_chain_app(n=3, slo=0.5)
        cluster = make_cluster(NaivePolicy(), app=app, workers=1,
                               batch_plan={"m1": 4, "m2": 2, "m3": 4})
        planner = StatePlanner(samples=1000)
        planner.bind(cluster)
        idle_estimate = planner.sub_estimate("m1")
        # Saturate module m2 (small batches -> lower capacity).
        replay(constant_trace(140.0, 4.0), cluster)
        planner.refresh(cluster.sim.now)
        assert planner.sub_estimate("m1") > idle_estimate
        assert planner.state("m2").avg_queue_delay >= 0.0

    def test_snapshot_contains_every_module(self):
        planner, cluster = bound_planner()
        snap = planner.snapshot(0.0)
        assert set(snap) == set(cluster.spec.module_ids)
        for state in snap.values():
            assert state.duration > 0
            assert state.batch_size >= 1

    def test_sync_payload_scales_with_modules(self):
        p3, _ = bound_planner(app=tiny_chain_app(n=3))
        p1, _ = bound_planner(app=tiny_chain_app(n=1))
        assert p3.sync_payload_bytes() == 3 * p1.sync_payload_bytes()
