"""Tests for the min-max-heap DEPQ, including a model-based property test."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.depq import MinMaxHeap


def test_empty_heap():
    h: MinMaxHeap[str] = MinMaxHeap()
    assert len(h) == 0
    assert not h
    with pytest.raises(IndexError):
        h.peek_min()
    with pytest.raises(IndexError):
        h.pop_max()


def test_single_element_is_both_min_and_max():
    h: MinMaxHeap[str] = MinMaxHeap()
    h.push(1.0, "a")
    assert h.peek_min() == "a"
    assert h.peek_max() == "a"
    assert h.min_key() == h.max_key() == 1.0


def test_pop_min_ascending():
    h: MinMaxHeap[int] = MinMaxHeap()
    for k in [5, 3, 8, 1, 9, 2]:
        h.push(float(k), k)
    assert [h.pop_min() for _ in range(len(h))] == [1, 2, 3, 5, 8, 9]


def test_pop_max_descending():
    h: MinMaxHeap[int] = MinMaxHeap()
    for k in [5, 3, 8, 1, 9, 2]:
        h.push(float(k), k)
    assert [h.pop_max() for _ in range(len(h))] == [9, 8, 5, 3, 2, 1]


def test_alternating_pops():
    h: MinMaxHeap[int] = MinMaxHeap()
    for k in range(10):
        h.push(float(k), k)
    assert h.pop_min() == 0
    assert h.pop_max() == 9
    assert h.pop_min() == 1
    assert h.pop_max() == 8
    assert len(h) == 6


def test_equal_keys_pop_min_is_fifo():
    h: MinMaxHeap[str] = MinMaxHeap()
    h.push(1.0, "first")
    h.push(1.0, "second")
    h.push(1.0, "third")
    assert h.pop_min() == "first"
    assert h.pop_min() == "second"


def test_items_returns_everything():
    h: MinMaxHeap[int] = MinMaxHeap()
    for k in range(5):
        h.push(float(k), k)
    assert sorted(h.items()) == [0, 1, 2, 3, 4]


@settings(max_examples=200)
@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "pop_min", "pop_max"]),
                  st.floats(min_value=-1e6, max_value=1e6)),
        min_size=1,
        max_size=200,
    )
)
def test_property_matches_sorted_list_model(ops):
    """Drive the heap and a sorted-list oracle with the same operations."""
    heap: MinMaxHeap[float] = MinMaxHeap()
    model: list[float] = []
    counter = 0
    for op, key in ops:
        if op == "push":
            heap.push(key, key)
            model.append(key)
            counter += 1
        elif op == "pop_min" and model:
            expected = min(model)
            got = heap.pop_min()
            assert got == expected
            model.remove(expected)
        elif op == "pop_max" and model:
            expected = max(model)
            got = heap.pop_max()
            assert got == expected
            model.remove(expected)
        assert len(heap) == len(model)
        if model:
            assert heap.min_key() == min(model)
            assert heap.max_key() == max(model)


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1))
def test_property_heapsort_both_directions(keys):
    up: MinMaxHeap[float] = MinMaxHeap()
    down: MinMaxHeap[float] = MinMaxHeap()
    for k in keys:
        up.push(k, k)
        down.push(k, k)
    assert [up.pop_min() for _ in range(len(keys))] == sorted(keys)
    assert [down.pop_max() for _ in range(len(keys))] == sorted(keys, reverse=True)
