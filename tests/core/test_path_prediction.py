"""Tests for the §5.2 future-work extension: request-path prediction."""

from __future__ import annotations

import pytest

from repro.core.policy import PardPolicy
from repro.core.state_planner import PathMode, StatePlanner, WaitMode
from repro.policies.naive import NaivePolicy
from repro.simulation.routing import ProbabilisticRouter
from repro.workload.generators import constant_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app, tiny_dag_app


class TestBranchProbability:
    def test_non_fork_is_certain(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_chain_app(n=3))
        assert cluster.branch_probability("m1", "m2") == 1.0

    def test_unobserved_fork_is_uniform(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_dag_app())
        assert cluster.branch_probability("m1", "m2") == pytest.approx(0.5)
        assert cluster.branch_probability("m1", "m3") == pytest.approx(0.5)

    def test_probabilities_track_observed_choices(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_dag_app())
        cluster.router = ProbabilisticRouter(weights={"m2": 4, "m3": 1}, seed=0)
        for i in range(100):
            cluster.submit_at(0.05 * i)
        cluster.sim.run()
        p2 = cluster.branch_probability("m1", "m2")
        p3 = cluster.branch_probability("m1", "m3")
        assert p2 + p3 == pytest.approx(1.0)
        assert p2 > 0.65


class TestPredictedPathMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            StatePlanner(path_mode="nope")

    def test_chain_estimates_identical_between_modes(self):
        app = tiny_chain_app(n=3)
        pm = StatePlanner(path_mode=PathMode.MAX, wait_mode=WaitMode.LOWER)
        pp = StatePlanner(path_mode=PathMode.PREDICTED, wait_mode=WaitMode.LOWER)
        pm.bind(make_cluster(NaivePolicy(), app=app))
        pp.bind(make_cluster(NaivePolicy(), app=app))
        for mid in ("m1", "m2", "m3"):
            assert pm.sub_estimate(mid) == pytest.approx(pp.sub_estimate(mid))

    def test_predicted_leq_max_on_dag(self):
        app = tiny_dag_app()
        cluster = make_cluster(NaivePolicy(), app=app)
        planner_max = StatePlanner(path_mode=PathMode.MAX,
                                   wait_mode=WaitMode.LOWER)
        planner_pred = StatePlanner(path_mode=PathMode.PREDICTED,
                                    wait_mode=WaitMode.LOWER)
        planner_max.bind(cluster)
        planner_pred.bind(cluster)
        assert planner_pred.sub_estimate("m1") <= planner_max.sub_estimate("m1")

    def test_prediction_reduces_drops_on_dynamic_paths(self):
        """§5.2: on dynamic-path DAGs the conservative max-over-paths
        over-estimates; probability-weighted prediction recovers goodput."""

        def run(path_mode: str) -> float:
            app = tiny_dag_app(slo=0.22)
            policy = PardPolicy(samples=500, path_mode=path_mode,
                                wait_mode=WaitMode.UPPER)
            cluster = make_cluster(policy, app=app, workers=1,
                                   batch_plan={m: 4 for m in
                                               app.spec.module_ids})
            cluster.router = ProbabilisticRouter(
                weights={"m2": 1, "m3": 9}, seed=1
            )
            replay(constant_trace(60.0, 8.0), cluster)
            from repro.metrics import summarize

            return summarize(cluster.metrics, duration=8.0).drop_rate

        conservative = run(PathMode.MAX)
        predicted = run(PathMode.PREDICTED)
        assert predicted <= conservative
