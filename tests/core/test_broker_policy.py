"""Tests for the Request Broker (Equation 3) and the assembled PardPolicy."""

from __future__ import annotations

import pytest

from repro.core.broker import RequestBroker, SubMode
from repro.core.policy import BudgetMode, PardPolicy
from repro.core.priority import PriorityMode
from repro.core.state_planner import StatePlanner, WaitMode
from repro.interfaces import DropContext
from repro.policies.base import FifoQueue
from repro.core.priority import DeadlineDepqQueue
from repro.simulation.request import DropReason, Request, RequestStatus
from repro.workload.generators import constant_trace, step_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app, tiny_dag_app


def make_ctx(cluster, module_id="m1", sent_at=0.0, now=0.01,
             expected_start=0.02, slo=0.3):
    module = cluster.modules[module_id]
    request = Request(sent_at=sent_at, slo=slo)
    return DropContext(
        request=request,
        module=module,
        worker=module.workers[0],
        now=now,
        expected_start=expected_start,
        batch_duration=module.effective_duration(now),
        slo=slo,
    )


class TestBrokerEstimate:
    def bound(self, sub_mode=SubMode.FULL, wait_mode=WaitMode.LOWER):
        policy = PardPolicy(sub_mode=sub_mode, wait_mode=wait_mode,
                            samples=1000)
        cluster = make_cluster(policy, app=tiny_chain_app(n=3, slo=0.3))
        return policy, cluster

    def test_backward_component_is_elapsed_to_expected_start(self):
        policy, cluster = self.bound()
        ctx = make_ctx(cluster, sent_at=0.0, expected_start=0.05)
        est = policy.broker.estimate(ctx)
        assert est.backward == pytest.approx(0.05)
        assert est.current_exec == pytest.approx(ctx.batch_duration)

    def test_sub_mode_none_ignores_downstream(self):
        policy, cluster = self.bound(sub_mode=SubMode.NONE)
        est = policy.broker.estimate(make_ctx(cluster))
        assert est.sub == 0.0

    def test_sub_mode_durations_counts_exec_only(self):
        policy, cluster = self.bound(sub_mode=SubMode.DURATIONS)
        est = policy.broker.estimate(make_ctx(cluster))
        d2 = cluster.modules["m2"].effective_duration(0.0)
        d3 = cluster.modules["m3"].effective_duration(0.0)
        assert est.sub == pytest.approx(d2 + d3)

    def test_full_mode_adds_queue_and_wait(self):
        none_p, none_c = self.bound(sub_mode=SubMode.DURATIONS)
        full_p, full_c = self.bound(sub_mode=SubMode.FULL,
                                    wait_mode=WaitMode.QUANTILE)
        sub_durations = none_p.broker.estimate(make_ctx(none_c)).sub
        sub_full = full_p.broker.estimate(make_ctx(full_c)).sub
        assert sub_full >= sub_durations

    def test_total_is_sum_of_parts(self):
        policy, cluster = self.bound()
        est = policy.broker.estimate(make_ctx(cluster))
        assert est.total == pytest.approx(
            est.backward + est.current_exec + est.sub
        )

    def test_invalid_sub_mode_rejected(self):
        with pytest.raises(ValueError):
            RequestBroker(StatePlanner(), sub_mode="nope")

    @pytest.mark.parametrize(
        "sub_mode", [SubMode.FULL, SubMode.NONE, SubMode.DURATIONS]
    )
    def test_estimate_total_matches_decomposed_estimate(self, sub_mode):
        # estimate_total is the allocation-free drop-path twin of
        # estimate(); this pin keeps the two formulas from diverging.
        policy, cluster = self.bound(sub_mode=sub_mode,
                                     wait_mode=WaitMode.QUANTILE)
        ctx = make_ctx(cluster, sent_at=0.0, expected_start=0.07)
        assert policy.broker.estimate_total(ctx) == pytest.approx(
            policy.broker.estimate(ctx).total, rel=1e-12
        )


class TestPardDropDecision:
    def test_keeps_request_with_ample_budget(self):
        policy = PardPolicy(samples=1000)
        cluster = make_cluster(policy, app=tiny_chain_app(n=3, slo=1.0))
        ctx = make_ctx(cluster, slo=1.0)
        assert policy.should_drop(ctx) is None

    def test_drops_request_with_insufficient_budget(self):
        policy = PardPolicy(samples=1000)
        cluster = make_cluster(policy, app=tiny_chain_app(n=3, slo=0.3))
        # Request already consumed 0.29 of its 0.3 budget.
        ctx = make_ctx(cluster, sent_at=0.0, now=0.29, expected_start=0.29)
        assert policy.should_drop(ctx) is DropReason.ESTIMATED_VIOLATION

    def test_proactive_drop_happens_before_downstream_budget_gone(self):
        """PARD drops at M1 a request that could still finish M1 within
        SLO but not the rest of the pipeline (Nexus would keep it)."""
        policy = PardPolicy(samples=1000, wait_mode=WaitMode.LOWER)
        cluster = make_cluster(policy, app=tiny_chain_app(n=3, slo=0.3))
        d1 = cluster.modules["m1"].effective_duration(0.0)
        sub = policy.planner.sub_estimate("m1")
        # Elapsed such that elapsed + d1 <= SLO (Nexus keeps), but
        # elapsed + d1 + sub > SLO (PARD drops).
        elapsed = 0.3 - d1 - sub / 2
        ctx = make_ctx(cluster, sent_at=0.0, now=elapsed,
                       expected_start=elapsed)
        assert elapsed + d1 < 0.3
        assert policy.should_drop(ctx) is DropReason.ESTIMATED_VIOLATION

    def test_split_budget_mode(self):
        policy = PardPolicy(budget_mode=BudgetMode.SPLIT, samples=1000)
        cluster = make_cluster(policy, app=tiny_chain_app(n=3, slo=0.3))
        # m1's split budget is a fraction of the SLO: an elapsed time of
        # half the SLO at m1 must be over budget even though the full SLO
        # is not exhausted.
        ctx = make_ctx(cluster, sent_at=0.0, now=0.15, expected_start=0.15)
        assert policy.should_drop(ctx) is DropReason.BUDGET_EXCEEDED

    def test_wcl_budgets_refresh_on_tick(self):
        policy = PardPolicy(budget_mode=BudgetMode.WCL, samples=1000)
        cluster = make_cluster(policy, app=tiny_chain_app(n=3, slo=0.3))
        before = dict(policy._budget_shares)
        replay(constant_trace(120.0, 3.0), cluster)
        assert policy._budget_shares  # recomputed
        assert sum(policy._budget_shares.values()) == pytest.approx(1.0)
        assert before.keys() == policy._budget_shares.keys()

    def test_dag_budget_uses_longest_upstream_path(self):
        policy = PardPolicy(budget_mode=BudgetMode.SPLIT, samples=1000)
        cluster = make_cluster(policy, app=tiny_dag_app(slo=0.4))
        b4 = policy._cumulative_budget("m4", 0.4)
        b2 = policy._cumulative_budget("m2", 0.4)
        b3 = policy._cumulative_budget("m3", 0.4)
        assert b4 > max(b2, b3)
        assert b4 < 0.4 + 1e-9

    def test_make_queue_depends_on_priority_mode(self):
        fcfs = PardPolicy(priority_mode=PriorityMode.FCFS, samples=100)
        depq = PardPolicy(priority_mode=PriorityMode.ADAPTIVE, samples=100)
        c1 = make_cluster(fcfs, app=tiny_chain_app())
        c2 = make_cluster(depq, app=tiny_chain_app())
        assert isinstance(c1.modules["m1"].workers[0].queue, FifoQueue)
        assert isinstance(c2.modules["m1"].workers[0].queue, DeadlineDepqQueue)

    def test_invalid_budget_mode_rejected(self):
        with pytest.raises(ValueError):
            PardPolicy(budget_mode="nope")

    def test_describe_mentions_configuration(self):
        policy = PardPolicy(lam=0.2, samples=100)
        desc = policy.describe()
        assert "0.2" in desc and "adaptive" in desc


class TestPardEndToEnd:
    def test_pard_recovers_goodput_after_burst(self):
        results = {}
        for name, policy in (
            ("pard", PardPolicy(samples=1000)),
            ("none", PardPolicy(sub_mode=SubMode.NONE, samples=1000)),
        ):
            app = tiny_chain_app(n=3, slo=0.2)
            cluster = make_cluster(policy, app=app, workers=1,
                                   batch_plan={"m1": 4, "m2": 4, "m3": 4})
            trace = step_trace(
                [(0.0, 60.0), (3.0, 200.0), (6.0, 60.0)],
                duration=14.0, seed=2,
            )
            replay(trace, cluster)
            records = cluster.metrics.records
            results[name] = dict(
                good=sum(1 for r in records if r.met_slo),
                wasted=sum(r.wasted_gpu_time for r in records),
            )
        # Bi-directional estimation wastes less computation than
        # backward-only (the PARD-back ablation).
        assert results["pard"]["wasted"] <= results["none"]["wasted"]

    def test_all_requests_terminate(self):
        policy = PardPolicy(samples=500)
        cluster = make_cluster(policy, app=tiny_chain_app(n=3, slo=0.25))
        replay(constant_trace(130.0, 5.0), cluster)
        assert len(cluster.metrics.records) == 130 * 5
        assert all(
            r.status in (RequestStatus.COMPLETED, RequestStatus.DROPPED)
            for r in cluster.metrics.records
        )
