"""Regression tests: longest-upstream-share computation on dense DAGs.

``PardPolicy._best_upstream_share`` (and Clipper++'s bind-time equivalent)
used to recurse per predecessor with no memo — exponential in DAG depth on
layered all-to-all graphs (width^depth path expansions).  These tests pin
the memoized behaviour: one visit per node, correct longest-path shares,
and invalidation when the shares are recomputed.
"""

from __future__ import annotations

from repro.core.policy import BudgetMode, PardPolicy
from repro.pipeline.applications import Application
from repro.pipeline.spec import ModuleSpec, PipelineSpec
from repro.pipeline.profiles import DEFAULT_PROFILES
from repro.policies.clipper import ClipperPlusPlusPolicy

#: Deep enough that the unmemoized recursion (3^38 expansions) could never
#: finish — the test only passes at all because the memo makes it linear.
LAYERS = 40
WIDTH = 3


def wide_dag(layers: int = LAYERS, width: int = WIDTH) -> PipelineSpec:
    """src -> ``layers`` all-to-all layers of ``width`` -> sink."""
    modules = [
        ModuleSpec("src", "object_detection", pres=(),
                   subs=tuple(f"l0_{k}" for k in range(width)))
    ]
    for i in range(layers):
        pres = (
            ("src",) if i == 0
            else tuple(f"l{i - 1}_{k}" for k in range(width))
        )
        subs = (
            ("sink",) if i == layers - 1
            else tuple(f"l{i + 1}_{k}" for k in range(width))
        )
        for j in range(width):
            modules.append(
                ModuleSpec(f"l{i}_{j}", "object_detection", pres=pres,
                           subs=subs)
            )
    modules.append(
        ModuleSpec("sink", "object_detection",
                   pres=tuple(f"l{layers - 1}_{k}" for k in range(width)),
                   subs=())
    )
    return PipelineSpec(name="wide", modules=modules)


class _StubCluster:
    """Just enough cluster surface for the budget-share machinery."""

    def __init__(self, spec: PipelineSpec, slo: float = 1.0) -> None:
        self.spec = spec
        self.registry = DEFAULT_PROFILES
        self.slo = slo

    def hop_id(self, module) -> str:  # pragma: no cover - interface parity
        return module.spec.id


class TestPardUpstreamShareMemo:
    def _bound_policy(self, spec: PipelineSpec) -> PardPolicy:
        policy = PardPolicy(budget_mode=BudgetMode.SPLIT, samples=10)
        policy.cluster = _StubCluster(spec)
        policy._recompute_static_budgets()
        return policy

    def test_wide_dag_is_linear_not_exponential(self):
        spec = wide_dag()
        policy = self._bound_policy(spec)
        calls = 0
        original = policy._best_upstream_share

        def counting(module_id: str) -> float:
            nonlocal calls
            calls += 1
            return original(module_id)

        policy._best_upstream_share = counting
        budget = policy._cumulative_budget("sink", slo=1.0)
        # Identical profiles: every module holds share 1/N and each
        # entry-to-sink path visits LAYERS + 2 modules.
        n = len(spec.modules)
        assert abs(budget - (LAYERS + 2) / n) < 1e-9
        # Linear: one expansion per node plus one memo hit per edge (the
        # unmemoized recursion needed width^depth ~ 3^38 expansions).
        edges = sum(len(m.pres) for m in spec.modules)
        assert calls <= n + edges

    def test_memo_reused_across_modules(self):
        spec = wide_dag(layers=4)
        policy = self._bound_policy(spec)
        first = policy._cumulative_budget("sink", slo=1.0)
        # The memo must serve repeat queries (per-request hot path).
        assert policy._cumulative_budget("sink", slo=1.0) == first
        assert policy._upstream_memo  # populated

    def test_memo_invalidated_when_shares_recompute(self):
        spec = wide_dag(layers=3)
        policy = self._bound_policy(spec)
        policy._cumulative_budget("sink", slo=1.0)
        assert policy._upstream_memo
        # A share refresh (static or WCL) must flush stale path sums.
        policy._recompute_static_budgets()
        assert not policy._upstream_memo

    def test_chain_fast_path_unaffected(self):
        spec = PipelineSpec(name="chain", modules=[
            ModuleSpec("a", "object_detection", subs=("b",)),
            ModuleSpec("b", "object_detection", pres=("a",), subs=("c",)),
            ModuleSpec("c", "object_detection", pres=("b",)),
        ])
        policy = self._bound_policy(spec)
        assert abs(policy._cumulative_budget("b", slo=0.9) - 0.6) < 1e-9


class TestClipperUpstreamMemo:
    def test_wide_dag_bind_completes(self):
        spec = wide_dag()
        policy = ClipperPlusPlusPolicy()
        policy.bind(_StubCluster(spec, slo=1.0))
        n = len(spec.modules)
        # Equal durations: cumulative budget grows linearly along depth.
        assert abs(policy._cum_budget["src"] - 1 / n) < 1e-9
        assert abs(policy._cum_budget["sink"] - (LAYERS + 2) / n) < 1e-9


def test_wide_dag_regression_app_builds():
    """The DAG itself stays a valid Application (join accounting etc.)."""
    app = Application(spec=wide_dag(layers=3), slo=0.5)
    assert len(app.spec.modules) == 3 * WIDTH + 2
