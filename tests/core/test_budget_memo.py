"""Regression tests: longest-upstream-share computation on dense DAGs.

``PardPolicy`` (and Clipper++'s bind-time equivalent) used to recurse per
predecessor — exponential in DAG depth on layered all-to-all graphs
(width^depth path expansions) before memoization, and a per-policy memo
afterwards.  Both now read the spec's single topological reduction
(:meth:`PipelineSpec.cumulative_upstream_max`); these tests pin that the
reduction is linear-time correct on graphs the naive walk could never
finish, matches brute-force path enumeration exactly, and is refreshed
when budget shares are recomputed.
"""

from __future__ import annotations

from repro.core.policy import BudgetMode, PardPolicy
from repro.pipeline.applications import Application
from repro.pipeline.spec import ModuleSpec, PipelineSpec
from repro.pipeline.profiles import DEFAULT_PROFILES
from repro.policies.clipper import ClipperPlusPlusPolicy

#: Deep enough that recursive path enumeration (3^38 expansions) could
#: never finish — the test only passes because the reduction is linear.
LAYERS = 40
WIDTH = 3


def wide_dag(layers: int = LAYERS, width: int = WIDTH) -> PipelineSpec:
    """src -> ``layers`` all-to-all layers of ``width`` -> sink."""
    modules = [
        ModuleSpec("src", "object_detection", pres=(),
                   subs=tuple(f"l0_{k}" for k in range(width)))
    ]
    for i in range(layers):
        pres = (
            ("src",) if i == 0
            else tuple(f"l{i - 1}_{k}" for k in range(width))
        )
        subs = (
            ("sink",) if i == layers - 1
            else tuple(f"l{i + 1}_{k}" for k in range(width))
        )
        for j in range(width):
            modules.append(
                ModuleSpec(f"l{i}_{j}", "object_detection", pres=pres,
                           subs=subs)
            )
    modules.append(
        ModuleSpec("sink", "object_detection",
                   pres=tuple(f"l{layers - 1}_{k}" for k in range(width)),
                   subs=())
    )
    return PipelineSpec(name="wide", modules=modules)


class _StubCluster:
    """Just enough cluster surface for the budget-share machinery."""

    def __init__(self, spec: PipelineSpec, slo: float = 1.0) -> None:
        self.spec = spec
        self.registry = DEFAULT_PROFILES
        self.slo = slo

    def hop_id(self, module) -> str:  # pragma: no cover - interface parity
        return module.spec.id


class TestPardUpstreamShares:
    def _bound_policy(self, spec: PipelineSpec) -> PardPolicy:
        policy = PardPolicy(budget_mode=BudgetMode.SPLIT, samples=10)
        policy.cluster = _StubCluster(spec)
        policy._recompute_static_budgets()
        return policy

    def test_wide_dag_is_linear_not_exponential(self):
        spec = wide_dag()
        policy = self._bound_policy(spec)
        budget = policy._cumulative_budget("sink", slo=1.0)
        # Identical profiles: every module holds share 1/N and each
        # entry-to-sink path visits LAYERS + 2 modules.
        n = len(spec.modules)
        assert abs(budget - (LAYERS + 2) / n) < 1e-9

    def test_table_covers_every_module(self):
        spec = wide_dag(layers=4)
        policy = self._bound_policy(spec)
        assert set(policy._cum_shares) == set(spec.module_ids)
        # Repeat queries are pure table reads (per-request hot path).
        first = policy._cumulative_budget("sink", slo=1.0)
        assert policy._cumulative_budget("sink", slo=1.0) == first

    def test_table_refreshed_when_shares_recompute(self):
        spec = wide_dag(layers=3)
        policy = self._bound_policy(spec)
        before = dict(policy._cum_shares)
        # A share refresh (static or WCL) must rebuild the table, not
        # keep serving sums computed from stale shares.
        policy._budget_shares = {
            mid: 2.0 * v for mid, v in policy._budget_shares.items()
        }
        policy._cum_shares = spec.cumulative_upstream_max(
            policy._budget_shares
        )
        for mid, v in before.items():
            assert abs(policy._cum_shares[mid] - 2.0 * v) < 1e-12
        policy._recompute_static_budgets()
        for mid, v in before.items():
            assert abs(policy._cum_shares[mid] - v) < 1e-12

    def test_chain_budget(self):
        spec = PipelineSpec(name="chain", modules=[
            ModuleSpec("a", "object_detection", subs=("b",)),
            ModuleSpec("b", "object_detection", pres=("a",), subs=("c",)),
            ModuleSpec("c", "object_detection", pres=("b",)),
        ])
        policy = self._bound_policy(spec)
        assert abs(policy._cumulative_budget("b", slo=0.9) - 0.6) < 1e-9


class TestReductionMatchesPathEnumeration:
    def diamond(self) -> PipelineSpec:
        return PipelineSpec(name="d", modules=[
            ModuleSpec("m1", "a", subs=("m2", "m3")),
            ModuleSpec("m2", "b", pres=("m1",), subs=("m4",)),
            ModuleSpec("m3", "c", pres=("m1",), subs=("m4",)),
            ModuleSpec("m4", "d", pres=("m2", "m3")),
        ])

    def test_upstream_max_equals_brute_force(self):
        spec = self.diamond()
        values = {"m1": 0.125, "m2": 0.5, "m3": 0.25, "m4": 0.0625}
        cum = spec.cumulative_upstream_max(values)
        assert cum["m1"] == 0.125
        assert cum["m2"] == 0.625  # m1 + m2
        assert cum["m3"] == 0.375  # m1 + m3
        assert cum["m4"] == 0.6875  # heavier branch m1 + m2 + m4

    def test_downstream_max_equals_brute_force(self):
        spec = self.diamond()
        values = {"m1": 0.125, "m2": 0.5, "m3": 0.25, "m4": 0.0625}
        out = spec.downstream_path_max(values)
        # Exclusive of the module itself, matching ``paths_from``.
        for mid in spec.module_ids:
            brute = max(
                (sum(values[m] for m in path)
                 for path in spec.paths_from(mid)),
                default=0.0,
            )
            assert out[mid] == brute


class TestClipperUpstreamShares:
    def test_wide_dag_bind_completes(self):
        spec = wide_dag()
        policy = ClipperPlusPlusPolicy()
        policy.bind(_StubCluster(spec, slo=1.0))
        n = len(spec.modules)
        # Equal durations: cumulative budget grows linearly along depth.
        assert abs(policy._cum_budget["src"] - 1 / n) < 1e-9
        assert abs(policy._cum_budget["sink"] - (LAYERS + 2) / n) < 1e-9


def test_wide_dag_regression_app_builds():
    """The DAG itself stays a valid Application (join accounting etc.)."""
    app = Application(spec=wide_dag(layers=3), slo=0.5)
    assert len(app.spec.modules) == 3 * WIDTH + 2
