"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lv" in out and "PARD" in out and "Clipper++" in out

    def test_list_enumerates_registries(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        # All three registries, including non-paper registered traces.
        assert "da" in out and "gm" in out
        assert "wiki" in out and "poisson" in out and "step" in out
        assert "Nexus" in out and "ablations" in out

    def test_run_requires_valid_policy(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--policy", "NoSuchPolicy", "--duration", "5",
                "--app", "tm",
            ])

    def test_unknown_app_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "bogus"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommands:
    def test_run_prints_summary_table(self, capsys):
        rc = main([
            "run", "--app", "tm", "--trace", "tweet", "--duration", "8",
            "--policy", "Nexus", "--no-scaling",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Nexus" in out
        assert "drop rate" in out
        assert "m1" in out  # per-module table

    def test_compare_prints_all_policies(self, capsys):
        rc = main([
            "compare", "--app", "tm", "--trace", "tweet", "--duration", "8",
            "--policies", "PARD,Naive", "--no-scaling",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PARD" in out and "Naive" in out

    def test_markdown_output(self, capsys):
        rc = main([
            "run", "--app", "tm", "--trace", "wiki", "--duration", "6",
            "--policy", "Naive", "--markdown", "--no-scaling",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| policy" in out

    def test_slo_override(self, capsys):
        rc = main([
            "run", "--app", "tm", "--trace", "tweet", "--duration", "6",
            "--policy", "PARD", "--slo", "0.3", "--no-scaling",
        ])
        assert rc == 0


class TestSweepCommand:
    def test_sweep_tiny_grid(self, capsys, tmp_path):
        args = [
            "sweep", "--apps", "tm", "--traces", "tweet",
            "--policies", "Naive,Nexus", "--duration", "5", "--no-scaling",
            "--workers", "2", "--cache-dir", str(tmp_path), "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "tm-tweet-Naive-s0" in out and "tm-tweet-Nexus-s0" in out
        # Re-running the identical grid is served from the on-disk cache.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("cached") == 2

    def test_sweep_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--policies", "NoSuchPolicy", "--duration", "5"])

    def test_registered_traces_accepted_by_run(self, capsys):
        """Everything `repro list` advertises must be runnable."""
        rc = main([
            "run", "--app", "tm", "--trace", "poisson", "--duration", "5",
            "--policy", "Naive", "--no-scaling",
        ])
        assert rc == 0
        assert "Naive" in capsys.readouterr().out


SCENARIO = {
    "name": "cli-test",
    "app": {"name": "tm"},
    "trace": {"name": "poisson", "base_rate": 30, "duration": 5},
    "policy": "Naive",
    "workers": 2,
    "failures": [
        {"time": 2.0, "module_id": "m1", "workers": 1, "downtime": 1.0}
    ],
}


class TestScenarioCommands:
    def scenario_file(self, tmp_path, spec=None):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec or SCENARIO))
        return str(path)

    def test_scenario_run(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--file", self.scenario_file(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-test-Naive-s0" in out
        assert "fail m1" in out  # the failure log is printed

    def test_scenario_sweep_uses_cache(self, capsys, tmp_path):
        args = [
            "scenario", "sweep", "--file", self.scenario_file(tmp_path),
            "--policies", "Naive,Nexus", "--seeds", "0,1", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cli-test-Naive-s0" in out and "cli-test-Nexus-s1" in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("cached") == 4

    def test_scenario_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["scenario", "run", "--file", str(tmp_path / "absent.json")])

    def test_scenario_directory_path_rejected_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="invalid scenario"):
            main(["scenario", "run", "--file", str(tmp_path)])

    def test_scenario_invalid_spec_rejected(self, tmp_path):
        bad = dict(SCENARIO, policy="NoSuchPolicy")
        with pytest.raises(SystemExit, match="invalid scenario"):
            main(["scenario", "run", "--file",
                  self.scenario_file(tmp_path, bad)])

    def test_scenario_unknown_trace_rejected_cleanly(self, tmp_path):
        bad = dict(SCENARIO, trace={"name": "nosuch"})
        with pytest.raises(SystemExit, match="unknown trace"):
            main(["scenario", "run", "--file",
                  self.scenario_file(tmp_path, bad)])

    def test_scenario_unknown_app_rejected_cleanly(self, tmp_path):
        bad = dict(SCENARIO, app={"name": "noapp"})
        with pytest.raises(SystemExit, match="invalid scenario"):
            main(["scenario", "run", "--file",
                  self.scenario_file(tmp_path, bad)])

    def test_scenario_malformed_section_rejected_cleanly(self, tmp_path):
        for bad_section in (5, []):
            bad = dict(SCENARIO, scaling=bad_section)
            with pytest.raises(SystemExit, match="invalid scenario"):
                main(["scenario", "run", "--file",
                      self.scenario_file(tmp_path, bad)])

    def test_max_cache_mb_prunes_even_with_no_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        run_args = [
            "scenario", "sweep", "--file", self.scenario_file(tmp_path),
            "--workers", "1", "--cache-dir", str(cache), "--quiet",
        ]
        assert main(run_args) == 0  # populates the cache
        assert list(cache.rglob("*.pkl"))
        assert main(run_args + ["--no-cache", "--max-cache-mb", "0"]) == 0
        capsys.readouterr()
        assert list(cache.rglob("*.pkl")) == []

    def test_negative_max_cache_mb_rejected_at_parse_time(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "scenario", "sweep", "--file", "x.json",
                "--max-cache-mb", "-1",
            ])

    def test_scenario_sweep_rejects_unknown_policy(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown policies"):
            main(["scenario", "sweep", "--file",
                  self.scenario_file(tmp_path), "--policies", "Bogus"])

    def test_example_scenario_file_runs(self, capsys):
        from pathlib import Path

        example = (Path(__file__).resolve().parent.parent
                   / "examples" / "scenarios" / "burst_failure.json")
        rc = main(["scenario", "run", "--file", str(example)])
        assert rc == 0
        assert "burst-failure" in capsys.readouterr().out


MULTI_SCENARIO = {
    "name": "cli-shared",
    "tenants": [
        {
            "scenario": {
                "name": "front",
                "app": {"name": "tm"},
                "policy": "Naive",
                "trace": {"name": "poisson", "base_rate": 25, "duration": 5},
            }
        },
        {
            "weight": 2.0,
            "scenario": {
                "name": "batchy",
                "app": {"name": "lv"},
                "policy": "Naive",
                "trace": {"name": "poisson", "base_rate": 10, "duration": 5},
            },
        },
    ],
    "workers": 2,
    "failures": [
        {"time": 2.0, "module_id": "face_recognition", "workers": 1,
         "downtime": 1.0}
    ],
}


class TestMultiScenarioCommands:
    def scenario_file(self, tmp_path, spec=None):
        path = tmp_path / "multi.json"
        path.write_text(json.dumps(spec or MULTI_SCENARIO))
        return str(path)

    def test_scenario_run_auto_detects_multi(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--file", self.scenario_file(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shared cluster cli-shared-s0" in out
        assert "front" in out and "batchy" in out  # per-app breakdown
        assert "aggregate" in out
        assert "fail face_recognition" in out

    def test_scenario_sweep_multi_with_cache(self, capsys, tmp_path):
        args = [
            "scenario", "sweep", "--file", self.scenario_file(tmp_path),
            "--policies", "Naive,Nexus", "--seeds", "0,1", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cli-shared-s0" in out and "cli-shared-s1" in out
        assert "- front" in out and "- batchy" in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("cached") == 4

    def test_invalid_multi_rejected_cleanly(self, tmp_path):
        bad = dict(MULTI_SCENARIO, workers={"nosuch": 2})
        with pytest.raises(SystemExit, match="invalid scenario"):
            main(["scenario", "run", "--file",
                  self.scenario_file(tmp_path, bad)])

    def test_example_shared_cluster_file_runs(self, capsys):
        from pathlib import Path

        example = (Path(__file__).resolve().parent.parent
                   / "examples" / "scenarios" / "shared_cluster.json")
        rc = main(["scenario", "run", "--file", str(example)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shared-tm-lv" in out
        assert "monitor" in out and "live" in out


SWEEP_FILE = {
    "name": "cli-axes",
    "base": {
        "name": "ax",
        "app": {"name": "tm"},
        "trace": {"name": "poisson", "base_rate": 30, "duration": 5},
        "policy": {"name": "PARD", "params": {"samples": 200}},
        "workers": 2,
    },
    "axes": {"policy.lam": [0.05, 0.2, 0.4]},
}


class TestPolicySpecCommands:
    def sweep_file(self, tmp_path, spec=None):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec or SWEEP_FILE))
        return str(path)

    def test_list_params_prints_schemas(self, capsys):
        assert main(["list", "--params"]) == 0
        out = capsys.readouterr().out
        assert "policy parameters:" in out
        assert "lam=0.1" in out and "budget_mode" in out
        assert "admission parameters:" in out
        assert "weighted-fair" in out and "token-bucket" in out

    def test_scenario_sweep_expands_axes_file(self, capsys, tmp_path):
        args = [
            "scenario", "sweep", "--file", self.sweep_file(tmp_path),
            "--workers", "1", "--no-cache", "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        # One row per lam value, labelled with the swept parameter.
        for lam in ("0.05", "0.2", "0.4"):
            assert f"lam={lam}" in out, out

    def test_scenario_run_rejects_axes_file(self, tmp_path):
        with pytest.raises(SystemExit, match="sweep axes"):
            main(["scenario", "run", "--file", self.sweep_file(tmp_path)])

    def test_save_summaries_bitwise_across_workers(self, tmp_path):
        serial = tmp_path / "serial.json"
        pooled = tmp_path / "pooled.json"
        base = [
            "scenario", "sweep", "--file", self.sweep_file(tmp_path),
            "--no-cache", "--quiet",
        ]
        assert main(base + ["--workers", "1",
                            "--save-summaries", str(serial)]) == 0
        assert main(base + ["--workers", "2",
                            "--save-summaries", str(pooled)]) == 0
        assert serial.read_bytes() == pooled.read_bytes()

    def test_run_prints_describe_line(self, capsys):
        rc = main([
            "run", "--app", "tm", "--trace", "poisson", "--duration", "5",
            "--policy", "PARD", "--no-scaling",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[lam=" in out  # the describe line spells out the knobs

    def test_invalid_axis_rejected_cleanly(self, tmp_path):
        bad = dict(SWEEP_FILE, axes={"policy.bogus": [1]})
        with pytest.raises(SystemExit, match="invalid scenario"):
            main(["scenario", "sweep", "--file",
                  self.sweep_file(tmp_path, bad)])

    def test_admission_scenario_from_json(self, capsys):
        from pathlib import Path

        example = (Path(__file__).resolve().parent.parent
                   / "examples" / "scenarios" / "fair_share.json")
        rc = main(["scenario", "run", "--file", str(example)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "victim" in out and "aggressor" in out

    def test_policies_flag_conflicts_with_policy_axis(self, tmp_path):
        with pytest.raises(SystemExit, match="already sweeps a policy axis"):
            main(["scenario", "sweep", "--file", self.sweep_file(tmp_path),
                  "--policies", "PARD,Naive", "--quiet", "--no-cache"])

    def test_seeds_flag_composes_when_axis_absent(self, capsys, tmp_path):
        args = [
            "scenario", "sweep", "--file", self.sweep_file(tmp_path),
            "--seeds", "0,1", "--workers", "1", "--no-cache", "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "s0" in out and "s1" in out


LLM_SCENARIO = {
    "name": "cli-llm",
    "app": {"name": "llm-chat"},
    "trace": {"name": "poisson", "base_rate": 10, "duration": 4},
    "policy": "PARD",
    "workers": 1,
    "goodput": {"ttft": 1.0, "e2e": 8.0},
}


class TestLlmCommands:
    def scenario_file(self, tmp_path, spec=None):
        path = tmp_path / "llm.json"
        path.write_text(json.dumps(spec or LLM_SCENARIO))
        return str(path)

    def test_list_llm_shows_profile_kind_column(self, capsys):
        assert main(["list", "--llm"]) == 0
        out = capsys.readouterr().out
        assert "profile kind" in out
        # LLM apps are flagged, fixed-duration apps are not.
        assert "llm-chat" in out and "rag-agentic" in out
        for line in out.splitlines():
            if line.startswith("llm-chat") or line.startswith("rag-agentic"):
                assert " llm " in f" {line} "
            elif line.startswith("tm "):
                assert "fixed" in line

    def test_scenario_run_prints_goodput_table(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--file", self.scenario_file(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "goodput under declared SLO constraints" in out
        assert "ttft met" in out and "e2e met" in out

    def test_scenario_run_no_constraints_no_goodput_table(self, capsys, tmp_path):
        spec = {k: v for k, v in LLM_SCENARIO.items() if k != "goodput"}
        rc = main(["scenario", "run",
                   "--file", self.scenario_file(tmp_path, spec)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "goodput under declared SLO constraints" not in out

    def test_llm_serving_example_prints_per_app_goodput(self, capsys):
        from pathlib import Path

        example = (Path(__file__).resolve().parent.parent
                   / "examples" / "scenarios" / "llm_serving.json")
        rc = main(["scenario", "run", "--file", str(example)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "goodput under declared SLO constraints" in out
        assert "chat" in out and "rag" in out
        assert "tpot met" in out


class TestMergeCommand:
    def shard(self, tmp_path, name, entries):
        path = tmp_path / name
        path.write_text(json.dumps(entries))
        return str(path)

    def test_zero_inputs_rejected_with_hint(self):
        with pytest.raises(SystemExit, match="no shard files given"):
            main(["merge"])

    def test_duplicate_indices_rejected(self, tmp_path):
        a = self.shard(tmp_path, "a.json", [{"index": 0, "cell": "x"}])
        b = self.shard(tmp_path, "b.json", [{"index": 0, "cell": "x"}])
        with pytest.raises(SystemExit, match="duplicated cells \\[0\\]"):
            main(["merge", a, b])

    def test_incomplete_partition_rejected(self, tmp_path):
        a = self.shard(tmp_path, "a.json", [{"index": 1, "cell": "x"}])
        with pytest.raises(SystemExit, match="missing cells \\[0\\]"):
            main(["merge", a])

    def test_non_summaries_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(SystemExit, match="not a summaries file"):
            main(["merge", str(bad)])

    def test_unsharded_entries_rejected(self, tmp_path):
        a = self.shard(tmp_path, "a.json", [{"cell": "x"}])
        with pytest.raises(SystemExit, match="non-negative integer 'index'"):
            main(["merge", a])

    def test_empty_shards_rejected(self, tmp_path):
        a = self.shard(tmp_path, "a.json", [])
        with pytest.raises(SystemExit, match="no summary entries"):
            main(["merge", a])


class TestScenarioFormats:
    def scenario_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SCENARIO))
        return str(path)

    def test_json_format_emits_canonical_artifact(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--file", self.scenario_file(tmp_path),
                   "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["scenario"] == "cli-test-Naive-s0"
        assert "fingerprint" in payload["meta"]
        assert "summary" in payload["tables"]

    def test_csv_format_emits_table_blocks(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--file", self.scenario_file(tmp_path),
                   "--format", "csv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("# summary\n")
        assert "# module_drops" in out

    def test_md_format_prints_markdown_tables(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--file", self.scenario_file(tmp_path),
                   "--format", "md"])
        assert rc == 0
        assert "| policy" in capsys.readouterr().out

    def test_default_console_format_unchanged(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--file", self.scenario_file(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-test-Naive-s0" in out
        assert not out.startswith("{")


class TestScenarioRender:
    def scenario_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SCENARIO))
        return str(path)

    def test_render_prints_declared_vs_measured_timeline(
        self, capsys, tmp_path
    ):
        rc = main(["scenario", "render", "--file",
                   self.scenario_file(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "declared_rate" in out and "arrival_rate" in out

    def test_render_csv_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "timeline.csv"
        rc = main(["scenario", "render", "--file",
                   self.scenario_file(tmp_path),
                   "--format", "csv", "--out", str(out_path)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().err
        text = out_path.read_text()
        assert "declared_rate" in text

    def test_render_window_controls_row_count(self, capsys, tmp_path):
        rc = main(["scenario", "render", "--file",
                   self.scenario_file(tmp_path), "--window", "2.5",
                   "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        (table,) = payload["tables"].values()
        assert len(table["rows"]) == 2  # ceil(5s / 2.5s) windows


STUDY = {
    "study": "capacity",
    "name": "cli-cap",
    "rates": [20],
    "target": 0.5,
    "min_workers": 1,
    "max_workers": 2,
    "base": {
        "name": "cli-cap-base",
        "app": {"name": "tm"},
        "policy": "Naive",
        "trace": {"name": "poisson", "duration": 4},
    },
}


class TestStudyCommand:
    def study_file(self, tmp_path, spec=None):
        path = tmp_path / "study.json"
        path.write_text(json.dumps(spec or STUDY))
        return str(path)

    def test_study_run_prints_and_writes_artifacts(self, capsys, tmp_path):
        rc = main([
            "study", "run", self.study_file(tmp_path), "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
            "--save-artifacts", str(tmp_path / "artifacts"),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "required_workers" in captured.out
        assert "cells:" in captured.err and "wrote" in captured.err
        saved = sorted(p.name for p in (tmp_path / "artifacts").iterdir())
        assert saved == ["cli-cap.csv", "cli-cap.json"]

    def test_second_run_is_fully_cached_and_byte_identical(
        self, capsys, tmp_path
    ):
        args = [
            "study", "run", self.study_file(tmp_path), "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args + ["--save-artifacts", str(tmp_path / "a1")]) == 0
        first = capsys.readouterr()
        assert main(args + ["--save-artifacts", str(tmp_path / "a2")]) == 0
        second = capsys.readouterr()
        assert " 0 simulated," in second.err
        for name in ("cli-cap.json", "cli-cap.csv"):
            assert ((tmp_path / "a1" / name).read_bytes()
                    == (tmp_path / "a2" / name).read_bytes())
        assert first.out == second.out

    def test_missing_study_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="study file not found"):
            main(["study", "run", str(tmp_path / "absent.json")])

    def test_invalid_study_file_rejected(self, tmp_path):
        bad = self.study_file(tmp_path, {"study": "nosuch"})
        with pytest.raises(SystemExit, match="invalid study file"):
            main(["study", "run", bad])

    def test_invalid_base_scenario_rejected(self, tmp_path):
        bad_study = dict(STUDY, base=dict(STUDY["base"], policy="NoSuch"))
        bad = self.study_file(tmp_path, bad_study)
        with pytest.raises(SystemExit):
            main(["study", "run", bad, "--quiet",
                  "--no-cache", "--save-artifacts", str(tmp_path / "a")])
