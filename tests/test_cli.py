"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lv" in out and "PARD" in out and "Clipper++" in out

    def test_run_requires_valid_policy(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--policy", "NoSuchPolicy", "--duration", "5",
                "--app", "tm",
            ])

    def test_unknown_app_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "bogus"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommands:
    def test_run_prints_summary_table(self, capsys):
        rc = main([
            "run", "--app", "tm", "--trace", "tweet", "--duration", "8",
            "--policy", "Nexus", "--no-scaling",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Nexus" in out
        assert "drop rate" in out
        assert "m1" in out  # per-module table

    def test_compare_prints_all_policies(self, capsys):
        rc = main([
            "compare", "--app", "tm", "--trace", "tweet", "--duration", "8",
            "--policies", "PARD,Naive", "--no-scaling",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PARD" in out and "Naive" in out

    def test_markdown_output(self, capsys):
        rc = main([
            "run", "--app", "tm", "--trace", "wiki", "--duration", "6",
            "--policy", "Naive", "--markdown", "--no-scaling",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| policy" in out

    def test_slo_override(self, capsys):
        rc = main([
            "run", "--app", "tm", "--trace", "tweet", "--duration", "6",
            "--policy", "PARD", "--slo", "0.3", "--no-scaling",
        ])
        assert rc == 0


class TestSweepCommand:
    def test_sweep_tiny_grid(self, capsys, tmp_path):
        args = [
            "sweep", "--apps", "tm", "--traces", "tweet",
            "--policies", "Naive,Nexus", "--duration", "5", "--no-scaling",
            "--workers", "2", "--cache-dir", str(tmp_path), "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "tm-tweet-Naive-s0" in out and "tm-tweet-Nexus-s0" in out
        # Re-running the identical grid is served from the on-disk cache.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("cached") == 2

    def test_sweep_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--policies", "NoSuchPolicy", "--duration", "5"])
