"""Tests for the RAG case study (§7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rag import (
    PredictRagPolicy,
    ProactiveRagPolicy,
    RagConfig,
    RagPipeline,
    RagStatus,
    ReactiveRagPolicy,
)


def arrivals(rate: float, duration: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=int(rate * duration)))


def run(policy, rate=6.0, duration=30.0, config=None, seed=1) -> RagPipeline:
    pipe = RagPipeline(policy, config=config, seed=seed)
    for t in arrivals(rate, duration):
        pipe.submit_at(float(t))
    pipe.run()
    return pipe


class TestPipelineMechanics:
    def test_light_load_mostly_completes(self):
        pipe = run(ReactiveRagPolicy(), rate=2.0, duration=20.0)
        assert pipe.requests
        done = sum(1 for r in pipe.requests if r.status is RagStatus.COMPLETED)
        # A few requests with extreme rewrite output lengths legitimately
        # blow the TTFT SLO even when idle; the bulk must complete.
        assert done >= 0.9 * len(pipe.requests)
        assert pipe.drop_rate() < 0.2

    def test_all_requests_terminate(self):
        pipe = run(ReactiveRagPolicy(), rate=20.0, duration=20.0)
        assert all(
            r.status in (RagStatus.COMPLETED, RagStatus.DROPPED)
            for r in pipe.requests
        )

    def test_stages_recorded_for_completed_requests(self):
        pipe = run(ReactiveRagPolicy(), rate=2.0, duration=10.0)
        done = [r for r in pipe.requests if r.status is RagStatus.COMPLETED]
        for r in done:
            assert set(r.stage_times) == {
                "rewrite", "retrieve", "search", "generate"
            }

    def test_generate_waits_for_both_branches(self):
        pipe = run(ReactiveRagPolicy(), rate=2.0, duration=10.0)
        for r in pipe.requests:
            if r.status is not RagStatus.COMPLETED:
                continue
            gen_start = r.stage_times["generate"][0]
            assert gen_start >= r.stage_times["retrieve"][1] - 1e-9
            assert gen_start >= r.stage_times["search"][1] - 1e-9

    def test_slot_limit_respected(self):
        cfg = RagConfig(rewrite_slots=2, generate_slots=2)
        pipe = RagPipeline(ReactiveRagPolicy(), config=cfg, seed=0)
        for t in arrivals(10.0, 10.0):
            pipe.submit_at(float(t))
        # busy never exceeds slots while the simulation runs.
        max_busy = 0

        orig = pipe.rewrite._finish

        def probe(request, start):
            nonlocal max_busy
            max_busy = max(max_busy, pipe.rewrite.busy)
            orig(request, start)

        pipe.rewrite._finish = probe
        pipe.run()
        assert max_busy <= 2

    def test_determinism(self):
        a = run(ProactiveRagPolicy(), rate=8.0, duration=15.0, seed=3)
        b = run(ProactiveRagPolicy(), rate=8.0, duration=15.0, seed=3)
        assert a.drop_rate() == b.drop_rate()

    def test_invalid_slots_rejected(self):
        with pytest.raises(ValueError):
            RagPipeline(ReactiveRagPolicy(), config=RagConfig(rewrite_slots=0))


class TestPolicies:
    def test_reactive_only_drops_expired(self):
        pipe = run(ReactiveRagPolicy(), rate=20.0, duration=20.0)
        for r in pipe.requests:
            if r.status is RagStatus.DROPPED:
                assert r.finished_at - r.sent_at > pipe.config.ttft_slo - 1e-9

    def test_proactive_beats_reactive_under_overload(self):
        reactive = run(ReactiveRagPolicy(), rate=16.0, duration=60.0)
        proactive = run(ProactiveRagPolicy(), rate=16.0, duration=60.0)
        assert proactive.drop_rate() < reactive.drop_rate()

    def test_proactive_drops_early_wasting_less(self):
        proactive = run(ProactiveRagPolicy(), rate=16.0, duration=60.0)
        drops = [r for r in proactive.requests if r.status is RagStatus.DROPPED]
        assert drops
        # A substantial share of proactive drops happen at admission,
        # before any stage executed; and none of the drops ever occupied a
        # generate slot (TTFT work is never wasted on doomed requests).
        fresh = [r for r in drops if not r.stage_times]
        assert len(fresh) >= len(drops) // 4
        assert all("generate" not in r.stage_times for r in drops)

    def test_oracle_estimates_use_true_output_length(self):
        cfg = RagConfig()
        pipe = RagPipeline(PredictRagPolicy(), config=cfg, seed=0)
        policy = pipe.policy
        req = pipe.requests  # none yet
        pipe.submit_at(0.0)
        request = pipe.requests[0]
        est = policy._rewrite_estimate(request, pipe)
        exact = cfg.rewrite_base + cfg.rewrite_per_token * request.rewrite_tokens
        assert est == pytest.approx(exact)  # empty queue -> no penalty

    def test_stage_latency_samples_populated(self):
        pipe = run(ProactiveRagPolicy(), rate=6.0, duration=20.0)
        samples = pipe.stage_latency_samples()
        for stage in ("rewrite", "retrieve", "search", "generate"):
            assert samples[stage]

    def test_search_has_heavier_tail_than_retrieve(self):
        pipe = run(ReactiveRagPolicy(), rate=4.0, duration=40.0)
        s = pipe.stage_latency_samples()
        search_p95 = float(np.quantile(s["search"], 0.95))
        retrieve_p95 = float(np.quantile(s["retrieve"], 0.95))
        assert search_p95 > retrieve_p95
