"""Tests for model profiles and the default registry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pipeline.applications import APPLICATIONS, get_application
from repro.pipeline.profiles import DEFAULT_PROFILES, ModelProfile, ProfileRegistry


class TestModelProfile:
    def prof(self, **kw) -> ModelProfile:
        args = dict(name="m", base=0.02, per_item=0.005, max_batch=16)
        args.update(kw)
        return ModelProfile(**args)

    def test_duration_is_affine(self):
        p = self.prof()
        assert p.duration(1) == pytest.approx(0.025)
        assert p.duration(4) == pytest.approx(0.040)

    def test_throughput_increases_with_batch(self):
        p = self.prof()
        ths = [p.throughput(b) for b in range(1, 17)]
        assert ths == sorted(ths)
        assert p.max_throughput() == pytest.approx(p.throughput(16))

    def test_batch_bounds_enforced(self):
        p = self.prof()
        with pytest.raises(ValueError):
            p.duration(0)
        with pytest.raises(ValueError):
            p.duration(17)

    def test_feasible_batch(self):
        p = self.prof()
        assert p.feasible_batch(0.040) == 4
        assert p.feasible_batch(0.025) == 1
        assert p.feasible_batch(0.010) == 0  # cannot fit even one
        assert p.feasible_batch(10.0) == 16  # capped at max_batch

    def test_feasible_batch_duration_fits(self):
        p = self.prof()
        for budget in (0.03, 0.05, 0.08):
            b = p.feasible_batch(budget)
            if b:
                assert p.duration(b) <= budget + 1e-12

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            self.prof(base=0.0)
        with pytest.raises(ValueError):
            self.prof(per_item=-0.001)
        with pytest.raises(ValueError):
            self.prof(max_batch=0)

    @given(st.floats(min_value=0.001, max_value=1.0))
    def test_property_feasible_batch_maximal(self, budget):
        p = self.prof()
        b = p.feasible_batch(budget)
        if b and b < p.max_batch:
            assert p.duration(b + 1) > budget - 1e-8


class TestRegistry:
    def test_duplicate_rejected(self):
        reg = ProfileRegistry([ModelProfile("x", 0.01, 0.001)])
        with pytest.raises(ValueError):
            reg.register(ModelProfile("x", 0.02, 0.002))

    def test_unknown_lookup_raises_with_hint(self):
        reg = ProfileRegistry()
        with pytest.raises(KeyError, match="no profile registered"):
            reg.get("nope")

    def test_contains_and_names(self):
        reg = ProfileRegistry([ModelProfile("b", 0.01, 0.001),
                               ModelProfile("a", 0.01, 0.001)])
        assert "a" in reg and "c" not in reg
        assert reg.names() == ["a", "b"]


class TestApplications:
    def test_all_application_models_profiled(self):
        for name in APPLICATIONS:
            app = get_application(name)
            for m in app.spec.modules:
                assert m.model in DEFAULT_PROFILES

    def test_paper_module_counts_and_slos(self):
        assert len(get_application("tm").spec) == 3
        assert len(get_application("lv").spec) == 5
        assert len(get_application("gm").spec) == 5
        assert len(get_application("da").spec) == 5
        assert get_application("tm").slo == pytest.approx(0.400)
        assert get_application("lv").slo == pytest.approx(0.500)
        assert get_application("gm").slo == pytest.approx(0.600)
        assert get_application("da").slo == pytest.approx(0.420)

    def test_da_is_a_dag_with_fork_and_join(self):
        spec = get_application("da").spec
        assert not spec.is_chain
        assert spec.successors("m1") == ("m2", "m3")
        assert spec.predecessors("m4") == ("m2", "m3")
        assert len(spec.paths_from("m1")) == 2

    def test_unknown_application(self):
        with pytest.raises(KeyError):
            get_application("nope")
