"""Tests for pipeline specifications (chains, DAGs, JSON round-trip)."""

from __future__ import annotations

import pytest

from repro.pipeline.spec import ModuleSpec, PipelineSpec, chain


class TestChainBuilder:
    def test_chain_structure(self):
        spec = chain("p", ["a", "b", "c"])
        assert spec.module_ids == ["m1", "m2", "m3"]
        assert spec.entry_ids == ["m1"]
        assert spec.exit_ids == ["m3"]
        assert spec.is_chain
        assert spec.successors("m1") == ("m2",)
        assert spec.predecessors("m3") == ("m2",)

    def test_single_module_chain(self):
        spec = chain("p", ["a"])
        assert spec.entry_ids == spec.exit_ids == ["m1"]

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            chain("p", [])

    def test_index_of(self):
        spec = chain("p", ["a", "b", "c"])
        assert spec.index_of("m2") == 1


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a"),
                    ModuleSpec("m1", "b"),
                ],
            )

    def test_unknown_reference_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            PipelineSpec(
                name="bad",
                modules=[ModuleSpec("m1", "a", subs=("ghost",))],
            )

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a", pres=("m2",), subs=("m2",)),
                    ModuleSpec("m2", "b", pres=("m1",), subs=("m1",)),
                ],
            )

    def test_inconsistent_edges_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a", subs=("m2",)),
                    ModuleSpec("m2", "b", pres=()),  # missing mirror
                ],
            )

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            PipelineSpec(
                name="bad",
                modules=[ModuleSpec("m1", "a"), ModuleSpec("m2", "b")],
            )


class TestDagPaths:
    def dag(self) -> PipelineSpec:
        return PipelineSpec(
            name="dag",
            modules=[
                ModuleSpec("m1", "a", subs=("m2", "m3")),
                ModuleSpec("m2", "b", pres=("m1",), subs=("m4",)),
                ModuleSpec("m3", "c", pres=("m1",), subs=("m4",)),
                ModuleSpec("m4", "d", pres=("m2", "m3")),
            ],
        )

    def test_not_a_chain(self):
        assert not self.dag().is_chain

    def test_paths_from_entry(self):
        paths = self.dag().paths_from("m1")
        assert sorted(paths) == [["m2", "m4"], ["m3", "m4"]]

    def test_paths_from_exit_is_empty_path(self):
        assert self.dag().paths_from("m4") == [[]]

    def test_paths_cached(self):
        spec = self.dag()
        assert spec.paths_from("m1") is spec.paths_from("m1")

    def test_downstream(self):
        assert self.dag().downstream("m1") == ["m2", "m3", "m4"]
        assert self.dag().downstream("m4") == []

    def test_topological_order_valid(self):
        spec = self.dag()
        order = spec.topological_order()
        assert order.index("m1") < order.index("m2") < order.index("m4")
        assert order.index("m1") < order.index("m3") < order.index("m4")


class TestFrozenStructure:
    """The precomputed DAG views must agree with a networkx recomputation."""

    def wide(self) -> PipelineSpec:
        # Two sequential forks feeding one join plus a diamond: exercises
        # nested reachability the per-edge accumulation must get right.
        return PipelineSpec(
            name="wide",
            modules=[
                ModuleSpec("s", "a", subs=("f1", "f2")),
                ModuleSpec("f1", "b", pres=("s",), subs=("j",)),
                ModuleSpec("f2", "c", pres=("s",), subs=("g1", "g2")),
                ModuleSpec("g1", "d", pres=("f2",), subs=("j",)),
                ModuleSpec("g2", "e", pres=("f2",), subs=("j",)),
                ModuleSpec("j", "f", pres=("f1", "g1", "g2"), subs=("t",)),
                ModuleSpec("t", "g", pres=("j",)),
            ],
        )

    def test_downstream_matches_networkx(self):
        import networkx as nx

        spec = self.wide()
        graph = nx.DiGraph()
        graph.add_nodes_from(spec.module_ids)
        for mid in spec.module_ids:
            for s in spec.successors(mid):
                graph.add_edge(mid, s)
        topo = list(nx.lexicographical_topological_sort(graph))
        for mid in spec.module_ids:
            reach = nx.descendants(graph, mid)
            assert spec.downstream(mid) == [m for m in topo if m in reach]
            assert spec.downstream_set(mid) == frozenset(reach)

    def test_downstream_returns_fresh_list(self):
        spec = self.wide()
        first = spec.downstream("s")
        first.append("corrupted")
        assert "corrupted" not in spec.downstream("s")

    def test_topological_order_returns_fresh_list(self):
        spec = self.wide()
        order = spec.topological_order()
        original = list(order)
        order.clear()
        assert spec.topological_order() == original

    def test_joins_reached(self):
        spec = self.wide()
        # "j" is the only join; every upstream module reaches it, the
        # terminal does not, and the join reaches itself by definition.
        for mid in ("s", "f1", "f2", "g1", "g2", "j"):
            assert spec.joins_reached(mid) == ("j",)
        assert spec.joins_reached("t") == ()

    def test_index_of_unknown_raises(self):
        with pytest.raises(ValueError):
            self.wide().index_of("nope")

    def test_chain_has_no_joins(self):
        spec = chain("c", ["a", "b", "c"])
        for mid in spec.module_ids:
            assert spec.joins_reached(mid) == ()


class TestJsonRoundTrip:
    def test_round_trip(self):
        spec = chain("rt", ["a", "b"])
        clone = PipelineSpec.from_json(spec.to_json())
        assert clone.name == "rt"
        assert clone.module_ids == spec.module_ids
        assert clone["m1"].model == "a"
        assert clone.successors("m1") == ("m2",)

    def test_from_file(self, tmp_path):
        spec = chain("ff", ["a", "b", "c"])
        path = tmp_path / "pipe.json"
        path.write_text(spec.to_json())
        loaded = PipelineSpec.from_file(path)
        assert loaded.module_ids == spec.module_ids

    def test_contains_and_getitem(self):
        spec = chain("p", ["a"])
        assert "m1" in spec
        assert "mX" not in spec
        assert spec["m1"].model == "a"
        assert len(spec) == 1
