"""Tests for pipeline specifications (chains, DAGs, JSON round-trip)."""

from __future__ import annotations

import pytest

from repro.pipeline.spec import ModuleSpec, PipelineSpec, chain


class TestChainBuilder:
    def test_chain_structure(self):
        spec = chain("p", ["a", "b", "c"])
        assert spec.module_ids == ["m1", "m2", "m3"]
        assert spec.entry_ids == ["m1"]
        assert spec.exit_ids == ["m3"]
        assert spec.is_chain
        assert spec.successors("m1") == ("m2",)
        assert spec.predecessors("m3") == ("m2",)

    def test_single_module_chain(self):
        spec = chain("p", ["a"])
        assert spec.entry_ids == spec.exit_ids == ["m1"]

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            chain("p", [])

    def test_index_of(self):
        spec = chain("p", ["a", "b", "c"])
        assert spec.index_of("m2") == 1


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a"),
                    ModuleSpec("m1", "b"),
                ],
            )

    def test_unknown_reference_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            PipelineSpec(
                name="bad",
                modules=[ModuleSpec("m1", "a", subs=("ghost",))],
            )

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a", pres=("m2",), subs=("m2",)),
                    ModuleSpec("m2", "b", pres=("m1",), subs=("m1",)),
                ],
            )

    def test_inconsistent_edges_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a", subs=("m2",)),
                    ModuleSpec("m2", "b", pres=()),  # missing mirror
                ],
            )

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            PipelineSpec(
                name="bad",
                modules=[ModuleSpec("m1", "a"), ModuleSpec("m2", "b")],
            )

    def test_duplicate_successor_edge_rejected(self):
        # nx would silently deduplicate m1->m2 twice, but the request flow
        # would deliver two tokens over it — reject at construction.
        with pytest.raises(ValueError, match="duplicate successor"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a", subs=("m2", "m2")),
                    ModuleSpec("m2", "b", pres=("m1",)),
                ],
            )

    def test_duplicate_predecessor_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate predecessor"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a", subs=("m2",)),
                    ModuleSpec("m2", "b", pres=("m1", "m1")),
                ],
            )

    def test_unreachable_cycle_named(self):
        # A cycle hanging off the reachable DAG: diagnosed as the
        # unreachable region it is, naming the modules.
        with pytest.raises(ValueError, match=r"unreachable.*\['m3', 'm4'\]"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a", subs=("m2",)),
                    ModuleSpec("m2", "b", pres=("m1", "m4")),
                    ModuleSpec("m3", "c", pres=("m4",), subs=("m4",)),
                    ModuleSpec("m4", "d", pres=("m3",), subs=("m2", "m3")),
                ],
            )

    def test_all_modules_with_preds_rejected(self):
        with pytest.raises(ValueError, match="no entry module"):
            PipelineSpec(
                name="bad",
                modules=[
                    ModuleSpec("m1", "a", pres=("m2",), subs=("m2",)),
                    ModuleSpec("m2", "b", pres=("m1",), subs=("m1",)),
                ],
            )


class TestDagPaths:
    def dag(self) -> PipelineSpec:
        return PipelineSpec(
            name="dag",
            modules=[
                ModuleSpec("m1", "a", subs=("m2", "m3")),
                ModuleSpec("m2", "b", pres=("m1",), subs=("m4",)),
                ModuleSpec("m3", "c", pres=("m1",), subs=("m4",)),
                ModuleSpec("m4", "d", pres=("m2", "m3")),
            ],
        )

    def test_not_a_chain(self):
        assert not self.dag().is_chain

    def test_paths_from_entry(self):
        paths = self.dag().paths_from("m1")
        assert sorted(paths) == [["m2", "m4"], ["m3", "m4"]]

    def test_paths_from_exit_is_empty_path(self):
        assert self.dag().paths_from("m4") == [[]]

    def test_paths_cached(self):
        spec = self.dag()
        assert spec.paths_from("m1") is spec.paths_from("m1")

    def test_downstream(self):
        assert self.dag().downstream("m1") == ["m2", "m3", "m4"]
        assert self.dag().downstream("m4") == []

    def test_topological_order_valid(self):
        spec = self.dag()
        order = spec.topological_order()
        assert order.index("m1") < order.index("m2") < order.index("m4")
        assert order.index("m1") < order.index("m3") < order.index("m4")


class TestFrozenStructure:
    """The precomputed DAG views must agree with a networkx recomputation."""

    def wide(self) -> PipelineSpec:
        # Two sequential forks feeding one join plus a diamond: exercises
        # nested reachability the per-edge accumulation must get right.
        return PipelineSpec(
            name="wide",
            modules=[
                ModuleSpec("s", "a", subs=("f1", "f2")),
                ModuleSpec("f1", "b", pres=("s",), subs=("j",)),
                ModuleSpec("f2", "c", pres=("s",), subs=("g1", "g2")),
                ModuleSpec("g1", "d", pres=("f2",), subs=("j",)),
                ModuleSpec("g2", "e", pres=("f2",), subs=("j",)),
                ModuleSpec("j", "f", pres=("f1", "g1", "g2"), subs=("t",)),
                ModuleSpec("t", "g", pres=("j",)),
            ],
        )

    def test_downstream_matches_networkx(self):
        import networkx as nx

        spec = self.wide()
        graph = nx.DiGraph()
        graph.add_nodes_from(spec.module_ids)
        for mid in spec.module_ids:
            for s in spec.successors(mid):
                graph.add_edge(mid, s)
        topo = list(nx.lexicographical_topological_sort(graph))
        for mid in spec.module_ids:
            reach = nx.descendants(graph, mid)
            assert spec.downstream(mid) == [m for m in topo if m in reach]
            assert spec.downstream_set(mid) == frozenset(reach)

    def test_downstream_returns_fresh_list(self):
        spec = self.wide()
        first = spec.downstream("s")
        first.append("corrupted")
        assert "corrupted" not in spec.downstream("s")

    def test_topological_order_returns_fresh_list(self):
        spec = self.wide()
        order = spec.topological_order()
        original = list(order)
        order.clear()
        assert spec.topological_order() == original

    def test_token_flow_tables(self):
        spec = self.wide()
        assert spec.join_ids == ("j",)
        assert set(spec.fork_ids) == {"s", "f2"}
        assert spec.exit_count == 1
        assert spec.in_degree("j") == 3
        assert spec.in_degree("s") == 0
        assert spec.in_degree("t") == 1

    def test_edge_kill_plan_single_branch(self):
        spec = self.wide()
        # Not routing s -> f1 kills f1 only; j survives one token short.
        plan = spec.edge_kill_plan("s", "f1")
        assert plan.dead == ("f1",)
        assert plan.dead_exits == 0
        assert plan.join_deltas == (("j", 1),)
        # Not routing f2 -> g1 kills g1 only, same border join.
        plan = spec.edge_kill_plan("f2", "g1")
        assert plan.dead == ("g1",)
        assert plan.join_deltas == (("j", 1),)

    def test_edge_kill_plan_kills_nested_fork(self):
        spec = self.wide()
        # Not routing s -> f2 kills the whole nested fork: g1 and g2 can
        # never receive a token, so j loses two of its three in-edges.
        plan = spec.edge_kill_plan("s", "f2")
        assert set(plan.dead) == {"f2", "g1", "g2"}
        assert plan.dead_exits == 0
        assert plan.join_deltas == (("j", 2),)

    def test_edge_kill_plan_non_fork_edge_raises(self):
        spec = self.wide()
        with pytest.raises(ValueError, match="not a fork edge"):
            spec.edge_kill_plan("j", "t")
        with pytest.raises(ValueError, match="not a fork edge"):
            spec.edge_kill_plan("s", "t")

    def test_death_plan_propagates_to_exit(self):
        spec = self.wide()
        # If j never executes, everything downstream of it dies too.
        plan = spec.death_plan("j")
        assert plan.dead == ("t",)
        assert plan.dead_exits == 1
        assert plan.join_deltas == ()
        # An exit's death plan is empty (nothing downstream).
        assert spec.death_plan("t").dead == ()

    def test_index_of_unknown_raises(self):
        with pytest.raises(ValueError):
            self.wide().index_of("nope")

    def test_chain_has_no_joins_or_forks(self):
        spec = chain("c", ["a", "b", "c"])
        assert spec.join_ids == ()
        assert spec.fork_ids == ()
        assert spec.exit_count == 1
        for mid in spec.module_ids:
            assert spec.in_degree(mid) <= 1


class TestJsonRoundTrip:
    def test_round_trip(self):
        spec = chain("rt", ["a", "b"])
        clone = PipelineSpec.from_json(spec.to_json())
        assert clone.name == "rt"
        assert clone.module_ids == spec.module_ids
        assert clone["m1"].model == "a"
        assert clone.successors("m1") == ("m2",)

    def test_from_file(self, tmp_path):
        spec = chain("ff", ["a", "b", "c"])
        path = tmp_path / "pipe.json"
        path.write_text(spec.to_json())
        loaded = PipelineSpec.from_file(path)
        assert loaded.module_ids == spec.module_ids

    def test_contains_and_getitem(self):
        spec = chain("p", ["a"])
        assert "m1" in spec
        assert "mX" not in spec
        assert spec["m1"].model == "a"
        assert len(spec) == 1
