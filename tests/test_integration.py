"""Cross-feature integration tests: the full system running together."""

from __future__ import annotations

from repro.core.policy import PardPolicy
from repro.experiments import ExperimentConfig, build_cluster, run_experiment
from repro.metrics import summarize
from repro.simulation import (
    FailureEvent,
    FailureInjector,
    ProbabilisticRouter,
    ReactiveScaler,
    RequestStatus,
)
from repro.workload import poisson_trace, replay, tweet_trace


class TestKitchenSink:
    """PARD + DAG + dynamic routing + scaling + failures + network delay,
    all at once: conservation and sanity invariants must hold."""

    def build(self):
        trace = tweet_trace(base_rate=70, duration=25, seed=6)
        config = ExperimentConfig(
            app="da", trace="tweet", custom_trace=trace,
            workers=2, seed=6,
        )
        cluster = build_cluster(config, PardPolicy(samples=500, seed=6), trace)
        cluster.router = ProbabilisticRouter(seed=6)
        cluster.hop_delay = 0.002
        ReactiveScaler(cluster, cold_start=3.0).start()
        injector = FailureInjector(
            cluster,
            events=[FailureEvent(time=10.0, module_id="m1", workers=1,
                                 downtime=4.0)],
        )
        injector.schedule_all()
        replay(trace, cluster)
        return trace, cluster

    def test_every_request_terminates_exactly_once(self):
        trace, cluster = self.build()
        records = cluster.metrics.records
        assert len(records) == len(trace)
        assert len({r.rid for r in records}) == len(records)
        assert all(
            r.status in (RequestStatus.COMPLETED, RequestStatus.DROPPED)
            for r in records
        )

    def test_gpu_accounting_is_consistent(self):
        _, cluster = self.build()
        records = cluster.metrics.records
        total_gpu = sum(r.gpu_time for r in records)
        wasted = sum(r.wasted_gpu_time for r in records)
        assert 0 <= wasted <= total_gpu
        busy = sum(
            w.telemetry.busy_time
            for m in cluster.modules.values()
            for w in m.workers
        )
        # Worker busy time is at least the per-request attributed shares of
        # surviving workers (failed workers took their ledger with them).
        assert busy > 0

    def test_good_requests_really_met_their_slo(self):
        _, cluster = self.build()
        for r in cluster.metrics.records:
            if r.met_slo:
                assert r.latency <= r.slo + 1e-9
                assert r.status is RequestStatus.COMPLETED

    def test_visits_follow_dag_order(self):
        _, cluster = self.build()
        spec = cluster.spec
        for r in cluster.metrics.records:
            seen = {v.module_id for v in r.visits}
            for v in r.visits:
                for pred in spec.predecessors(v.module_id):
                    # A visited module's predecessors on the taken path
                    # must have finished earlier (joins take the max).
                    if pred in seen:
                        assert (
                            r.visits[[x.module_id for x in r.visits]
                                     .index(pred)].execution >= 0
                        )


class TestRegressionNumbers:
    """Frozen-seed regression: the headline comparison stays stable."""

    def test_lv_tweet_headline(self):
        config = ExperimentConfig(
            app="lv", trace="tweet",
            custom_trace=poisson_trace(rate=150, duration=10, seed=3),
            workers={"m1": 2, "m2": 2, "m3": 1, "m4": 1, "m5": 2},
            seed=3,
        )
        result = run_experiment(config, PardPolicy(samples=500, seed=3))
        s = result.summary
        # 150 req/s against a ~154 req/s pool: nearly everything served.
        assert s.total == len(result.trace)
        assert s.drop_rate < 0.25
        assert s.goodput > 100

    def test_summaries_are_deterministic_across_runs(self):
        def once():
            config = ExperimentConfig(
                app="gm", trace="azure", base_rate=40, duration=10, seed=11,
                workers=2,
            )
            r = run_experiment(config, PardPolicy(samples=300, seed=11))
            return (r.summary.good, r.summary.dropped, r.summary.invalid_rate)

        assert once() == once()


class TestDrainGuarantee:
    def test_no_in_flight_requests_after_replay(self):
        trace = poisson_trace(rate=120, duration=6, seed=4)
        config = ExperimentConfig(
            app="tm", trace="tweet", custom_trace=trace, workers=1, seed=4,
        )
        cluster = build_cluster(config, PardPolicy(samples=300, seed=4), trace)
        replay(trace, cluster)
        assert cluster.total_queue_length() == 0
        assert cluster.sim.pending_events == 0
        summary = summarize(cluster.metrics)
        assert summary.total == len(trace)
