"""Tests for the offline profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.profiling import (
    OfflineProfiler,
    SyntheticGpu,
    profile_model,
)


class TestSyntheticGpu:
    def test_latency_scales_with_batch(self):
        gpu = SyntheticGpu(base=0.02, per_item=0.005, jitter=0.0)
        rng = np.random.default_rng(0)
        assert gpu.execute(1, rng) == pytest.approx(0.025)
        assert gpu.execute(8, rng) == pytest.approx(0.060)

    def test_jitter_varies_samples(self):
        gpu = SyntheticGpu(base=0.02, per_item=0.005, jitter=0.05)
        rng = np.random.default_rng(0)
        samples = {gpu.execute(4, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_out_of_range_batch_rejected(self):
        gpu = SyntheticGpu(base=0.02, per_item=0.005, max_batch=8)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gpu.execute(9, rng)
        with pytest.raises(ValueError):
            gpu.execute(0, rng)


class TestOfflineProfiler:
    def test_fit_recovers_true_curve(self):
        gpu = SyntheticGpu(base=0.020, per_item=0.004, jitter=0.02)
        profiler = OfflineProfiler(repeats=50, seed=1)
        profiler.measure(gpu)
        profile = profiler.fit("model", max_batch=gpu.max_batch)
        assert profile.base == pytest.approx(gpu.base, rel=0.25)
        assert profile.per_item == pytest.approx(gpu.per_item, rel=0.15)
        assert profiler.fit_error(gpu, profile) < 0.10

    def test_measurements_respect_max_batch(self):
        gpu = SyntheticGpu(base=0.02, per_item=0.004, max_batch=8)
        profiler = OfflineProfiler(repeats=5, seed=0)
        ms = profiler.measure(gpu)
        assert all(m.batch_size <= 8 for m in ms)
        assert any(m.batch_size == 8 for m in ms)

    def test_fit_requires_measurements(self):
        with pytest.raises(ValueError, match="measure"):
            OfflineProfiler().fit("m")

    def test_repeats_validated(self):
        gpu = SyntheticGpu(base=0.02, per_item=0.004)
        with pytest.raises(ValueError):
            OfflineProfiler(repeats=1).measure(gpu)

    def test_measurement_stats(self):
        gpu = SyntheticGpu(base=0.02, per_item=0.004, jitter=0.05)
        profiler = OfflineProfiler(repeats=40, seed=2)
        ms = profiler.measure(gpu, batch_sizes=[4])
        m = ms[0]
        assert m.p95 >= m.mean > 0

    def test_profile_model_convenience(self):
        gpu = SyntheticGpu(base=0.015, per_item=0.006)
        profile = profile_model("conv", gpu, repeats=30, seed=3)
        assert profile.name == "conv"
        assert profile.max_batch == gpu.max_batch
        # The fitted profile is usable by the batch planner.
        assert profile.feasible_batch(0.1) >= 1

    def test_deterministic_given_seed(self):
        gpu = SyntheticGpu(base=0.02, per_item=0.004)
        a = profile_model("m", gpu, seed=7)
        b = profile_model("m", gpu, seed=7)
        assert a.base == b.base and a.per_item == b.per_item
