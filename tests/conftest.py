"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.pipeline.applications import Application
from repro.pipeline.profiles import ModelProfile, ProfileRegistry
from repro.pipeline.spec import ModuleSpec, PipelineSpec, chain
from repro.interfaces import DropPolicy
from repro.simulation.cluster import Cluster
from repro.simulation.engine import Simulator
from repro.simulation.rng import RngStreams


def tiny_registry() -> ProfileRegistry:
    """Three fast models for quick cluster tests (seconds-scale sims)."""
    return ProfileRegistry(
        [
            ModelProfile("alpha", base=0.020, per_item=0.005, max_batch=8),
            ModelProfile("beta", base=0.015, per_item=0.004, max_batch=8),
            ModelProfile("gamma", base=0.010, per_item=0.003, max_batch=8),
        ]
    )


def tiny_chain_app(n: int = 3, slo: float = 0.300) -> Application:
    """A linear n-module pipeline over the tiny registry models."""
    models = ["alpha", "beta", "gamma"][:n]
    return Application(spec=chain("tiny", models), slo=slo)


def tiny_dag_app(slo: float = 0.350) -> Application:
    """Fork/join DAG: alpha -> {beta, gamma} -> alpha2... simplified.

    m1(alpha) -> m2(beta), m3(gamma) -> m4(beta).
    """
    spec = PipelineSpec(
        name="tiny-dag",
        modules=[
            ModuleSpec("m1", "alpha", pres=(), subs=("m2", "m3")),
            ModuleSpec("m2", "beta", pres=("m1",), subs=("m4",)),
            ModuleSpec("m3", "gamma", pres=("m1",), subs=("m4",)),
            ModuleSpec("m4", "beta", pres=("m2", "m3"), subs=()),
        ],
    )
    return Application(spec=spec, slo=slo)


def make_cluster(
    policy: DropPolicy,
    app: Application | None = None,
    workers: int = 1,
    batch_plan: dict[str, int] | None = None,
    seed: int = 0,
    sync_interval: float = 0.5,
    router=None,
) -> Cluster:
    """Build a small cluster over the tiny registry."""
    app = app or tiny_chain_app()
    return Cluster(
        sim=Simulator(),
        app=app,
        policy=policy,
        workers=workers,
        registry=tiny_registry(),
        batch_plan=batch_plan,
        metrics=MetricsCollector(),
        rng=RngStreams(seed=seed),
        sync_interval=sync_interval,
        router=router,
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()
