"""Tests for PolicySpec: parameterized, serializable policy configuration."""

from __future__ import annotations

import pickle

import pytest

from repro.policies import (
    ADMISSIONS,
    POLICIES,
    ParamSpec,
    PolicySpec,
    admission_params,
    known_admissions,
    known_policies,
    make_policy,
    policy_params,
)
from repro.core.policy import PardPolicy


class TestConstruction:
    def test_bare_name(self):
        spec = PolicySpec("Naive")
        assert spec.name == "Naive" and spec.params == ()
        assert spec.label() == "Naive"

    def test_params_sorted_and_hashable(self):
        a = PolicySpec("PARD", {"samples": 500, "lam": 0.3})
        b = PolicySpec("PARD", {"lam": 0.3, "samples": 500})
        assert a == b and hash(a) == hash(b)
        assert a.params == (("lam", 0.3), ("samples", 500))

    def test_label_includes_params(self):
        spec = PolicySpec("PARD", {"lam": 0.3, "budget_mode": "split"})
        assert spec.label() == "PARD(budget_mode=split, lam=0.3)"

    def test_unknown_param_rejected_at_construction(self):
        with pytest.raises(ValueError, match="does not accept params"):
            PolicySpec("PARD", {"bogus": 1})

    def test_bad_choice_rejected_at_construction(self):
        with pytest.raises(ValueError, match="must be one of"):
            PolicySpec("PARD", {"budget_mode": "nope"})

    def test_type_mismatch_rejected_at_construction(self):
        with pytest.raises(ValueError, match="true/false"):
            PolicySpec("Nexus", {"windowed": "yes"})
        with pytest.raises(ValueError, match="integer"):
            PolicySpec("PARD", {"samples": 10.5})
        with pytest.raises(ValueError, match="number"):
            PolicySpec("PARD", {"lam": "high"})

    def test_int_coerced_to_declared_float(self):
        # JSON authors write 1 where the schema says float; both spellings
        # must be the same spec (and therefore the same fingerprint).
        a = PolicySpec("PARD", {"lam": 1})
        b = PolicySpec("PARD", {"lam": 1.0})
        assert a == b and a.fingerprint() == b.fingerprint()

    def test_unregistered_name_stays_lazy(self):
        spec = PolicySpec("NotYetRegistered", {"k": 1})
        with pytest.raises(ValueError, match="unknown policy"):
            spec.validate()

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ValueError, match="scalar"):
            PolicySpec("PARD", {"lam": [0.1, 0.2]})

    def test_with_params_merges(self):
        base = PolicySpec("PARD", {"samples": 500})
        varied = base.with_params(lam=0.4)
        assert varied.param_dict() == {"samples": 500, "lam": 0.4}
        assert base.param_dict() == {"samples": 500}  # unchanged


class TestSerialisation:
    def test_round_trip_full_form(self):
        spec = PolicySpec("PARD", {"lam": 0.3})
        assert PolicySpec.from_dict(spec.to_dict()) == spec

    def test_compact_form_is_legacy_string(self):
        assert PolicySpec("Naive").to_compact() == "Naive"
        assert PolicySpec.from_dict("Naive") == PolicySpec("Naive")

    def test_compact_and_bare_share_fingerprint(self):
        # A param-less spec and the legacy string must hit the same cache.
        via_dict = PolicySpec.from_dict({"name": "Naive", "params": {}})
        assert via_dict.fingerprint() == PolicySpec("Naive").fingerprint()

    def test_distinct_params_distinct_fingerprints(self):
        prints = {
            PolicySpec("PARD", {"lam": v}).fingerprint()
            for v in (0.05, 0.1, 0.3)
        }
        assert len(prints) == 3

    def test_pickles(self):
        spec = PolicySpec("PARD", {"lam": 0.3})
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_coerce_accepts_all_spellings(self):
        spec = PolicySpec("PARD", {"lam": 0.3})
        assert PolicySpec.coerce(spec) is spec
        assert PolicySpec.coerce("PARD") == PolicySpec("PARD")
        assert PolicySpec.coerce({"name": "PARD", "params": {"lam": 0.3}}) == spec
        with pytest.raises(ValueError, match="policy must be"):
            PolicySpec.coerce(42)


class TestRegistryIntrospection:
    def test_every_policy_declares_a_schema(self):
        assert set(known_policies()) == set(POLICIES)
        for name in known_policies():
            for p in policy_params(name):
                assert isinstance(p, ParamSpec)
                assert p.type in ("float", "int", "str", "bool")

    def test_pard_declares_the_table1_knobs(self):
        names = {p.name for p in policy_params("PARD")}
        assert {"lam", "sub_mode", "wait_mode", "priority_mode",
                "budget_mode"} <= names

    def test_admissions_registered(self):
        assert {"weighted-fair", "token-bucket"} <= set(known_admissions())
        assert {p.name for p in admission_params("token-bucket")} == {
            "rate", "burst"
        }
        assert set(ADMISSIONS) == set(known_admissions())

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            policy_params("NoSuch")
        with pytest.raises(ValueError, match="unknown admission"):
            admission_params("NoSuch")


class TestMakePolicy:
    def test_params_reach_the_policy(self):
        policy = make_policy(PolicySpec("PARD", {"lam": 0.35}), seed=1)
        assert isinstance(policy, PardPolicy)
        assert policy.planner.lam == 0.35

    def test_param_bearing_spec_renames_for_tables(self):
        policy = make_policy(PolicySpec("PARD", {"lam": 0.35}))
        assert policy.name == "PARD(lam=0.35)"
        assert "0.35" in policy.describe()

    def test_bare_name_keeps_canonical_name(self):
        assert make_policy("PARD").name == "PARD"
        assert make_policy(PolicySpec("PARD")).name == "PARD"

    def test_mode_knobs_construct_the_matching_ablation_config(self):
        policy = make_policy(PolicySpec("PARD", {"budget_mode": "split"}))
        assert policy.budget_mode == "split"
        policy = make_policy(PolicySpec("PARD", {"priority_mode": "fcfs"}))
        assert policy.priority.mode == "fcfs"

    def test_ablations_accept_passthrough_params(self):
        policy = make_policy(PolicySpec("PARD-back", {"lam": 0.2}))
        assert isinstance(policy, PardPolicy)
        assert policy.planner.lam == 0.2
        assert policy.broker.sub_mode == "none"  # the defining knob holds

    def test_oc_params(self):
        policy = make_policy(PolicySpec("PARD-oc", {"threshold": 0.05}))
        assert policy.threshold == 0.05

    def test_unknown_policy_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("NoSuchPolicy")


def test_unregistered_spec_fingerprint_canonical_over_numeric_spelling():
    # No schema coercion ran (the name is not registered), yet int- and
    # float-authored params must share one cache identity.
    a = PolicySpec("some-plugin-policy", {"k": 1})
    b = PolicySpec("some-plugin-policy", {"k": 1.0})
    assert a.fingerprint() == b.fingerprint()
