"""Tests for the Nexus windowed-scan variant and graceful draining."""

from __future__ import annotations

from repro.policies.naive import NaivePolicy
from repro.policies.nexus import NexusPolicy
from repro.simulation.request import RequestStatus
from repro.workload.generators import constant_trace, step_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app


def run(policy, rate=120.0, duration=8.0, slo=0.2):
    app = tiny_chain_app(n=3, slo=slo)
    cluster = make_cluster(policy, app=app, workers=1,
                           batch_plan={"m1": 4, "m2": 4, "m3": 4})
    replay(constant_trace(rate, duration), cluster)
    return cluster


class TestWindowedNexus:
    def test_windowed_scan_drops_under_overload(self):
        cluster = run(NexusPolicy(windowed=True))
        dropped = [
            r for r in cluster.metrics.records
            if r.status is RequestStatus.DROPPED
        ]
        assert dropped

    def test_all_requests_accounted(self):
        cluster = run(NexusPolicy(windowed=True))
        assert len(cluster.metrics.records) == 120 * 8

    def test_no_drops_when_underloaded(self):
        cluster = run(NexusPolicy(windowed=True), rate=20.0, slo=1.0)
        assert all(r.met_slo for r in cluster.metrics.records)

    def test_windowed_and_per_request_agree_qualitatively(self):
        plain = run(NexusPolicy(windowed=False))
        scan = run(NexusPolicy(windowed=True))
        from repro.metrics import summarize

        s_plain = summarize(plain.metrics, duration=8.0)
        s_scan = summarize(scan.metrics, duration=8.0)
        # Both formulations shed comparable load under the same overload.
        assert abs(s_plain.drop_rate - s_scan.drop_rate) < 0.30
        assert s_scan.goodput > 0

    def test_default_is_per_request(self):
        assert NexusPolicy().windowed is False


class TestGracefulDraining:
    def make(self):
        app = tiny_chain_app(n=1, slo=5.0)
        return make_cluster(NaivePolicy(), app=app, workers=3,
                            batch_plan={"m1": 4})

    def test_drain_prefers_idle_worker(self):
        cluster = self.make()
        module = cluster.modules["m1"]
        assert module.drain_worker()
        assert module.n_workers == 2  # idle worker removed immediately

    def test_busy_worker_drains_after_finishing(self):
        cluster = self.make()
        module = cluster.modules["m1"]
        # Make every worker busy.
        for i in range(6):
            cluster.submit_at(0.0)
        cluster.sim.run(max_events=6)  # deliver the submissions
        busy = [w for w in module.workers if not w.idle]
        assert busy
        n_before = module.n_workers
        assert module.drain_worker()
        draining = [w for w in module.workers if w.draining]
        if draining:  # marked, not yet removed
            assert module.n_workers == n_before
            cluster.sim.run()
            assert module.n_workers == n_before - 1
            assert all(not w.draining for w in module.workers)

    def test_draining_worker_receives_no_new_requests(self):
        cluster = self.make()
        module = cluster.modules["m1"]
        victim = module.workers[0]
        victim.draining = True
        for i in range(9):
            cluster.submit_at(0.001 * i)
        cluster.sim.run()
        assert victim.telemetry.executed_requests == 0

    def test_never_drain_last_active_worker(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_chain_app(n=1, slo=5.0),
                               workers=1, batch_plan={"m1": 4})
        module = cluster.modules["m1"]
        assert not module.drain_worker()
        assert module.n_workers == 1

    def test_scaler_uses_draining_under_load(self):
        from repro.simulation.scaling import ReactiveScaler

        app = tiny_chain_app(n=1, slo=5.0)
        cluster = make_cluster(NaivePolicy(), app=app, workers=4,
                               batch_plan={"m1": 4})
        scaler = ReactiveScaler(cluster, interval=1.0, cold_start=0.5,
                                scale_in_patience=2, graceful_scale_in=True)
        scaler.start()
        # Moderate load that keeps workers busy but needs only one worker.
        replay(step_trace([(0.0, 30.0)], duration=20.0, seed=1), cluster)
        assert cluster.modules["m1"].n_workers < 4


class TestNewMetrics:
    def test_latency_percentiles(self):
        from repro.metrics import latency_percentiles

        cluster = run(NexusPolicy(), rate=20.0, slo=1.0)
        pcts = latency_percentiles(cluster.metrics, qs=(0.5, 0.99))
        assert set(pcts) == {0.5, 0.99}
        assert 0 < pcts[0.5] <= pcts[0.99]

    def test_slo_attainment_monotone(self):
        from repro.metrics import slo_attainment_curve

        cluster = run(NexusPolicy())
        curve = slo_attainment_curve(
            cluster.metrics, slos=(0.05, 0.1, 0.2, 0.5, 2.0)
        )
        values = [curve[s] for s in sorted(curve)]
        assert values == sorted(values)
        assert 0.0 <= values[0] and values[-1] <= 1.0

    def test_empty_collectors(self):
        from repro.metrics import (
            MetricsCollector,
            latency_percentiles,
            slo_attainment_curve,
        )

        assert latency_percentiles(MetricsCollector()) == {}
        assert slo_attainment_curve(MetricsCollector(), (0.1,)) == {0.1: 0.0}
