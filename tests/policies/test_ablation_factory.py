"""Tests for the Table-1 ablation factory configuration."""

from __future__ import annotations

import pytest

from repro.core.broker import SubMode
from repro.core.policy import BudgetMode, PardPolicy
from repro.core.priority import PriorityMode
from repro.core.state_planner import WaitMode
from repro.policies.ablations import ABLATIONS, make_ablation
from repro.policies.overload_control import OverloadControlPolicy

PAPER_TABLE1 = {
    "PARD-back",
    "PARD-sf",
    "PARD-oc",
    "PARD-split",
    "PARD-WCL",
    "PARD-lower",
    "PARD-upper",
    "PARD-FCFS",
    "PARD-HBF",
    "PARD-LBF",
}


def test_every_table1_row_is_available():
    assert PAPER_TABLE1 <= set(ABLATIONS)
    assert "PARD" in ABLATIONS
    assert "PARD-instant" in ABLATIONS  # §5.3's extra variant


def test_names_match_keys():
    for name in ABLATIONS:
        assert make_ablation(name).name == name


def test_unknown_name_rejected():
    with pytest.raises(KeyError, match="unknown ablation"):
        make_ablation("PARD-bogus")


@pytest.mark.parametrize(
    ("name", "attr", "expected"),
    [
        ("PARD-back", "sub", SubMode.NONE),
        ("PARD-sf", "sub", SubMode.DURATIONS),
        ("PARD", "sub", SubMode.FULL),
        ("PARD-lower", "wait", WaitMode.LOWER),
        ("PARD-upper", "wait", WaitMode.UPPER),
        ("PARD", "wait", WaitMode.QUANTILE),
        ("PARD-split", "budget", BudgetMode.SPLIT),
        ("PARD-WCL", "budget", BudgetMode.WCL),
        ("PARD", "budget", BudgetMode.E2E),
        ("PARD-FCFS", "priority", PriorityMode.FCFS),
        ("PARD-HBF", "priority", PriorityMode.HBF),
        ("PARD-LBF", "priority", PriorityMode.LBF),
        ("PARD-instant", "priority", PriorityMode.INSTANT),
        ("PARD", "priority", PriorityMode.ADAPTIVE),
    ],
)
def test_single_knob_changed(name, attr, expected):
    policy = make_ablation(name)
    assert isinstance(policy, PardPolicy)
    actual = {
        "sub": lambda p: p.broker.sub_mode,
        "wait": lambda p: p.planner.wait_mode,
        "budget": lambda p: p.budget_mode,
        "priority": lambda p: p.priority.mode,
    }[attr](policy)
    assert actual == expected


def test_each_ablation_changes_exactly_one_knob():
    """Every PardPolicy-based ablation differs from PARD in one dimension."""
    base = make_ablation("PARD")
    knobs = {
        "sub": lambda p: p.broker.sub_mode,
        "wait": lambda p: p.planner.wait_mode,
        "budget": lambda p: p.budget_mode,
        "priority": lambda p: p.priority.mode,
    }
    for name in ABLATIONS:
        policy = make_ablation(name)
        if not isinstance(policy, PardPolicy) or name == "PARD":
            continue
        diffs = [
            k for k, get in knobs.items() if get(policy) != get(base)
        ]
        assert len(diffs) == 1, f"{name} changed {diffs}"


def test_oc_is_overload_control():
    assert isinstance(make_ablation("PARD-oc"), OverloadControlPolicy)


def test_seed_propagates():
    a = make_ablation("PARD", seed=3)
    assert isinstance(a, PardPolicy)
