"""Tests for the shared-cluster fairness policies on the admission seam."""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_multi_scenario
from repro.experiments.scenario import (
    AppSpec,
    MultiScenario,
    PolicySpec,
    Scenario,
    TenantSpec,
    TraceSpec,
)
from repro.experiments.sweep import run_sweep, scenario_cells
from repro.pipeline.profiles import ModelProfile
from repro.policies.fairness import TokenBucketPolicy, WeightedFairDropPolicy


def tenant(name: str, base_rate: float, policy: str = "Naive",
           **trace_kw) -> TenantSpec:
    """A one-module tenant on a shared model profile ("shared_m")."""
    scenario = Scenario(
        name=name,
        app=AppSpec.chained(
            ["shared_m"], slo=0.4, pipeline=f"{name}-pipe",
            profiles=[
                ModelProfile("shared_m", base=0.02, per_item=0.005,
                             max_batch=8),
            ],
        ),
        trace=TraceSpec(name="poisson", duration=6.0, base_rate=base_rate,
                        **trace_kw),
        policy=policy,
    )
    return TenantSpec(scenario=scenario)


def shared_pair(admission=None, victim_rate=20.0, aggressor_rate=200.0,
                **multi_kw) -> MultiScenario:
    # One worker on the shared pool (~130 req/s capacity): the aggressor's
    # 200 req/s drives genuine contention for the fairness seam to resolve.
    return MultiScenario(
        name="fairness",
        tenants=(
            tenant("victim", victim_rate),
            tenant("aggressor", aggressor_rate),
        ),
        workers=1,
        admission=admission,
        **multi_kw,
    )


class TestDeclaration:
    def test_admission_round_trips_and_fingerprints(self):
        ms = shared_pair(admission={"name": "token-bucket",
                                    "params": {"rate": 30}})
        again = MultiScenario.from_dict(ms.to_dict())
        assert again == ms
        assert again.fingerprint() == ms.fingerprint()
        assert ms.fingerprint() != shared_pair().fingerprint()
        assert ms.admission == PolicySpec("token-bucket", {"rate": 30.0})

    def test_admission_none_serializes_as_null(self):
        assert shared_pair().to_dict()["admission"] is None

    def test_unknown_admission_rejected_by_validate(self):
        ms = shared_pair(admission="no-such-fairness")
        with pytest.raises(ValueError, match="unknown admission"):
            ms.validate()

    def test_bad_admission_params_rejected_at_construction(self):
        with pytest.raises(ValueError, match="does not accept params"):
            shared_pair(admission={"name": "token-bucket",
                                   "params": {"bogus": 1}})

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="rate must be > 0"):
            TokenBucketPolicy({}, rate=0)
        with pytest.raises(ValueError, match="backlog must be > 0"):
            WeightedFairDropPolicy({}, backlog=0)
        with pytest.raises(ValueError, match="slack"):
            WeightedFairDropPolicy({}, slack=0.5)


class TestTokenBucket:
    def test_caps_the_aggressor_not_the_victim(self):
        ms = shared_pair(
            admission={"name": "token-bucket", "params": {"rate": 30.0,
                                                          "burst": 1.0}},
        )
        result = run_multi_scenario(ms)
        victim = result.summaries["victim"]
        aggressor = result.summaries["aggressor"]
        # The victim runs below its sustained rate: nothing rejected.
        assert victim.drop_rate == 0.0
        # The aggressor submits ~200/s against a 30/s refill: the bucket
        # bounds its admitted volume near rate*duration + burst capacity.
        admitted = aggressor.total - aggressor.dropped
        assert aggressor.drop_rate > 0.5
        assert admitted <= 30.0 * 6.0 + 30.0 * 1.0 + 5

    def test_weight_scales_the_refill(self):
        base = shared_pair(
            admission={"name": "token-bucket", "params": {"rate": 30.0}},
        )
        doubled = MultiScenario(
            name=base.name,
            tenants=(base.tenants[0],
                     TenantSpec(scenario=base.tenants[1].scenario,
                                weight=2.0)),
            workers=1,
            admission=base.admission,
        )
        lone = run_multi_scenario(base).summaries["aggressor"]
        fat = run_multi_scenario(doubled).summaries["aggressor"]
        # Twice the weight => twice the refill (and twice the demand, since
        # weight also scales the trace): the admitted-and-served volume
        # roughly doubles.  `completed` counts executions regardless of SLO
        # fate, which is what the bucket actually meters.
        assert fat.completed > lone.completed * 1.5


class TestWeightedFair:
    def test_sheds_only_the_over_share_tenant(self):
        ms = shared_pair(
            admission={"name": "weighted-fair",
                       "params": {"backlog": 1.0, "window": 3.0,
                                  "slack": 1.1}},
        )
        result = run_multi_scenario(ms)
        assert result.summaries["victim"].drop_rate == 0.0
        assert result.summaries["aggressor"].drop_rate > 0.1

    def test_protects_victim_goodput_under_contention(self):
        contended = run_multi_scenario(shared_pair())
        protected = run_multi_scenario(shared_pair(
            admission={"name": "weighted-fair",
                       "params": {"backlog": 1.0, "slack": 1.1}},
        ))
        assert (protected.summaries["victim"].goodput
                >= contended.summaries["victim"].goodput)


class TestDeterminism:
    def test_admission_sweep_bitwise_serial_vs_parallel(self):
        cells = scenario_cells([
            shared_pair(admission={"name": "weighted-fair",
                                   "params": {"backlog": 1.0}}),
            shared_pair(admission={"name": "token-bucket",
                                   "params": {"rate": 25.0}}),
        ])
        serial = run_sweep(cells, workers=1)
        pooled = run_sweep(cells, workers=2)
        assert all(r.ok for r in serial + pooled), [
            r.error for r in serial + pooled if not r.ok
        ]
        for a, b in zip(serial, pooled):
            assert a.summary == b.summary
            assert a.per_app == b.per_app


def test_token_bucket_low_weight_tenant_rate_limited_not_starved():
    """Capacity below one token must floor at 1: the tenant trickles
    through at its (tiny) refill rate instead of being rejected forever."""
    ms = shared_pair(
        victim_rate=20.0,
        aggressor_rate=60.0,
        admission={"name": "token-bucket",
                   "params": {"rate": 2.0, "burst": 0.1}},
    )
    result = run_multi_scenario(ms)
    # cap = max(1, 0.1 * 2.0) = 1 token: ~2 admits/s accrue over 6s.
    for app in ("victim", "aggressor"):
        assert result.summaries[app].completed >= 6, (
            app, result.summaries[app])
