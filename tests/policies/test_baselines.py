"""Behavioural tests for the baseline policies (Naive, Clipper++, Nexus, oc)."""

from __future__ import annotations

import pytest

from repro.policies.clipper import ClipperPlusPlusPolicy
from repro.policies.naive import NaivePolicy
from repro.policies.nexus import NexusPolicy
from repro.policies.overload_control import OverloadControlPolicy
from repro.simulation.request import DropReason, RequestStatus
from repro.workload.generators import constant_trace, step_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app


def run_under_load(policy, slo=0.200, rate=120.0, duration=8.0, workers=1):
    """Replay an overloading constant trace through a tiny 3-module app."""
    app = tiny_chain_app(n=3, slo=slo)
    cluster = make_cluster(policy, app=app, workers=workers,
                           batch_plan={"m1": 4, "m2": 4, "m3": 4})
    replay(constant_trace(rate, duration), cluster)
    return cluster


class TestNaive:
    def test_never_drops_explicitly(self):
        cluster = run_under_load(NaivePolicy())
        assert all(
            r.status is not RequestStatus.DROPPED
            for r in cluster.metrics.records
        )

    def test_overload_causes_slo_violations_instead(self):
        cluster = run_under_load(NaivePolicy())
        violations = [r for r in cluster.metrics.records if not r.met_slo]
        assert violations  # requests complete but blow the SLO
        # And wasted GPU time is accounted as invalid.
        assert sum(r.wasted_gpu_time for r in cluster.metrics.records) > 0


class TestNexus:
    def test_drops_under_overload(self):
        cluster = run_under_load(NexusPolicy())
        dropped = [
            r for r in cluster.metrics.records
            if r.status is RequestStatus.DROPPED
        ]
        assert dropped
        assert all(
            r.drop_reason is DropReason.ESTIMATED_VIOLATION for r in dropped
        )

    def test_no_drops_when_underloaded(self):
        cluster = run_under_load(NexusPolicy(), rate=20.0, slo=1.0)
        assert all(r.met_slo for r in cluster.metrics.records)

    def test_kept_requests_meet_current_module_bound(self):
        """Nexus guarantees L_pre + d_k <= SLO for executed requests at the
        moment of their drop decision."""
        cluster = run_under_load(NexusPolicy())
        for r in cluster.metrics.records:
            if r.status is RequestStatus.COMPLETED and r.visits:
                last = r.visits[-1]
                # At the last module the decision bound implies the finish
                # time estimate was within SLO at decision time.
                started = r.sent_at  # sanity anchor; detailed bound below
                assert last.execution > 0
                assert r.finished_at >= started


class TestClipperPlusPlus:
    def test_cumulative_budgets_increase_along_chain(self):
        policy = ClipperPlusPlusPolicy()
        make_cluster(policy, app=tiny_chain_app(n=3, slo=0.3))
        budgets = [policy._cum_budget[m] for m in ("m1", "m2", "m3")]
        assert budgets == sorted(budgets)
        assert budgets[-1] == pytest.approx(0.3)

    def test_drops_use_already_expired_reason(self):
        cluster = run_under_load(ClipperPlusPlusPolicy())
        dropped = [
            r for r in cluster.metrics.records
            if r.status is RequestStatus.DROPPED
        ]
        assert dropped
        assert all(
            r.drop_reason is DropReason.ALREADY_EXPIRED for r in dropped
        )

    def test_lazy_dropping_wastes_more_than_nexus_drops_early(self):
        """Clipper++ is the laziest reactive policy: it only reacts after
        budget is already blown, so its drops carry executed GPU time more
        often than a fresh-arrival drop would."""
        cluster = run_under_load(ClipperPlusPlusPolicy())
        dropped = [
            r for r in cluster.metrics.records
            if r.status is RequestStatus.DROPPED
        ]
        assert any(r.gpu_time > 0 for r in dropped)


class TestOverloadControl:
    def test_admission_drops_at_entry_only(self):
        policy = OverloadControlPolicy(threshold=0.001, alpha=0.5, seed=1)
        cluster = run_under_load(policy)
        admission_drops = [
            r for r in cluster.metrics.records
            if r.drop_reason is DropReason.ADMISSION_CONTROL
        ]
        assert admission_drops
        assert all(r.dropped_at_module == "m1" for r in admission_drops)
        # Admission-control rejects burn no GPU time at all.
        assert all(r.gpu_time == 0 for r in admission_drops)

    def test_overload_intervals_recorded(self):
        policy = OverloadControlPolicy(threshold=0.001, alpha=0.4, seed=1)
        app = tiny_chain_app(n=3, slo=0.25)
        cluster = make_cluster(policy, app=app, workers=1,
                               batch_plan={"m1": 4, "m2": 4, "m3": 4})
        # Overload then recovery so the interval closes.
        replay(step_trace([(0.0, 150.0), (4.0, 5.0)], duration=10.0, seed=1),
               cluster)
        assert policy.overload_intervals
        start, end = policy.overload_intervals[0]
        assert end > start

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OverloadControlPolicy(threshold=0.0)
        with pytest.raises(ValueError):
            OverloadControlPolicy(alpha=1.5)


class TestPolicyComparison:
    def test_dropping_recovers_after_burst_naive_does_not(self):
        """The paper's core premise: after a transient burst, a dropping
        policy clears the backlog and recovers goodput, while serving
        everything lets the backlog poison post-burst requests."""
        good_after_burst = {}
        for name, policy in (
            ("naive", NaivePolicy()),
            ("nexus", NexusPolicy()),
        ):
            app = tiny_chain_app(n=3, slo=0.200)
            cluster = make_cluster(policy, app=app, workers=1,
                                   batch_plan={"m1": 4, "m2": 4, "m3": 4})
            trace = step_trace(
                [(0.0, 60.0), (3.0, 200.0), (6.0, 60.0)], duration=14.0, seed=2
            )
            replay(trace, cluster)
            good_after_burst[name] = sum(
                1 for r in cluster.metrics.records
                if r.met_slo and r.sent_at > 7.0
            )
        assert good_after_burst["nexus"] > good_after_burst["naive"]
