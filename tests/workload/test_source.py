"""Tests for the streaming arrival-source library.

The contract under test is the PR-8 tentpole: every streaming transform
is *byte-identical* to its eager :class:`Trace` counterpart, sources are
re-iterable and deterministic, and file replay round-trips losslessly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.generators import get_trace, stream_trace
from repro.workload.io import (
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
)
from repro.workload.source import (
    ArrivalSource,
    BurstSource,
    ConcatSource,
    ConstantSource,
    FileSource,
    GeneratorSource,
    SliceSource,
    SpliceSource,
    ThinnedSource,
    TraceSource,
    concat_sources,
    ensure_source,
    trace_file_digest,
)
from repro.workload.trace import Trace


def _bitwise(source: ArrivalSource, trace: Trace) -> None:
    assert source.materialize().arrivals.tobytes() == trace.arrivals.tobytes()
    assert source.name == trace.name
    assert source.duration == trace.duration


class TestConstantSource:
    def test_matches_eager_bitwise(self):
        src = ConstantSource(rate=37.0, duration=50.0)
        eager = get_trace("constant", base_rate=37.0, duration=50.0, seed=0)
        _bitwise(src, eager)

    def test_count_without_iteration(self):
        src = ConstantSource(rate=10.0, duration=30.0)
        assert src.count() == 300
        assert src.mean_rate == pytest.approx(10.0)

    def test_reiterable(self):
        src = ConstantSource(rate=100.0, duration=90.0)
        assert list(src) == list(src)


class TestTransformParity:
    """Streaming transforms == eager Trace methods, bit for bit."""

    @pytest.fixture()
    def trace(self) -> Trace:
        return get_trace("tweet", base_rate=80.0, duration=60.0, seed=4)

    def test_scaled(self, trace):
        _bitwise(TraceSource(trace).scaled(0.4), trace.scaled(0.4))

    def test_burst_thinning(self, trace):
        _bitwise(
            TraceSource(trace).overlay_burst(10.0, 20.0, 0.3, seed=7),
            trace.overlay_burst(10.0, 20.0, 0.3, seed=7),
        )

    def test_burst_amplify(self, trace):
        _bitwise(
            TraceSource(trace).overlay_burst(15.0, 10.0, 3.0, seed=2),
            trace.overlay_burst(15.0, 10.0, 3.0, seed=2),
        )

    def test_burst_to_trace_end(self, trace):
        # Window clipped at the trace duration: the flush happens on
        # stream end, not on a post-window arrival.
        _bitwise(
            TraceSource(trace).overlay_burst(50.0, 99.0, 2.0),
            trace.overlay_burst(50.0, 99.0, 2.0),
        )

    def test_slice(self, trace):
        _bitwise(TraceSource(trace).slice(12.0, 40.0), trace.slice(12.0, 40.0))

    def test_stacked_transforms(self, trace):
        lazy = TraceSource(trace).scaled(0.8).overlay_burst(5.0, 15.0, 2.5)
        eager = trace.scaled(0.8).overlay_burst(5.0, 15.0, 2.5)
        _bitwise(lazy, eager)

    def test_transform_validation(self, trace):
        src = TraceSource(trace)
        with pytest.raises(ValueError):
            src.scaled(1.5)  # thinning only
        with pytest.raises(ValueError):
            src.overlay_burst(99.0, 5.0, 2.0)  # start outside duration
        with pytest.raises(ValueError):
            src.slice(40.0, 12.0)


class TestConcatSplice:
    def test_concat_matches_trace_concat(self):
        a = get_trace("poisson", base_rate=30.0, duration=20.0, seed=1)
        b = get_trace("constant", base_rate=25.0, duration=10.0, seed=0)
        lazy = ConcatSource([TraceSource(a), TraceSource(b)])
        eager = Trace.concat([a, b])
        _bitwise(lazy, eager)
        assert eager.duration == pytest.approx(30.0)
        # Part two re-based after part one's full duration.
        assert np.all(eager.arrivals[len(a):] >= a.duration)

    def test_concat_roundtrip_order(self):
        a = get_trace("poisson", base_rate=40.0, duration=15.0, seed=3)
        b = get_trace("poisson", base_rate=40.0, duration=15.0, seed=9)
        ab = Trace.concat([a, b])
        # The original parts are recoverable by slicing at the seam.
        assert ab.slice(0.0, a.duration).arrivals.tobytes() == \
            a.arrivals.tobytes()

    def test_concat_determinism(self):
        a = get_trace("tweet", base_rate=50.0, duration=12.0, seed=5)
        b = get_trace("tweet", base_rate=50.0, duration=12.0, seed=6)
        one = concat_sources([TraceSource(a), TraceSource(b)])
        two = concat_sources([TraceSource(a), TraceSource(b)])
        assert one.materialize().arrivals.tobytes() == \
            two.materialize().arrivals.tobytes()

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            ConcatSource([])

    def test_splice_matches_trace_splice(self):
        base = get_trace("poisson", base_rate=60.0, duration=40.0, seed=2)
        other = get_trace("constant", base_rate=90.0, duration=8.0, seed=0)
        lazy = TraceSource(base).spliced(TraceSource(other), at=16.0)
        eager = base.splice(other, at=16.0)
        _bitwise(lazy, eager)

    def test_splice_window_content(self):
        base = get_trace("poisson", base_rate=50.0, duration=30.0, seed=8)
        other = get_trace("constant", base_rate=10.0, duration=5.0, seed=0)
        out = base.splice(other, at=10.0)
        window = out.arrivals[(out.arrivals >= 10.0) & (out.arrivals < 15.0)]
        assert window.tobytes() == (other.arrivals + 10.0).tobytes()
        # Outside the window the base survives untouched.
        before = out.arrivals[out.arrivals < 10.0]
        assert before.tobytes() == \
            base.arrivals[base.arrivals < 10.0].tobytes()

    def test_splice_extends_duration(self):
        base = get_trace("constant", base_rate=10.0, duration=10.0, seed=0)
        other = get_trace("constant", base_rate=10.0, duration=8.0, seed=0)
        out = base.splice(other, at=6.0)
        assert out.duration == pytest.approx(14.0)

    def test_splice_bounds_checked(self):
        base = get_trace("constant", base_rate=10.0, duration=10.0, seed=0)
        other = get_trace("constant", base_rate=10.0, duration=2.0, seed=0)
        with pytest.raises(ValueError):
            base.splice(other, at=11.0)


class TestGeneratorSource:
    def test_deterministic_and_reiterable(self):
        src = stream_trace("tweet", base_rate=60.0, duration=40.0, seed=3)
        assert isinstance(src, GeneratorSource)
        first = src.materialize().arrivals
        second = src.materialize().arrivals
        assert first.tobytes() == second.tobytes()

    def test_sorted_within_duration(self):
        src = stream_trace("azure", base_rate=70.0, duration=50.0, seed=1)
        arr = src.materialize().arrivals
        assert np.all(np.diff(arr) >= 0)
        assert arr.size == 0 or (arr[0] >= 0 and arr[-1] < 50.0)

    def test_seed_changes_realization(self):
        a = stream_trace("tweet", base_rate=60.0, duration=30.0, seed=0)
        b = stream_trace("tweet", base_rate=60.0, duration=30.0, seed=1)
        assert a.materialize().arrivals.tobytes() != \
            b.materialize().arrivals.tobytes()

    def test_statistically_matches_envelope(self):
        # Long constant-envelope stream: the realized mean rate should
        # land within a few percent of the declared rate.
        src = stream_trace("poisson", base_rate=100.0, duration=400.0, seed=0)
        assert src.mean_rate == pytest.approx(100.0, rel=0.05)

    def test_constant_stream_is_exact(self):
        src = stream_trace("constant", base_rate=45.0, duration=33.0)
        eager = get_trace("constant", base_rate=45.0, duration=33.0, seed=0)
        _bitwise(src, eager)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            stream_trace("nope", base_rate=10.0, duration=10.0)


class TestFileSource:
    @pytest.fixture()
    def trace(self) -> Trace:
        return get_trace("poisson", base_rate=40.0, duration=25.0, seed=6)

    def test_csv_roundtrip(self, tmp_path, trace):
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        src = FileSource(path)
        assert src.name == trace.name
        assert src.duration == pytest.approx(trace.duration)
        assert src.materialize().arrivals.tobytes() == trace.arrivals.tobytes()

    def test_jsonl_roundtrip(self, tmp_path, trace):
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded.arrivals.tobytes() == trace.arrivals.tobytes()
        src = FileSource(path)
        assert src.materialize().arrivals.tobytes() == trace.arrivals.tobytes()

    def test_digest_pins_content(self, tmp_path, trace):
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        good = trace_file_digest(path)
        FileSource(path, digest=good)  # exact digest accepted
        with pytest.raises(ValueError, match="digest mismatch"):
            FileSource(path, digest="0" * 64)

    def test_unsorted_file_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# trace=bad duration=10\n1.0\n3.0\n2.0\n")
        src = FileSource(path)
        with pytest.raises(ValueError, match="bad.csv"):
            src.count()

    def test_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# trace=bad duration=5\n1.0\n7.0\n")
        src = FileSource(path)
        with pytest.raises(ValueError):
            src.count()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileSource(tmp_path / "absent.csv")

    def test_duration_fallback_scan(self, tmp_path):
        # Headerless file: duration comes from one scan past the last
        # arrival.
        path = tmp_path / "raw.csv"
        path.write_text("0.5\n1.5\n4.25\n")
        src = FileSource(path)
        assert src.duration == pytest.approx(4.25, abs=1e-6)
        assert src.count() == 3

    def test_transforms_compose_on_files(self, tmp_path, trace):
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        lazy = FileSource(path).scaled(0.5)
        assert lazy.materialize().arrivals.tobytes() == \
            trace.scaled(0.5).arrivals.tobytes()


class TestEnsureSource:
    def test_trace_adapts(self):
        trace = get_trace("constant", base_rate=10.0, duration=5.0, seed=0)
        src = ensure_source(trace)
        assert isinstance(src, TraceSource)
        assert ensure_source(src) is src

    def test_iteration_protocols_match(self):
        trace = get_trace("poisson", base_rate=30.0, duration=10.0, seed=0)
        assert list(trace) == list(ensure_source(trace))


class TestTransformClasses:
    """Direct construction checks for the transform sources."""

    def test_thinned_name_and_duration(self):
        src = ThinnedSource(ConstantSource(10.0, 10.0), 0.5)
        assert src.name == "constantx0.5"
        assert src.duration == 10.0

    def test_burst_name(self):
        src = BurstSource(ConstantSource(10.0, 10.0), 2.0, 3.0, 2.0)
        assert src.name == "constant@2x2"

    def test_slice_rebases(self):
        src = SliceSource(ConstantSource(10.0, 10.0), 2.0, 5.0)
        arr = src.materialize().arrivals
        assert src.duration == pytest.approx(3.0)
        assert arr.min() >= 0 and arr.max() < 3.0

    def test_splice_duration(self):
        base = ConstantSource(10.0, 10.0)
        other = ConstantSource(10.0, 8.0)
        assert SpliceSource(base, other, 6.0).duration == pytest.approx(14.0)
