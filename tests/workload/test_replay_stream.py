"""Lazy replay: pump equivalence, bounded memory, error reporting."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.simulation.engine import Simulator
from repro.workload.generators import get_trace
from repro.workload.replay import ArrivalPump
from repro.workload.source import ConstantSource, TraceSource


class TestArrivalPump:
    def test_submits_every_arrival_in_order(self):
        trace = get_trace("poisson", base_rate=50.0, duration=10.0, seed=2)
        sim = Simulator()
        seen: list[float] = []
        pump = ArrivalPump(trace, seen.append, sim.open_lane())
        pump.prime()
        sim.run()
        assert pump.submitted == len(trace)
        assert seen == list(trace.arrivals)

    def test_source_and_trace_streams_match(self):
        trace = get_trace("tweet", base_rate=60.0, duration=15.0, seed=1)

        def drive(workload) -> list[float]:
            sim = Simulator()
            seen: list[float] = []
            ArrivalPump(workload, seen.append, sim.open_lane()).prime()
            sim.run()
            return seen

        assert drive(trace) == drive(TraceSource(trace))

    def test_empty_stream_is_noop(self):
        sim = Simulator()
        pump = ArrivalPump([], lambda t: None, sim.open_lane()).prime()
        sim.run()
        assert pump.submitted == 0

    def test_one_pending_event_per_pump(self):
        trace = get_trace("constant", base_rate=100.0, duration=50.0, seed=0)
        sim = Simulator()
        ArrivalPump(trace, lambda t: None, sim.open_lane()).prime()
        # Eager replay would hold 5000 pending events here; the pump
        # holds exactly one.
        assert sim.pending_events == 1


class TestFlatMemory:
    def test_streamed_replay_peak_is_flat(self):
        """Peak memory of a streamed replay is independent of n.

        200k arrivals pumped through the engine must not allocate
        per-arrival state: the eager pipeline held the full float64
        array plus one heap entry per arrival (> 20 MB at this size);
        the streaming pipeline holds one chunk and one pending event.
        """

        def peak_bytes(n_arrivals: int) -> int:
            rate = 1000.0
            source = ConstantSource(rate, n_arrivals / rate)
            sim = Simulator()
            counter = {"n": 0}

            def submit(t: float) -> None:
                counter["n"] += 1

            tracemalloc.start()
            try:
                ArrivalPump(source, submit, sim.open_lane()).prime()
                sim.run()
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            assert counter["n"] == n_arrivals
            return peak

        small = peak_bytes(20_000)
        large = peak_bytes(200_000)
        # Flat: 10x the arrivals must not grow the peak meaningfully.
        # (A per-arrival leak of even one float would add ~1.4 MB.)
        assert large < small + 512 * 1024
        # And absolutely bounded far below the materialized footprint.
        assert large < 8 * 1024 * 1024


class TestNoArrivalsError:
    def test_message_reports_name_not_repr(self):
        from repro.experiments.runner import ExperimentConfig
        from repro.workload.generators import TRACES, register_trace
        from repro.workload.trace import Trace
        import numpy as np

        name = "empty-for-error-test"

        @register_trace(name)
        def empty(base_rate, duration, seed=0, name=name, **kwargs):
            return Trace(name, np.empty(0), duration)

        try:
            config = ExperimentConfig(
                app="lv", trace=name, duration=10.0, utilization=0.9
            )
            with pytest.raises(ValueError) as err:
                config.resolve_base_rate()
        finally:
            TRACES.pop(name, None)
        message = str(err.value)
        assert name in message
        assert "no arrivals" in message
        # The old message embedded repr(trace); the fix reports the
        # trace by name and pilot size only.
        assert "Trace(" not in message
        assert "array(" not in message
