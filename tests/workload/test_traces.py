"""Tests for the trace container and the synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.generators import (
    arrivals_from_rate,
    azure_trace,
    constant_trace,
    get_trace,
    poisson_trace,
    step_trace,
    tweet_trace,
    wiki_trace,
)
from repro.workload.trace import Trace


class TestTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            Trace("bad", np.array([2.0, 1.0]), duration=5.0)  # unsorted
        with pytest.raises(ValueError):
            Trace("bad", np.array([1.0, 6.0]), duration=5.0)  # out of range

    def test_mean_rate(self):
        t = Trace("t", np.linspace(0, 9.9, 100), duration=10.0)
        assert t.mean_rate == pytest.approx(10.0)

    def test_rate_series_counts_everything(self):
        t = poisson_trace(rate=50, duration=20, seed=1)
        _, rates = t.rate_series(window=2.0)
        assert rates.sum() * 2.0 == len(t)

    def test_slice_rebased(self):
        t = constant_trace(rate=10, duration=10)
        s = t.slice(2.0, 5.0)
        assert s.duration == pytest.approx(3.0)
        assert s.arrivals.min() >= 0
        assert s.arrivals.max() < 3.0
        assert len(s) == pytest.approx(30, abs=1)

    def test_slice_bounds_checked(self):
        t = constant_trace(rate=10, duration=10)
        with pytest.raises(ValueError):
            t.slice(5.0, 3.0)

    def test_thinning(self):
        t = poisson_trace(rate=100, duration=30, seed=2)
        half = t.scaled(0.5)
        assert len(half) == pytest.approx(len(t) / 2, rel=0.15)
        with pytest.raises(ValueError):
            t.scaled(2.0)


class TestGenerators:
    def test_determinism(self):
        a = tweet_trace(base_rate=50, duration=60, seed=5)
        b = tweet_trace(base_rate=50, duration=60, seed=5)
        assert np.array_equal(a.arrivals, b.arrivals)

    def test_seeds_differ(self):
        a = tweet_trace(base_rate=50, duration=60, seed=5)
        b = tweet_trace(base_rate=50, duration=60, seed=6)
        assert not np.array_equal(a.arrivals, b.arrivals)

    def test_poisson_mean_rate(self):
        t = poisson_trace(rate=80, duration=100, seed=0)
        assert t.mean_rate == pytest.approx(80, rel=0.05)

    def test_burstiness_ordering(self):
        """The paper's characterisation: wiki is the calmest trace, azure
        the burstiest."""
        wiki = wiki_trace(base_rate=100, duration=300, seed=0)
        tweet = tweet_trace(base_rate=100, duration=300, seed=0)
        azure = azure_trace(base_rate=100, duration=300, seed=0)
        assert wiki.rate_cv() < azure.rate_cv()
        assert tweet.rate_cv() < azure.rate_cv()

    def test_tweet_burst_doubles_rate(self):
        t = tweet_trace(
            base_rate=100, duration=100, seed=1, burst_at=50, burst_len=20,
            burst_factor=2.0,
        )
        starts, rates = t.rate_series(window=5.0)
        before = rates[(starts >= 25) & (starts < 45)].mean()
        during = rates[(starts >= 55) & (starts < 65)].mean()
        assert during > 1.5 * before

    def test_step_trace_levels(self):
        t = step_trace([(0.0, 20.0), (10.0, 80.0)], duration=20.0, seed=3)
        starts, rates = t.rate_series(window=5.0)
        low = rates[starts < 10].mean()
        high = rates[starts >= 10].mean()
        assert low == pytest.approx(20, rel=0.35)
        assert high == pytest.approx(80, rel=0.25)

    def test_step_trace_validation(self):
        with pytest.raises(ValueError):
            step_trace([(1.0, 10.0)], duration=5.0)
        with pytest.raises(ValueError):
            step_trace([(0.0, 10.0), (0.0, 20.0)], duration=5.0)

    def test_thinning_bias_guard(self):
        with pytest.raises(ValueError, match="peak_rate"):
            arrivals_from_rate(
                lambda t: np.full_like(t, 100.0), 10.0, 50.0, 0, "bad"
            )

    def test_get_trace_lookup(self):
        t = get_trace("wiki", base_rate=50, duration=30, seed=0)
        assert t.name == "wiki"
        with pytest.raises(KeyError):
            get_trace("nope", base_rate=50, duration=30)

    def test_arrivals_within_duration(self):
        for gen in (wiki_trace, tweet_trace, azure_trace):
            t = gen(base_rate=60, duration=45, seed=9)
            assert t.arrivals.min() >= 0
            assert t.arrivals.max() < 45
