"""Tests for trace persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.generators import poisson_trace
from repro.workload.io import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
)
from repro.workload.trace import Trace


@pytest.fixture
def trace() -> Trace:
    return poisson_trace(rate=30, duration=10, seed=5, name="unit")


class TestCsv:
    def test_round_trip(self, trace, tmp_path):
        p = tmp_path / "t.csv"
        save_trace_csv(trace, p)
        loaded = load_trace_csv(p)
        assert loaded.name == "unit"
        assert loaded.duration == trace.duration
        assert np.allclose(loaded.arrivals, trace.arrivals)

    def test_load_plain_timestamp_file(self, tmp_path):
        p = tmp_path / "plain.csv"
        p.write_text("0.5\n1.5\n1.0\n")
        loaded = load_trace_csv(p, name="mine", duration=2.0)
        assert loaded.name == "mine"
        assert list(loaded.arrivals) == [0.5, 1.0, 1.5]  # sorted

    def test_duration_inferred_when_missing(self, tmp_path):
        p = tmp_path / "plain.csv"
        p.write_text("0.5\n2.5\n")
        loaded = load_trace_csv(p)
        assert loaded.duration >= 2.5

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("")
        loaded = load_trace_csv(p)
        assert len(loaded) == 0


class TestJson:
    def test_round_trip(self, trace, tmp_path):
        p = tmp_path / "t.json"
        save_trace_json(trace, p)
        loaded = load_trace_json(p)
        assert loaded.name == trace.name
        assert loaded.duration == trace.duration
        assert np.array_equal(loaded.arrivals, trace.arrivals)

    def test_loaded_trace_is_replayable(self, trace, tmp_path):
        from repro.policies.naive import NaivePolicy
        from repro.workload.replay import replay

        from ..conftest import make_cluster, tiny_chain_app

        p = tmp_path / "t.json"
        save_trace_json(trace, p)
        loaded = load_trace_json(p)
        cluster = make_cluster(NaivePolicy(), app=tiny_chain_app(slo=5.0))
        replay(loaded, cluster)
        assert len(cluster.metrics.records) == len(trace)
