"""Tests for the parallel sweep subsystem."""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.scenario import Scenario
from repro.experiments.sweep import (
    CellResult,
    SweepCell,
    cell_fingerprint,
    execute_cell,
    prune_cache,
    run_sweep,
    summary_table,
    sweep_grid,
)
from repro.workload.generators import constant_trace


def tiny_cells(policies=("Naive", "Nexus"), seeds=(0,)) -> list[SweepCell]:
    """Small fixed-worker cells that simulate in well under a second."""
    return [
        SweepCell(
            config=ExperimentConfig(
                app="tm", trace="tweet", base_rate=25, duration=4.0,
                workers=2, seed=seed,
            ),
            policy=policy,
        )
        for policy in policies
        for seed in seeds
    ]


class TestGrid:
    def test_cross_product(self):
        cells = sweep_grid(
            ["lv", "tm"], ["tweet"], ["PARD", "Naive"], seeds=[0, 1],
            duration=5.0,
        )
        assert len(cells) == 2 * 1 * 2 * 2
        labels = {c.label() for c in cells}
        assert "lv-tweet-PARD-s0" in labels
        assert "tm-tweet-Naive-s1" in labels

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid(["bogus"], ["tweet"], ["Naive"])


class TestFingerprint:
    def test_stable_and_seed_sensitive(self):
        a0 = cell_fingerprint(tiny_cells(seeds=(0,))[0])
        a0_again = cell_fingerprint(tiny_cells(seeds=(0,))[0])
        a1 = cell_fingerprint(tiny_cells(seeds=(1,))[0])
        assert a0 == a0_again
        assert a0 != a1

    def test_policy_sensitive(self):
        naive, nexus = tiny_cells(policies=("Naive", "Nexus"))
        assert cell_fingerprint(naive) != cell_fingerprint(nexus)

    def test_canonical_over_numeric_spelling(self):
        ints = SweepCell(
            config=ExperimentConfig(app="tm", trace="tweet", base_rate=25,
                                    duration=4, workers=2),
            policy="Naive",
        )
        floats = SweepCell(
            config=ExperimentConfig(app="tm", trace="tweet", base_rate=25.0,
                                    duration=4.0, workers=2),
            policy="Naive",
        )
        assert cell_fingerprint(ints) == cell_fingerprint(floats)

    def test_custom_objects_uncacheable(self):
        cell = SweepCell(
            config=ExperimentConfig(
                app="tm", trace="tweet", workers=1,
                custom_trace=constant_trace(10.0, 2.0),
            ),
            policy="Naive",
        )
        assert cell_fingerprint(cell) is None


class TestDeterminism:
    def test_serial_matches_two_and_four_workers(self):
        cells = tiny_cells(policies=("Naive", "Nexus"), seeds=(0, 1))
        serial = run_sweep(cells, workers=1)
        two = run_sweep(cells, workers=2)
        four = run_sweep(cells, workers=4)
        assert all(r.ok for r in serial + two + four), [
            r.error for r in serial + two + four if not r.ok
        ]
        for a, b, c in zip(serial, two, four):
            assert a.summary == b.summary == c.summary
            assert a.cell.label() == b.cell.label() == c.cell.label()

    def test_cell_is_picklable(self):
        cell = tiny_cells()[0]
        assert pickle.loads(pickle.dumps(cell)).policy == cell.policy


class TestCache:
    def test_second_run_hits_cache(self, tmp_path):
        cells = tiny_cells()
        first = run_sweep(cells, workers=1, cache_dir=tmp_path)
        second = run_sweep(cells, workers=1, cache_dir=tmp_path)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        for a, b in zip(first, second):
            assert a.summary == b.summary
        assert len(list(tmp_path.rglob("*.pkl"))) == len(cells)

    def test_corrupt_entry_recomputed(self, tmp_path):
        cells = tiny_cells(policies=("Naive",))
        run_sweep(cells, workers=1, cache_dir=tmp_path)
        entry = next(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"garbage")
        again = run_sweep(cells, workers=1, cache_dir=tmp_path)
        assert again[0].ok and not again[0].cached

    def test_stale_source_buckets_survive_until_size_budget(self, tmp_path):
        """Other source-digest buckets are another checkout's live cache:
        running a sweep must not evict them (two checkouts sharing a cache
        dir would thrash on every branch switch).  Reclamation is deferred
        to prune_cache's size budget."""
        import os
        import time

        stale = tmp_path / ("0" * 16)
        stale.mkdir()
        (stale / "dead.pkl").write_bytes(b"old")
        old = time.time() - 3600
        os.utime(stale / "dead.pkl", (old, old))
        unrelated = tmp_path / "keep.txt"
        unrelated.write_text("mine")
        run_sweep(tiny_cells(policies=("Naive",)), workers=1,
                  cache_dir=tmp_path)
        assert (stale / "dead.pkl").exists()  # cross-branch entries kept
        assert unrelated.exists()
        # The size budget is where old buckets go: the other checkout's
        # entry is the oldest, so it is evicted first.
        prune_cache(tmp_path, max_bytes=0)
        assert not stale.exists()

    def test_explicit_prune_stale_still_works(self, tmp_path):
        from repro.experiments.sweep import SweepCache

        stale = tmp_path / ("0" * 16)
        stale.mkdir()
        (stale / "dead.pkl").write_bytes(b"old")
        SweepCache(tmp_path).prune_stale()
        assert not stale.exists()

    def test_events_report_cache_hits(self, tmp_path):
        cells = tiny_cells(policies=("Naive",))
        run_sweep(cells, workers=1, cache_dir=tmp_path)
        kinds = []
        run_sweep(cells, workers=1, cache_dir=tmp_path,
                  on_event=lambda e: kinds.append(e.kind))
        assert kinds == ["cached"]


class TestCellValidation:
    def test_needs_exactly_one_of_config_or_scenario(self):
        with pytest.raises(ValueError, match="exactly one"):
            SweepCell()
        with pytest.raises(ValueError, match="exactly one"):
            SweepCell(config=tiny_cells()[0].config, policy="Naive",
                      scenario=Scenario())

    def test_config_cell_needs_policy(self):
        with pytest.raises(ValueError, match="policy"):
            SweepCell(config=tiny_cells()[0].config)

    def test_scenario_cell_rejects_conflicting_policy(self):
        scenario = Scenario(policy="PARD")
        with pytest.raises(ValueError, match="conflicts"):
            SweepCell(scenario=scenario, policy="Nexus")
        assert SweepCell(scenario=scenario, policy="PARD").policy == "PARD"


class TestPruneCache:
    def test_prunes_oldest_first(self, tmp_path):
        import os
        import time

        bucket = tmp_path / ("a" * 16)
        bucket.mkdir()
        now = time.time()
        for i, name in enumerate(["old", "mid", "new"]):
            path = bucket / f"{name}.pkl"
            path.write_bytes(b"x" * 100)
            os.utime(path, (now + i, now + i))
        freed = prune_cache(tmp_path, max_bytes=200)
        assert freed == 100
        assert not (bucket / "old.pkl").exists()
        assert (bucket / "mid.pkl").exists()
        assert (bucket / "new.pkl").exists()

    def test_zero_budget_clears_and_removes_empty_buckets(self, tmp_path):
        bucket = tmp_path / ("b" * 16)
        bucket.mkdir()
        (bucket / "x.pkl").write_bytes(b"x" * 10)
        assert prune_cache(tmp_path, max_bytes=0) == 10
        assert not bucket.exists()
        assert tmp_path.exists()

    def test_missing_dir_is_noop(self, tmp_path):
        assert prune_cache(tmp_path / "absent", max_bytes=0) == 0

    def test_cache_hits_refresh_mtime_for_lru_eviction(self, tmp_path):
        import os
        import time

        cells = tiny_cells(policies=("Naive",))
        run_sweep(cells, workers=1, cache_dir=tmp_path)
        entry = next(tmp_path.rglob("*.pkl"))
        old = time.time() - 3600
        os.utime(entry, (old, old))
        run_sweep(cells, workers=1, cache_dir=tmp_path)  # cache hit
        assert entry.stat().st_mtime > old + 1800  # touched on hit

    def test_orphaned_tmp_files_reclaimed(self, tmp_path):
        import os
        import time

        bucket = tmp_path / ("c" * 16)
        bucket.mkdir()
        stale = bucket / "killed-writer.tmp"
        stale.write_bytes(b"x" * 50)
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = bucket / "live-writer.tmp"
        fresh.write_bytes(b"y" * 50)
        prune_cache(tmp_path, max_bytes=1 << 20)
        assert not stale.exists()  # orphan reclaimed despite budget room
        assert fresh.exists()  # a concurrent writer's temp is untouched

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            prune_cache(tmp_path, max_bytes=-1)

    def test_within_budget_untouched(self, tmp_path):
        cells = tiny_cells(policies=("Naive",))
        run_sweep(cells, workers=1, cache_dir=tmp_path)
        assert prune_cache(tmp_path, max_bytes=1 << 30) == 0
        again = run_sweep(cells, workers=1, cache_dir=tmp_path)
        assert again[0].cached


class TestFailureIsolation:
    def test_bad_policy_surfaces_without_hanging(self):
        cells = tiny_cells(policies=("Naive", "NoSuchPolicy", "Nexus"))
        results = run_sweep(cells, workers=2)
        by_policy = {r.cell.policy: r for r in results}
        assert by_policy["Naive"].ok
        assert by_policy["Nexus"].ok
        failed = by_policy["NoSuchPolicy"]
        assert not failed.ok
        assert "NoSuchPolicy" in failed.error
        assert failed.summary is None

    def test_execute_cell_never_raises(self):
        cell = SweepCell(
            config=ExperimentConfig(app="tm", trace="tweet", workers=1),
            policy="NoSuchPolicy",
        )
        result = execute_cell(cell)
        assert isinstance(result, CellResult)
        assert not result.ok

    def test_failures_not_cached(self, tmp_path):
        cells = tiny_cells(policies=("NoSuchPolicy",))
        run_sweep(cells, workers=1, cache_dir=tmp_path)
        assert list(tmp_path.rglob("*.pkl")) == []
        again = run_sweep(cells, workers=1, cache_dir=tmp_path)
        assert not again[0].cached and not again[0].ok


class TestEventsAndTable:
    def test_events_cover_every_cell(self):
        cells = tiny_cells(policies=("Naive", "Nexus"))
        events = []
        run_sweep(cells, workers=2, on_event=events.append)
        starts = [e for e in events if e.kind == "start"]
        dones = [e for e in events if e.kind == "done"]
        assert len(starts) == len(cells)
        assert len(dones) == len(cells)
        assert all(e.total == len(cells) for e in events)

    def test_summary_table_renders_errors_and_successes(self):
        results = run_sweep(tiny_cells(policies=("Naive", "NoSuchPolicy")),
                            workers=1)
        table = summary_table(results)
        assert "tm-tweet-Naive-s0" in table
        assert "ERROR" in table
        md = summary_table(results, markdown=True)
        assert md.splitlines()[1].startswith("|-")
