"""Tests for the declarative shared-cluster MultiScenario surface."""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.experiments.runner import run_multi_scenario, run_scenario
from repro.experiments.scenario import (
    AppSpec,
    BurstSpec,
    MultiScenario,
    Scenario,
    ScalingSpec,
    TenantSpec,
    TraceSpec,
    load_scenario_file,
    multi_scenario_grid,
    scenario_from_dict,
)
from repro.experiments.sweep import (
    SweepCell,
    cell_fingerprint,
    run_sweep,
    scenario_cells,
)
from repro.pipeline.profiles import ModelProfile
from repro.simulation.failures import FailureEvent


def victim_scenario(**overrides) -> Scenario:
    """A small two-module inline pipeline on private model profiles."""
    defaults = dict(
        name="victim",
        app=AppSpec.chained(
            ["vic_a", "vic_b"],
            slo=0.35,
            pipeline="victim-pipe",
            profiles=[
                ModelProfile("vic_a", base=0.020, per_item=0.006, max_batch=16),
                ModelProfile("vic_b", base=0.012, per_item=0.004, max_batch=16),
            ],
        ),
        trace=TraceSpec(name="poisson", duration=8.0, base_rate=50.0),
        policy="PARD",
        seed=3,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def aggressor_scenario(**overrides) -> Scenario:
    """A one-module pipeline on its own profile, driven into overload."""
    defaults = dict(
        name="aggressor",
        app=AppSpec.chained(
            ["agg_a"],
            slo=0.25,
            pipeline="aggressor-pipe",
            profiles=[
                ModelProfile("agg_a", base=0.030, per_item=0.01, max_batch=8),
            ],
        ),
        trace=TraceSpec(name="poisson", duration=8.0, base_rate=300.0),
        policy="Naive",
        seed=5,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def full_multi(**overrides) -> MultiScenario:
    defaults = dict(
        name="pair",
        tenants=(
            TenantSpec(scenario=victim_scenario()),
            TenantSpec(scenario=aggressor_scenario(), weight=2.0),
        ),
        workers={"vic_a": 2, "vic_b": 2, "agg_a": 1},
        seed=0,
    )
    defaults.update(overrides)
    return MultiScenario(**defaults)


class TestRoundTrip:
    def test_dict_round_trip(self):
        ms = full_multi()
        assert MultiScenario.from_dict(ms.to_dict()) == ms

    def test_json_round_trip(self):
        ms = full_multi()
        assert MultiScenario.from_json(ms.to_json()) == ms

    def test_file_round_trip_and_auto_detection(self, tmp_path):
        ms = full_multi()
        path = tmp_path / "multi.json"
        ms.save(path)
        loaded = load_scenario_file(path)
        assert isinstance(loaded, MultiScenario)
        assert loaded == ms
        # A single scenario file detects as Scenario through the same door.
        single = victim_scenario()
        spath = tmp_path / "single.json"
        single.save(spath)
        assert load_scenario_file(spath) == single

    def test_pickles(self):
        ms = full_multi()
        assert pickle.loads(pickle.dumps(ms)) == ms

    def test_dict_forms_coerced_at_construction(self):
        ms = MultiScenario(
            tenants=(
                {"scenario": {"app": {"name": "tm"},
                              "trace": {"base_rate": 20, "duration": 4}}},
                {"weight": 2,
                 "scenario": {"name": "b", "app": {"name": "lv"},
                              "trace": {"base_rate": 10, "duration": 4}}},
            ),
            scaling={"enabled": True},
        )
        assert isinstance(ms.tenants[0], TenantSpec)
        assert isinstance(ms.scaling, ScalingSpec)
        assert ms.tenants[1].weight == pytest.approx(2.0)

    def test_schema_detection_from_dict(self):
        assert isinstance(
            scenario_from_dict(full_multi().to_dict()), MultiScenario
        )
        assert isinstance(
            scenario_from_dict({"app": {"name": "tm"}}), Scenario
        )


class TestFingerprint:
    def test_stable(self):
        assert full_multi().fingerprint() == full_multi().fingerprint()

    def test_canonical_over_numeric_spelling(self):
        ms = full_multi()
        again = MultiScenario.from_dict(ms.to_dict())
        assert again.fingerprint() == ms.fingerprint()

    def test_sensitive_to_spec_changes(self):
        base = full_multi()
        assert base.fingerprint() != replace(base, seed=9).fingerprint()
        heavier = replace(
            base,
            tenants=(base.tenants[0],
                     replace(base.tenants[1], weight=3.0)),
        )
        assert base.fingerprint() != heavier.fingerprint()
        other_policy = replace(
            base,
            tenants=(
                replace(base.tenants[0],
                        scenario=replace(base.tenants[0].scenario,
                                         policy="Naive")),
                base.tenants[1],
            ),
        )
        assert base.fingerprint() != other_policy.fingerprint()


class TestValidation:
    def test_needs_at_least_one_tenant(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            MultiScenario(tenants=())

    def test_duplicate_tenant_labels_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unique"):
            full_multi(
                tenants=(
                    TenantSpec(scenario=victim_scenario()),
                    TenantSpec(scenario=victim_scenario(seed=9)),
                ),
            )

    def test_tenant_workers_rejected(self):
        ms = full_multi(
            tenants=(
                TenantSpec(scenario=victim_scenario(workers=2)),
                TenantSpec(scenario=aggressor_scenario()),
            ),
        )
        with pytest.raises(ValueError, match="cluster-level"):
            ms.validate()

    def test_tenant_scaling_rejected(self):
        ms = full_multi(
            tenants=(
                TenantSpec(scenario=victim_scenario(
                    scaling=ScalingSpec(enabled=True))),
                TenantSpec(scenario=aggressor_scenario()),
            ),
        )
        with pytest.raises(ValueError, match="shared cluster scales"):
            ms.validate()

    def test_tenant_failures_rejected(self):
        ms = full_multi(
            tenants=(
                TenantSpec(scenario=victim_scenario(
                    failures=(FailureEvent(time=1.0, module_id="m1"),))),
                TenantSpec(scenario=aggressor_scenario()),
            ),
        )
        with pytest.raises(ValueError, match="pool-keyed"):
            ms.validate()

    def test_link_faults_rejected_for_shared_clusters(self):
        # Shared-cluster failures target worker pools; a link is an edge
        # of one tenant's DAG, which has no pool-keyed form.
        with pytest.raises(ValueError, match="single-cluster only"):
            full_multi(
                failures=(
                    FailureEvent(time=1.0, module_id="vic_a", kind="link",
                                 dst="vic_b"),
                ),
            )

    def test_tenant_resilience_rejected(self):
        ms = full_multi(
            tenants=(
                TenantSpec(scenario=victim_scenario(
                    resilience={"m1": {"timeout": 0.2}})),
                TenantSpec(scenario=aggressor_scenario()),
            ),
        )
        with pytest.raises(ValueError, match="per-hop resilience"):
            ms.validate()

    def test_tenant_utilization_rejected(self):
        ms = full_multi(
            tenants=(
                TenantSpec(scenario=victim_scenario(
                    utilization=0.9,
                    trace=TraceSpec(name="poisson", duration=8.0))),
                TenantSpec(scenario=aggressor_scenario()),
            ),
        )
        with pytest.raises(ValueError, match="ambiguous"):
            ms.validate()

    def test_workers_must_cover_every_pool(self):
        # Inline tenant apps resolve at construction, so mistargeted pool
        # references fail fast there instead of as a mid-run KeyError.
        with pytest.raises(ValueError, match="missing"):
            full_multi(workers={"vic_a": 2, "vic_b": 2})

    def test_workers_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="unknown pools"):
            full_multi(
                workers={"vic_a": 2, "vic_b": 2, "agg_a": 1, "bogus": 3}
            )

    def test_failure_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="unknown pool"):
            full_multi(
                failures=(FailureEvent(time=1.0, module_id="nosuch"),)
            )

    def test_failure_beyond_longest_trace_rejected(self):
        with pytest.raises(ValueError, match="outside the longest"):
            full_multi(
                failures=(FailureEvent(time=100.0, module_id="vic_a"),)
            )

    def test_conflicting_profiles_rejected(self):
        clashing = aggressor_scenario(
            app=AppSpec.chained(
                ["vic_a"],
                slo=0.25,
                pipeline="aggressor-pipe",
                profiles=[
                    ModelProfile("vic_a", base=0.9, per_item=0.5, max_batch=4),
                ],
            ),
        )
        ms = full_multi(
            tenants=(
                TenantSpec(scenario=victim_scenario()),
                TenantSpec(scenario=clashing),
            ),
            workers=None,
        )
        with pytest.raises(ValueError, match="conflicting definitions"):
            ms.validate()

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            TenantSpec(scenario=victim_scenario(), weight=0.0)

    def test_valid_spec_passes_and_chains(self):
        ms = full_multi()
        assert ms.validate() is ms


class TestGrid:
    def test_policies_apply_to_every_tenant(self):
        grid = multi_scenario_grid(full_multi(), policies=["PARD", "Naive"],
                                   seeds=[0, 1, 2])
        assert len(grid) == 6
        for ms in grid:
            policies = {t.scenario.policy for t in ms.tenants}
            assert len(policies) == 1
        assert {ms.seed for ms in grid} == {0, 1, 2}

    def test_empty_axes_fall_back_to_base(self):
        base = full_multi()
        grid = multi_scenario_grid(base)
        assert grid == [base]


class TestExecution:
    def test_runs_end_to_end_with_per_app_books(self):
        result = run_multi_scenario(full_multi())
        assert set(result.summaries) == {"victim", "aggressor"}
        for name, trace in result.traces.items():
            assert result.summaries[name].total == len(trace)
        total = sum(s.total for s in result.summaries.values())
        assert result.aggregate.total == total
        assert set(result.pool_ids) == {"vic_a", "vic_b", "agg_a"}

    def test_weight_scales_tenant_traffic(self):
        light = full_multi()
        heavy = full_multi(
            tenants=(light.tenants[0],
                     replace(light.tenants[1], weight=4.0)),
        )
        r_light = run_multi_scenario(light)
        r_heavy = run_multi_scenario(heavy)
        assert (r_heavy.summaries["aggressor"].total
                > 1.5 * r_light.summaries["aggressor"].total)
        # weight=2.0 -> base 300*2; weight=4.0 -> 300*4.

    def test_auto_provisioning_covers_all_pools(self):
        ms = full_multi(workers=None)
        result = run_multi_scenario(ms)
        assert all(
            pool.n_workers >= 1 for pool in result.cluster.pools.values()
        )
        # The aggressor pool carries 2x the victim rate and a slower
        # model, so it must be provisioned wider than one worker.
        assert result.cluster.pools["agg_a"].n_workers > 1

    def test_shared_pool_contention_hurts_and_failures_fire(self):
        shared_victim = victim_scenario(
            app=AppSpec.chained(
                ["shared_m"],
                slo=0.3,
                pipeline="victim-pipe",
                profiles=[ModelProfile("shared_m", base=0.02,
                                       per_item=0.005, max_batch=8)],
            ),
        )
        shared_aggr = aggressor_scenario(
            app=AppSpec.chained(
                ["shared_m"],
                slo=0.3,
                pipeline="aggressor-pipe",
                profiles=[ModelProfile("shared_m", base=0.02,
                                       per_item=0.005, max_batch=8)],
            ),
            policy="Naive",
        )
        ms = MultiScenario(
            name="contended",
            tenants=(
                TenantSpec(scenario=shared_victim),
                TenantSpec(scenario=shared_aggr),
            ),
            workers={"shared_m": 2},
            failures=(FailureEvent(time=2.0, module_id="shared_m",
                                   workers=1, downtime=2.0),),
        )
        result = run_multi_scenario(ms)
        assert len(result.pool_ids) == 1  # both apps on one pool
        assert any("fail shared_m" in line for line in result.failure_log)
        # The overloaded shared pool cannot serve the victim cleanly.
        assert result.summaries["victim"].drop_rate > 0.05

    def test_scaling_spec_applies_to_pools(self):
        ms = full_multi(
            workers=1,
            scaling=ScalingSpec(enabled=True, interval=1.0, cold_start=1.0,
                                max_workers=6),
        )
        result = run_multi_scenario(ms)
        assert result.aggregate.total == sum(
            len(t) for t in result.traces.values()
        )


class TestPerAppIsolation:
    """The satellite acceptance test: two tenants on disjoint pools, one
    overloaded — the victim's books must be identical to running it alone
    at the same per-pool capacity."""

    def test_victim_summary_unchanged_by_noisy_neighbor(self):
        victim = victim_scenario()
        solo = run_scenario(
            replace(victim, workers={"m1": 2, "m2": 2})
        )
        shared = run_multi_scenario(full_multi())
        assert shared.summaries["victim"] == solo.summary

    def test_victim_records_match_request_for_request(self):
        victim = victim_scenario()
        solo = run_scenario(replace(victim, workers={"m1": 2, "m2": 2}))
        shared = run_multi_scenario(full_multi())
        solo_recs = solo.collector.records
        shared_recs = shared.collectors["victim"].records
        assert len(solo_recs) == len(shared_recs)
        for a, b in zip(solo_recs, shared_recs):
            assert a.sent_at == b.sent_at
            assert a.finished_at == b.finished_at
            assert a.status == b.status
            assert a.gpu_time == pytest.approx(b.gpu_time)


class TestSweepIntegration:
    def test_serial_and_pooled_identical(self):
        cells = scenario_cells(
            multi_scenario_grid(full_multi(), seeds=[0, 1, 2, 3])
        )
        serial = run_sweep(cells, workers=1)
        pooled = run_sweep(cells, workers=4)
        assert all(r.ok for r in serial + pooled), [
            r.error for r in serial + pooled if not r.ok
        ]
        for a, b in zip(serial, pooled):
            assert a.summary == b.summary
            assert a.per_app == b.per_app

    def test_multi_cells_are_cacheable(self, tmp_path):
        cells = scenario_cells([full_multi()])
        assert cell_fingerprint(cells[0]) is not None
        first = run_sweep(cells, workers=1, cache_dir=tmp_path)
        second = run_sweep(cells, workers=1, cache_dir=tmp_path)
        assert not first[0].cached
        assert second[0].cached
        assert first[0].summary == second[0].summary
        assert first[0].per_app == second[0].per_app

    def test_cell_label_and_policy_join(self):
        cell = scenario_cells([full_multi()])[0]
        assert cell.label() == "pair-s0"
        assert cell.policy == "PARD+Naive"

    def test_cell_rejects_conflicting_policy(self):
        with pytest.raises(ValueError, match="conflicts"):
            SweepCell(multi=full_multi(), policy="Nexus")

    def test_cell_needs_exactly_one_form(self):
        with pytest.raises(ValueError, match="exactly one"):
            SweepCell(scenario=victim_scenario(), multi=full_multi())

    def test_external_tenant_components_not_cached(self):
        from repro.workload.generators import TRACES, register_trace
        from repro.workload.trace import Trace

        name = "test-multi-external-trace"

        @register_trace(name)
        def _gen(base_rate, duration, seed=0, name=name):
            import numpy as np

            return Trace(name=name,
                         arrivals=np.arange(0, duration, 1.0 / base_rate),
                         duration=duration)

        try:
            ms = full_multi(
                tenants=(
                    TenantSpec(scenario=victim_scenario(
                        trace=TraceSpec(name=name, duration=4.0,
                                        base_rate=20.0))),
                    TenantSpec(scenario=aggressor_scenario()),
                ),
            )
            assert cell_fingerprint(scenario_cells([ms])[0]) is None
        finally:
            del TRACES[name]
