"""Tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.experiments.configs import (
    APPS,
    SYSTEM_FACTORIES,
    TRACES,
    all_workloads,
    standard_config,
)
from repro.experiments import runner
from repro.experiments.runner import (
    ExperimentConfig,
    build_cluster,
    compare_policies,
    run_experiment,
)
from repro.policies.naive import NaivePolicy
from repro.policies.nexus import NexusPolicy
from repro.workload.generators import constant_trace


class TestConfig:
    def test_unknown_app_or_trace_rejected(self):
        with pytest.raises(ValueError):
            standard_config("bogus", "tweet")
        with pytest.raises(ValueError):
            standard_config("lv", "bogus")

    def test_all_workloads_cross_product(self):
        wl = all_workloads(duration=10.0)
        assert len(wl) == len(APPS) * len(TRACES)
        assert ("lv", "tweet") in wl

    def test_slo_override_applies(self):
        config = standard_config("lv", "tweet", slo=0.250, duration=10.0)
        assert config.resolve_app().slo == pytest.approx(0.250)

    def test_custom_trace_used_verbatim(self):
        trace = constant_trace(10.0, 5.0)
        config = ExperimentConfig(
            app="tm", trace="tweet", custom_trace=trace, workers=1
        )
        assert config.resolve_trace() is trace

    def test_calibrated_rate_scales_with_utilization(self):
        lo = standard_config("lv", "tweet", utilization=0.5, duration=10.0)
        hi = standard_config("lv", "tweet", utilization=1.0, duration=10.0)
        assert hi.resolve_base_rate() > lo.resolve_base_rate()

    def test_calibrated_workers_cover_every_module(self):
        config = standard_config("lv", "tweet", duration=10.0)
        workers = config.resolve_workers()
        assert set(workers) == set(config.resolve_app().spec.module_ids)
        assert all(n >= 1 for n in workers.values())

    def test_explicit_workers_respected(self):
        config = ExperimentConfig(
            app="tm", trace="tweet", workers=3, base_rate=20, duration=5.0
        )
        cluster = build_cluster(config, NaivePolicy())
        assert all(m.n_workers == 3 for m in cluster.modules.values())

    def test_calibrated_rate_honours_int_workers(self):
        """Regression: the int form of ``workers`` used to be ignored by
        calibration, which silently assumed 2 workers per module."""

        def rate(n: int) -> float:
            return ExperimentConfig(
                app="tm", trace="wiki", utilization=0.9, duration=10.0,
                workers=n,
            ).resolve_base_rate()

        assert rate(4) == pytest.approx(4 * rate(1))
        default = ExperimentConfig(
            app="tm", trace="wiki", utilization=0.9, duration=10.0
        ).resolve_base_rate()
        assert rate(2) == pytest.approx(default)

    def test_list_valued_trace_args_calibrate(self):
        """The natural list form of generator kwargs must survive the
        memoized (hash-keyed) pilot-shape lookup."""
        config = ExperimentConfig(
            app="tm", trace="step", utilization=0.9, duration=10.0,
            trace_args={"rates": [[0.0, 1.0], [5.0, 2.0]]},
        )
        assert config.resolve_base_rate() > 0
        assert len(config.resolve_trace()) > 0

    def test_pilot_trace_generated_once(self, monkeypatch):
        """Regression: every resolve_* call used to re-simulate the full
        pilot trace; the shape factor is now memoized per
        (trace, duration, seed)."""
        runner._trace_shape_factor.cache_clear()
        pilot_calls = []
        real = runner.TRACES["wiki"]

        def counting(*args, **kwargs):
            if kwargs.get("base_rate") == 50.0:
                pilot_calls.append("pilot")
            return real(*args, **kwargs)

        monkeypatch.setitem(runner.TRACES, "wiki", counting)
        config = standard_config("tm", "wiki", duration=12.0)
        config.resolve_workers()
        config.resolve_base_rate()
        config.resolve_trace()
        assert len(pilot_calls) == 1

    def test_reregistered_generator_invalidates_pilot_memo(self, monkeypatch):
        """The memo keys on the generator object, so swapping the
        implementation under the same name recalibrates."""
        from repro.workload.generators import constant_trace

        def slow(base_rate, duration, seed=0, name="wiki"):
            return constant_trace(rate=base_rate, duration=duration,
                                  name=name)

        def fast(base_rate, duration, seed=0, name="wiki"):
            return constant_trace(rate=2 * base_rate, duration=duration,
                                  name=name)

        config = standard_config("tm", "wiki", duration=10.0)
        monkeypatch.setitem(runner.TRACES, "wiki", slow)
        slow_rate = config.resolve_base_rate()
        monkeypatch.setitem(runner.TRACES, "wiki", fast)
        fast_rate = config.resolve_base_rate()
        assert fast_rate == pytest.approx(slow_rate / 2, rel=0.05)


class TestRunner:
    def test_run_experiment_accounts_every_arrival(self):
        config = ExperimentConfig(
            app="tm", trace="tweet", base_rate=30, duration=8.0, workers=2
        )
        result = run_experiment(config, NaivePolicy())
        assert result.summary.total == len(result.trace)
        assert result.collector.submitted == len(result.trace)

    def test_compare_policies_runs_fresh_clusters(self):
        config = ExperimentConfig(
            app="tm", trace="tweet", base_rate=30, duration=6.0, workers=2
        )
        results = compare_policies(
            config,
            {
                "naive": lambda seed: NaivePolicy(),
                "nexus": lambda seed: NexusPolicy(),
            },
        )
        assert set(results) == {"naive", "nexus"}
        assert results["naive"].cluster is not results["nexus"].cluster
        assert results["naive"].summary.total == results["nexus"].summary.total

    def test_system_factories_cover_paper_systems(self):
        assert set(SYSTEM_FACTORIES) == {"PARD", "Nexus", "Clipper++", "Naive"}
        for factory in SYSTEM_FACTORIES.values():
            assert factory(0).name


class TestHeadlineReproduction:
    """Scaled-down check of the paper's headline comparison (§5.2)."""

    def test_pard_beats_reactive_baselines_on_lv_tweet(self):
        config = standard_config("lv", "tweet", duration=30.0, seed=1)
        results = compare_policies(config, dict(SYSTEM_FACTORIES))
        pard = results["PARD"].summary
        for other in ("Nexus", "Clipper++", "Naive"):
            s = results[other].summary
            assert pard.goodput >= s.goodput
            assert pard.invalid_rate <= s.invalid_rate + 0.01
        assert pard.drop_rate < results["Naive"].summary.drop_rate
