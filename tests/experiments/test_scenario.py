"""Tests for the declarative Scenario API and the name-keyed registries."""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.experiments.runner import run_scenario, scenario_config
from repro.experiments.scenario import (
    AppSpec,
    BurstSpec,
    Scenario,
    ScalingSpec,
    TraceSpec,
    scenario_grid,
)
from repro.experiments.sweep import (
    cell_fingerprint,
    run_sweep,
    scenario_cells,
)
from repro.pipeline.applications import (
    APPLICATIONS,
    Application,
    register_application,
)
from repro.pipeline.profiles import ModelProfile
from repro.pipeline.spec import chain
from repro.policies.registry import SYSTEM_FACTORIES, register_policy
from repro.simulation.failures import FailureEvent
from repro.workload.generators import TRACES, register_trace
from repro.workload.trace import Trace


def full_scenario(**overrides) -> Scenario:
    """The acceptance scenario: a custom chained pipeline, a burst-overlaid
    trace and two failure events — entirely plain data."""
    defaults = dict(
        name="accept",
        app=AppSpec.chained(
            ["probe_a", "probe_b"],
            slo=0.35,
            pipeline="probe",
            profiles=[
                ModelProfile("probe_a", base=0.020, per_item=0.006, max_batch=16),
                ModelProfile("probe_b", base=0.012, per_item=0.004, max_batch=16),
            ],
        ),
        trace=TraceSpec(
            name="poisson",
            duration=8.0,
            base_rate=60.0,
            bursts=(BurstSpec(start=3.0, length=2.0, factor=2.5),),
        ),
        policy="Naive",
        seed=3,
        workers=2,
        failures=(
            FailureEvent(time=2.0, module_id="m1", workers=1, downtime=1.5),
            FailureEvent(time=5.0, module_id="m2", workers=1, downtime=1.0),
        ),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestRoundTrip:
    def test_dict_round_trip(self):
        s = full_scenario()
        assert Scenario.from_dict(s.to_dict()) == s

    def test_json_round_trip(self):
        s = full_scenario()
        assert Scenario.from_json(s.to_json()) == s

    def test_file_round_trip(self, tmp_path):
        s = full_scenario()
        path = tmp_path / "scenario.json"
        s.save(path)
        assert Scenario.from_file(path) == s

    def test_pickles(self):
        s = full_scenario()
        assert pickle.loads(pickle.dumps(s)) == s

    def test_named_app_round_trip(self):
        s = Scenario(
            app=AppSpec(name="tm", slo=0.3),
            trace=TraceSpec(name="tweet", duration=10.0,
                            args={"burst_at": 5.0}),
            scaling=ScalingSpec(enabled=True, cold_start=4.0),
        )
        again = Scenario.from_dict(s.to_dict())
        assert again == s
        assert again.trace.args == s.trace.args

    def test_to_dict_detached_from_frozen_spec(self):
        """Mutating the serialized form must not reach into the frozen
        scenario (or its fingerprint)."""
        s = full_scenario(workers={"m1": 2, "m2": 2})
        before = s.fingerprint()
        d = s.to_dict()
        d["workers"]["m1"] = 8
        assert s.workers["m1"] == 2
        assert s.fingerprint() == before

    def test_minimal_dict_fills_defaults(self):
        s = Scenario.from_dict({"app": {"name": "lv"}})
        assert s.policy.name == "PARD" and not s.policy.params
        assert s.trace.name == "tweet"
        assert not s.scaling.enabled


class TestFingerprint:
    def test_stable(self):
        assert full_scenario().fingerprint() == full_scenario().fingerprint()

    def test_canonical_over_numeric_spelling(self):
        """int-authored and float-authored (JSON round-trip) equal specs
        must share one cache identity."""
        ints = Scenario(app=AppSpec(name="tm"),
                        trace=TraceSpec(name="tweet", duration=8,
                                        args={"burst_at": 5}),
                        workers=2)
        floats = Scenario.from_dict(ints.to_dict())
        assert floats == ints
        assert floats.fingerprint() == ints.fingerprint()

    def test_sensitive_to_spec_changes(self):
        base = full_scenario()
        assert base.fingerprint() != replace(base, seed=4).fingerprint()
        assert base.fingerprint() != replace(base, policy="Nexus").fingerprint()
        burst = replace(
            base,
            trace=replace(base.trace, bursts=(BurstSpec(3.0, 2.0, 3.0),)),
        )
        assert base.fingerprint() != burst.fingerprint()
        assert base.fingerprint() != replace(base, failures=()).fingerprint()


class TestValidation:
    def test_unknown_policy_rejected_by_validate(self):
        # Name resolution is lazy (construction succeeds, so plugins can
        # register after the spec is built); validate() resolves eagerly.
        scenario = full_scenario(policy="NoSuchPolicy")
        with pytest.raises(ValueError, match="unknown policy"):
            scenario.validate()

    def test_unknown_trace_rejected_by_validate(self):
        scenario = full_scenario(trace=TraceSpec(name="nosuch"))
        with pytest.raises(ValueError, match="unknown trace"):
            scenario.validate()

    def test_unknown_worker_module_rejected_at_construction(self):
        # Inline pipelines carry their module ids, so a mistargeted worker
        # map fails when the spec is built — not as a mid-run KeyError.
        with pytest.raises(ValueError, match="unknown modules"):
            full_scenario(workers={"m1": 2, "bogus": 2})

    def test_unknown_failure_module_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown module 'm9'"):
            full_scenario(failures=(FailureEvent(time=1.0, module_id="m9"),))

    def test_unresolvable_app_defers_target_checks_to_validate(self):
        # A named app that is not registered yet cannot be resolved at
        # construction; the bad failure target surfaces at validate().
        scenario = Scenario(
            app=AppSpec(name="not-registered-yet"),
            failures=(FailureEvent(time=1.0, module_id="m9"),),
        )
        with pytest.raises(ValueError, match="unknown application"):
            scenario.validate()

    def test_validate_passes_and_chains(self):
        scenario = full_scenario()
        assert scenario.validate() is scenario

    def test_unknown_generator_arg_rejected_by_validate(self):
        scenario = full_scenario(
            trace=TraceSpec(name="tweet", args={"bogus_arg": 1})
        )
        with pytest.raises(ValueError, match="does not accept args"):
            scenario.validate()

    def test_known_generator_args_pass_validate(self):
        scenario = full_scenario(
            trace=TraceSpec(name="tweet", args={"burst_at": 3.0}),
            workers=2,
        )
        assert scenario.validate() is scenario

    def test_burst_outside_duration_rejected(self):
        with pytest.raises(ValueError, match="outside trace duration"):
            TraceSpec(duration=10.0,
                      bursts=(BurstSpec(start=20.0, length=2.0, factor=2.0),))

    def test_partial_workers_dict_rejected_at_construction(self):
        with pytest.raises(ValueError, match="missing"):
            full_scenario(workers={"m1": 2})

    def test_nonpositive_workers_rejected_by_validate(self):
        with pytest.raises(ValueError, match=">= 1"):
            full_scenario(workers=0).validate()
        with pytest.raises(ValueError, match=">= 1"):
            full_scenario(workers={"m1": 2, "m2": 0}).validate()

    def test_failure_after_trace_end_rejected_at_construction(self):
        with pytest.raises(ValueError, match="outside the trace duration"):
            full_scenario(failures=(FailureEvent(time=600.0, module_id="m1"),))

    def test_reserved_trace_args_rejected(self):
        from repro.experiments.runner import ExperimentConfig

        with pytest.raises(ValueError, match="reserved"):
            TraceSpec(name="poisson", args={"seed": 7})
        # The config shim enforces the same rule at construction.
        with pytest.raises(ValueError, match="reserved"):
            ExperimentConfig(app="tm", trace="tweet",
                             trace_args={"base_rate": 10.0})

    def test_dict_valued_trace_args_rejected(self):
        with pytest.raises(ValueError, match="nested mappings"):
            TraceSpec(name="poisson", args={"levels": {"low": 1.0}})
        # Nested lists remain fine (the step trace's rates shape).
        spec = TraceSpec(name="step", args={"rates": [[0, 1.0], [5, 2.0]]})
        assert Scenario.from_dict(
            Scenario(app=AppSpec(name="tm"), trace=spec).to_dict()
        ).trace == spec

    def test_scaling_bool_keys_must_be_bool(self):
        with pytest.raises(ValueError, match="true/false"):
            ScalingSpec.from_dict({"enabled": "false"})

    def test_scaling_ranges_validated(self):
        # interval=0 would hang the simulation in an event-queue loop.
        with pytest.raises(ValueError, match="interval"):
            ScalingSpec(enabled=True, interval=0.0)
        with pytest.raises(ValueError, match="cold_start"):
            ScalingSpec(cold_start=-1.0)
        with pytest.raises(ValueError, match="max_workers"):
            ScalingSpec(min_workers=4, max_workers=2)

    def test_negative_failure_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FailureEvent(time=-5.0, module_id="m1")

    def test_scaling_from_json_ints_fingerprint_like_floats(self):
        """JSON `8` and Python `8.0` must be the same cache identity."""
        from_json = Scenario.from_dict(
            {"app": {"name": "tm"},
             "scaling": {"enabled": True, "cold_start": 8}}
        )
        native = Scenario(app=AppSpec(name="tm"),
                          scaling=ScalingSpec(enabled=True, cold_start=8.0))
        assert from_json == native
        assert from_json.fingerprint() == native.fingerprint()

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            Scenario.from_dict({"app": {"name": "lv"}, "bogus": 1})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ValueError, match="unknown trace keys"):
            Scenario.from_dict({"app": {"name": "lv"},
                                "trace": {"nmae": "tweet"}})

    def test_unknown_module_key_rejected(self):
        # A typo'd DAG edge key must not silently change the pipeline.
        with pytest.raises(ValueError, match="unknown module keys"):
            AppSpec(modules=({"id": "m1", "model": "probe_a", "prev": ()},),
                    slo=0.3)

    def test_inline_pipeline_requires_slo(self):
        with pytest.raises(ValueError, match="slo"):
            AppSpec.chained(["probe_a"], slo=None)

    def test_app_name_and_modules_exclusive(self):
        with pytest.raises(ValueError, match="exactly one"):
            AppSpec(name="lv", modules=tuple(chain("x", ["probe_a"]).modules),
                    slo=0.3)
        with pytest.raises(ValueError, match="exactly one"):
            AppSpec()

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            BurstSpec(start=-1.0, length=2.0, factor=2.0)
        with pytest.raises(ValueError):
            BurstSpec(start=0.0, length=0.0, factor=2.0)

    def test_trace_scale_thinning_only(self):
        with pytest.raises(ValueError, match="scale"):
            TraceSpec(scale=2.0)

    def test_nonpositive_base_rate_rejected(self):
        with pytest.raises(ValueError, match="base_rate"):
            TraceSpec(name="poisson", base_rate=-5.0)

    def test_scenario_scalar_fields_validated(self):
        with pytest.raises(ValueError, match="sync_interval"):
            full_scenario(sync_interval=0.0)
        with pytest.raises(ValueError, match="utilization"):
            full_scenario(utilization=-0.9,
                          trace=TraceSpec(name="poisson"))
        with pytest.raises(ValueError, match="drain"):
            full_scenario(drain=-1.0)

    def test_utilization_and_base_rate_mutually_exclusive(self):
        scenario = full_scenario(utilization=0.9)  # trace sets base_rate
        with pytest.raises(ValueError, match="mutually exclusive"):
            scenario.validate()

    def test_utilization_and_provision_rate_mutually_exclusive(self):
        scenario = full_scenario(utilization=0.9, provision_rate=200.0,
                                 workers=None,
                                 trace=TraceSpec(name="poisson"))
        with pytest.raises(ValueError, match="mutually exclusive"):
            scenario.validate()

    def test_non_integral_workers_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            Scenario.from_dict({"app": {"name": "tm"}, "workers": 2.7})
        with pytest.raises(ValueError, match="integer"):
            full_scenario(workers={"m1": 2.7, "m2": 2})
        with pytest.raises(ValueError, match="integer"):
            full_scenario(workers=2.5)  # scalar Python form, same rule
        with pytest.raises(ValueError, match="integer"):
            ScalingSpec.from_dict({"min_workers": 2.7})
        # Whole-number floats (the JSON round-trip form) are fine.
        assert Scenario.from_dict(
            {"app": {"name": "tm"}, "workers": 2.0}
        ).workers == 2

    def test_failure_event_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required keys"):
            Scenario.from_dict({"app": {"name": "tm"},
                                "failures": [{"module_id": "m1"}]})

    def test_config_trace_args_reject_nested_mappings(self):
        from repro.experiments.runner import ExperimentConfig

        with pytest.raises(ValueError, match="nested mappings"):
            ExperimentConfig(app="tm", trace="step",
                             trace_args={"opts": {"a": 1}})

    def test_dict_forms_coerced_at_construction(self):
        s = Scenario(app={"name": "tm"},
                     trace={"name": "poisson", "base_rate": 20,
                            "duration": 4},
                     scaling={"enabled": True})
        assert isinstance(s.app, AppSpec)
        assert isinstance(s.trace, TraceSpec)
        assert isinstance(s.scaling, ScalingSpec)
        assert s.validate() is s


class TestResilienceSpec:
    def resilient(self, **overrides) -> Scenario:
        return full_scenario(
            resilience={
                "m1": {"timeout": 0.2,
                       "retry": {"max": 2, "base": 0.05, "jitter": 0.0}},
            },
            **overrides,
        )

    def test_dict_round_trip(self):
        s = self.resilient()
        assert Scenario.from_dict(s.to_dict()) == s

    def test_json_round_trip(self):
        s = self.resilient()
        assert Scenario.from_json(s.to_json()) == s

    def test_legacy_scenarios_serialize_without_a_resilience_key(self):
        """Pre-existing scenario files must keep their serialized form
        (and therefore their cache fingerprints) byte for byte."""
        assert "resilience" not in full_scenario().to_dict()

    def test_fingerprint_sensitive_to_resilience(self):
        assert self.resilient().fingerprint() != full_scenario().fingerprint()

    def test_resilience_map_builds_hop_objects(self):
        from repro.simulation.resilience import HopResilience

        hops = self.resilient().resilience_map()
        assert set(hops) == {"m1"}
        assert hops["m1"] == HopResilience(timeout=0.2, retry_max=2,
                                           backoff_base=0.05)
        assert full_scenario().resilience_map() is None  # fast path

    def test_unknown_module_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown module"):
            full_scenario(resilience={"nope": {"timeout": 0.2}})

    def test_unknown_fallback_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown module"):
            full_scenario(
                resilience={"m1": {"timeout": 0.2, "fallback": "zz"}},
            )

    def test_downstream_fallback_rejected_by_validate(self):
        s = full_scenario(
            resilience={"m1": {"timeout": 0.2, "fallback": "m2"}},
        )
        with pytest.raises(
            ValueError, match="cannot fall back to its downstream"
        ):
            s.validate()

    def test_duplicate_modules_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            full_scenario(
                resilience=(
                    ("m1", {"timeout": 0.2}),
                    ("m1", {"timeout": 0.3}),
                ),
            )


class TestResolution:
    def test_inline_pipeline_builds(self):
        app = full_scenario().build_application()
        assert isinstance(app, Application)
        assert app.spec.module_ids == ["m1", "m2"]
        assert app.slo == pytest.approx(0.35)

    def test_inline_profiles_layer_over_defaults(self):
        registry = full_scenario().build_registry()
        assert "probe_a" in registry
        assert "object_detection" in registry  # defaults still present

    def test_named_app_slo_override(self):
        s = Scenario(app=AppSpec(name="lv", slo=0.25))
        assert s.build_application().slo == pytest.approx(0.25)
        assert scenario_config(s).resolve_app().slo == pytest.approx(0.25)

    def test_burst_overlay_raises_windowed_rate(self):
        s = full_scenario()
        trace = s.build_trace(60.0)
        starts, rates = trace.rate_series(window=1.0)
        in_burst = rates[(starts >= 3.0) & (starts < 5.0)].mean()
        outside = rates[(starts < 3.0)].mean()
        assert in_burst > 1.6 * outside

    def test_trace_scale_thins(self):
        s = full_scenario()
        thinned = replace(s, trace=replace(s.trace, scale=0.5))
        assert len(thinned.build_trace(60.0)) < 0.75 * len(s.build_trace(60.0))

    def test_calibration_accounts_for_trace_args(self):
        """A shape-changing generator arg (step multipliers) must reach
        the calibration pilot, or utilization lands far off target."""
        flat = Scenario(app=AppSpec(name="tm"),
                        trace=TraceSpec(name="step", duration=10.0),
                        utilization=0.9)
        stepped = Scenario(
            app=AppSpec(name="tm"),
            trace=TraceSpec(name="step", duration=10.0,
                            args={"rates": [[0, 1], [5, 4]]}),
            utilization=0.9,
        )
        flat_rate = scenario_config(flat).resolve_base_rate()
        stepped_rate = scenario_config(stepped).resolve_base_rate()
        # Mean multiplier of the step shape is 2.5x, so the calibrated
        # base rate must drop accordingly.
        assert stepped_rate == pytest.approx(flat_rate / 2.5, rel=0.15)

    def test_calibration_accounts_for_trace_scale(self):
        """Thinning halves the realized rate, so the calibrated base rate
        must double to keep utilization on target."""
        full = Scenario(app=AppSpec(name="tm"),
                        trace=TraceSpec(name="poisson", duration=10.0),
                        utilization=0.9)
        half = Scenario(app=AppSpec(name="tm"),
                        trace=TraceSpec(name="poisson", duration=10.0,
                                        scale=0.5),
                        utilization=0.9)
        full_rate = scenario_config(full).resolve_base_rate()
        half_rate = scenario_config(half).resolve_base_rate()
        assert half_rate == pytest.approx(2 * full_rate, rel=0.05)

    def test_scenario_config_shim(self):
        config = scenario_config(full_scenario())
        assert config.custom_app is not None
        assert config.trace == "poisson"
        assert config.seed == 3

    def test_pinned_trace_seed_drives_calibration(self):
        """The pilot must measure the workload actually replayed: a
        pinned TraceSpec.seed calibrates like a scenario seeded the same
        way, regardless of the scenario's own seed."""
        pinned = Scenario(app=AppSpec(name="tm"),
                          trace=TraceSpec(name="tweet", duration=20.0,
                                          seed=7),
                          utilization=0.9, seed=0)
        direct = Scenario(app=AppSpec(name="tm"),
                          trace=TraceSpec(name="tweet", duration=20.0),
                          utilization=0.9, seed=7)
        assert (scenario_config(pinned).resolve_base_rate()
                == scenario_config(direct).resolve_base_rate())


class TestExecution:
    def test_build_trace_matches_replayed_trace(self):
        """The spec path (Scenario.build_trace) and the execution path
        (run_scenario via the config shim) must generate the identical
        trace — pins the two implementations together."""
        import numpy as np

        s = full_scenario()
        result = run_scenario(s)
        spec_trace = s.build_trace(scenario_config(s).resolve_base_rate())
        assert np.array_equal(result.trace.arrivals, spec_trace.arrivals)

    def test_run_scenario_executes_failures(self):
        result = run_scenario(full_scenario())
        assert result.summary.total == len(result.trace)
        assert len(result.failure_log) == 4  # two fails + two recoveries
        assert any("fail m1" in line for line in result.failure_log)
        assert any("recover m2" in line for line in result.failure_log)

    def test_scaling_spec_defaults_match_reactive_scaler(self):
        """ScalingSpec mirrors ReactiveScaler's knobs; a drifting default
        would silently split the scenario and direct-use paths."""
        from dataclasses import MISSING, fields

        from repro.simulation.scaling import ReactiveScaler

        scaler_defaults = {
            f.name: f.default for f in fields(ReactiveScaler)
            if f.default is not MISSING
        }
        for f in fields(ScalingSpec):
            if f.name == "enabled":
                continue
            assert f.name in scaler_defaults
            assert f.default == scaler_defaults[f.name]

    def test_scaling_spec_applies(self):
        s = full_scenario(
            scaling=ScalingSpec(enabled=True, interval=1.0, cold_start=2.0),
            failures=(),
        )
        result = run_scenario(s)
        assert result.summary.total == len(result.trace)

    def test_provisioning_follows_composed_trace(self):
        """Auto-provisioning must size workers for the trace actually
        replayed (after scale/burst overlays), not the named base trace."""
        base = full_scenario(workers=None, failures=())
        fast = replace(base.trace, base_rate=250.0, bursts=())
        thin = replace(base, trace=replace(fast, scale=0.25))
        flat = replace(base, trace=fast)
        def count(result):
            return sum(m.n_workers for m in result.cluster.modules.values())

        assert count(run_scenario(thin)) < count(run_scenario(flat))

    def test_provisioning_ignores_burst_overlays(self):
        """Bursts are the unpredictable events provisioning must not see —
        otherwise the declared overload never happens."""
        calm = full_scenario(workers=None, failures=())
        calm = replace(calm, trace=replace(calm.trace, base_rate=250.0,
                                           bursts=()))
        bursty = replace(
            calm,
            trace=replace(calm.trace,
                          bursts=(BurstSpec(start=3.0, length=4.0,
                                            factor=4.0),)),
        )

        def count(result):
            return sum(m.n_workers for m in result.cluster.modules.values())

        assert count(run_scenario(bursty)) == count(run_scenario(calm))

    def test_grid_expands_policies_and_seeds(self):
        grid = scenario_grid(full_scenario(), policies=["Naive", "Nexus"],
                             seeds=[0, 1, 2])
        assert len(grid) == 6
        assert {g.policy.name for g in grid} == {"Naive", "Nexus"}
        assert {g.seed for g in grid} == {0, 1, 2}

    def test_grid_empty_axes_fall_back_to_base(self):
        base = full_scenario()
        for grid in (scenario_grid(base),
                     scenario_grid(base, policies=[], seeds=[]),
                     scenario_grid(base, policies=iter(()), seeds=iter(()))):
            assert len(grid) == 1
            assert grid[0].policy == base.policy
            assert grid[0].seed == base.seed


class TestSweepIntegration:
    """The acceptance criterion: identical in-process and pooled, cacheable."""

    def test_serial_pool_and_inprocess_identical(self):
        cells = scenario_cells(scenario_grid(full_scenario(),
                                             seeds=[0, 1, 2, 3]))
        serial = run_sweep(cells, workers=1)
        pooled = run_sweep(cells, workers=4)
        assert all(r.ok for r in serial + pooled), [
            r.error for r in serial + pooled if not r.ok
        ]
        for a, b in zip(serial, pooled):
            assert a.summary == b.summary
        inproc = run_scenario(cells[0].scenario)
        assert serial[0].summary == inproc.summary

    def test_scenario_cells_are_cacheable(self, tmp_path):
        cells = scenario_cells([full_scenario()])
        assert cell_fingerprint(cells[0]) is not None
        first = run_sweep(cells, workers=1, cache_dir=tmp_path)
        second = run_sweep(cells, workers=1, cache_dir=tmp_path)
        assert not first[0].cached
        assert second[0].cached
        assert first[0].summary == second[0].summary

    def test_third_party_registrations_not_cached(self):
        """Code the fingerprint cannot see (a downstream-registered trace)
        must never be served stale from the cache."""
        name = "test-external-trace"

        @register_trace(name)
        def _gen(base_rate, duration, seed=0, name=name):
            import numpy as np

            return Trace(name=name,
                         arrivals=np.arange(0, duration, 1.0 / base_rate),
                         duration=duration)

        try:
            cell = scenario_cells([
                full_scenario(trace=TraceSpec(name=name, duration=8.0,
                                              base_rate=20.0))
            ])[0]
            assert cell_fingerprint(cell) is None
            # Config cells referencing the same external trace are
            # equally uncacheable.
            from repro.experiments.runner import ExperimentConfig
            from repro.experiments.sweep import SweepCell

            config_cell = SweepCell(
                config=ExperimentConfig(app="tm", trace=name, workers=1),
                policy="Naive",
            )
            assert cell_fingerprint(config_cell) is None
        finally:
            del TRACES[name]
        cell = scenario_cells([full_scenario()])[0]
        assert cell.label() == "accept-Naive-s3"
        assert cell.policy == "Naive"


class TestRegistries:
    def test_register_trace_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_trace("wiki")(lambda **kw: None)

    def test_register_application_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_application("lv")(lambda: None)

    def test_register_policy_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("PARD")(lambda seed: None)

    def test_registered_trace_visible_to_scenarios(self):
        name = "test-reg-trace"
        assert name not in TRACES

        @register_trace(name)
        def _gen(base_rate, duration, seed=0, name=name):
            import numpy as np

            return Trace(name=name,
                         arrivals=np.arange(0, duration, 1.0 / base_rate),
                         duration=duration)

        try:
            s = Scenario(app=AppSpec(name="tm"),
                         trace=TraceSpec(name=name, duration=2.0))
            assert len(s.build_trace(10.0)) == 20
        finally:
            del TRACES[name]

    def test_system_factories_still_the_four_systems(self):
        assert set(SYSTEM_FACTORIES) == {"PARD", "Nexus", "Clipper++", "Naive"}
        assert set(APPLICATIONS) == {
            "tm", "lv", "gm", "da", "llm-chat", "rag-agentic",
        }
