"""Streaming and file-backed trace specs at the scenario layer."""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, TraceSpec
from repro.workload.generators import get_trace
from repro.workload.io import save_trace_csv
from repro.workload.source import trace_file_digest


class TestSpecFields:
    def test_defaults_emit_no_new_keys(self):
        # Pre-existing specs must serialize exactly as before this PR —
        # fingerprints (and therefore sweep caches and goldens) depend
        # on it.
        spec = TraceSpec(name="tweet", duration=30.0, base_rate=50.0)
        d = spec.to_dict()
        assert "path" not in d and "digest" not in d and "stream" not in d
        assert TraceSpec.from_dict(d) == spec

    def test_stream_roundtrip(self):
        spec = TraceSpec(
            name="constant", duration=20.0, base_rate=40.0, stream=True
        )
        d = spec.to_dict()
        assert d["stream"] is True
        assert TraceSpec.from_dict(d) == spec
        assert spec.is_lazy()

    def test_path_roundtrip(self, tmp_path):
        trace = get_trace("poisson", base_rate=30.0, duration=15.0, seed=0)
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        spec = TraceSpec(path=str(path), digest=trace_file_digest(path))
        d = spec.to_dict()
        assert d["path"] == str(path)
        assert TraceSpec.from_dict(d) == spec
        assert spec.is_lazy()
        # Name defaults to the file stem.
        assert spec.name == "t"

    def test_digest_requires_path(self):
        with pytest.raises(ValueError):
            TraceSpec(name="tweet", duration=10.0, digest="0" * 64)

    def test_path_excludes_stream_flag(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# trace=t duration=10\n1.0\n")
        with pytest.raises(ValueError, match="stream"):
            TraceSpec(path=str(path), stream=True)

    def test_path_excludes_generator_knobs(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# trace=t duration=10\n1.0\n")
        with pytest.raises(ValueError):
            TraceSpec(path=str(path), base_rate=50.0)
        with pytest.raises(ValueError):
            TraceSpec(path=str(path), args={"burst_factor": 2.0})


class TestScenarioValidation:
    def test_file_backed_rejects_utilization(self, tmp_path):
        trace = get_trace("constant", base_rate=20.0, duration=10.0, seed=0)
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        scenario = Scenario(
            trace=TraceSpec(path=str(path)), utilization=0.9
        )
        with pytest.raises(ValueError, match="utilization"):
            scenario.validate()

    def test_file_backed_with_workers_validates(self, tmp_path):
        trace = get_trace("constant", base_rate=20.0, duration=10.0, seed=0)
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        Scenario(trace=TraceSpec(path=str(path)), workers=2).validate()


class TestStreamedExecution:
    def test_streamed_constant_equals_eager(self):
        def summary(stream: bool):
            scenario = Scenario(
                trace=TraceSpec(
                    name="constant",
                    duration=20.0,
                    base_rate=40.0,
                    stream=stream,
                ),
                workers=2,
            )
            return run_scenario(scenario).summary

        assert summary(stream=True) == summary(stream=False)

    def test_file_backed_equals_generated(self, tmp_path):
        trace = get_trace("tweet", base_rate=50.0, duration=20.0, seed=3)
        path = tmp_path / "tweet.csv"
        save_trace_csv(trace, path)

        lazy = run_scenario(
            Scenario(
                trace=TraceSpec(
                    path=str(path), digest=trace_file_digest(path)
                ),
                workers=2,
            )
        )
        eager = run_scenario(
            Scenario(
                trace=TraceSpec(name="tweet", duration=20.0, base_rate=50.0),
                workers=2,
                seed=3,
            )
        )
        assert lazy.summary == eager.summary

    def test_digest_mismatch_fails_at_run(self, tmp_path):
        trace = get_trace("constant", base_rate=20.0, duration=10.0, seed=0)
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        scenario = Scenario(
            trace=TraceSpec(path=str(path), digest="0" * 64), workers=2
        )
        with pytest.raises(ValueError, match="digest"):
            run_scenario(scenario)
