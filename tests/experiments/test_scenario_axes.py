"""Tests for policy-variant sweep axes (scenario_axes / SweepSpec)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.scenario import (
    AppSpec,
    MultiScenario,
    PolicySpec,
    Scenario,
    SweepSpec,
    TenantSpec,
    TraceSpec,
    load_scenario_file,
    scenario_axes,
)
from repro.experiments.sweep import (
    cell_fingerprint,
    run_sweep,
    scenario_cells,
)
from repro.pipeline.profiles import ModelProfile


def base_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="axes",
        app=AppSpec.chained(
            ["ax_a", "ax_b"], slo=0.3, pipeline="axes-pipe",
            profiles=[
                ModelProfile("ax_a", base=0.02, per_item=0.006, max_batch=8),
                ModelProfile("ax_b", base=0.015, per_item=0.004, max_batch=8),
            ],
        ),
        trace=TraceSpec(name="poisson", duration=6.0, base_rate=120.0),
        policy=PolicySpec("PARD", {"samples": 200}),
        workers=1,
        seed=0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestScenarioAxes:
    def test_policy_param_axis_expands(self):
        grid = scenario_axes(base_scenario(),
                             {"policy.lam": [0.05, 0.1, 0.3]})
        assert len(grid) == 3
        assert [dict(s.policy.params)["lam"] for s in grid] == [0.05, 0.1, 0.3]
        # Other authored params survive the variation.
        assert all(dict(s.policy.params)["samples"] == 200 for s in grid)

    def test_cross_product_order_last_axis_fastest(self):
        grid = scenario_axes(
            base_scenario(),
            {"seed": [0, 1], "policy.lam": [0.1, 0.3]},
        )
        assert [(s.seed, dict(s.policy.params)["lam"]) for s in grid] == [
            (0, 0.1), (0, 0.3), (1, 0.1), (1, 0.3)
        ]

    def test_whole_policy_axis(self):
        grid = scenario_axes(base_scenario(), {"policy": ["Naive", "Nexus"]})
        assert [s.policy.name for s in grid] == ["Naive", "Nexus"]

    def test_nested_section_axis(self):
        grid = scenario_axes(base_scenario(),
                             {"trace.base_rate": [50.0, 100.0]})
        assert [s.trace.base_rate for s in grid] == [50.0, 100.0]

    def test_scalar_field_axis(self):
        grid = scenario_axes(base_scenario(), {"drain": [2.0, 4.0]})
        assert [s.drain for s in grid] == [2.0, 4.0]

    def test_resilience_axis_varies_one_knob(self):
        base = base_scenario(
            resilience={"m1": {"timeout": 0.2, "retry": {"max": 1}}},
        )
        grid = scenario_axes(base, {"resilience.m1.timeout": [0.1, 0.4]})
        hops = [dict(s.resilience) for s in grid]
        assert [h["m1"].timeout for h in hops] == [0.1, 0.4]
        # Untouched knobs survive the variation.
        assert all(h["m1"].retry_max == 1 for h in hops)
        assert len({s.fingerprint() for s in grid}) == 2

    def test_nested_resilience_axis_reaches_retry_knobs(self):
        base = base_scenario(
            resilience={"m1": {"timeout": 0.2, "retry": {"max": 1}}},
        )
        grid = scenario_axes(base, {"resilience.m1.retry.max": [0, 3]})
        assert [dict(s.resilience)["m1"].retry_max for s in grid] == [0, 3]

    def test_resilience_axis_requires_a_configured_hop(self):
        with pytest.raises(ValueError, match="resilience"):
            scenario_axes(base_scenario(),
                          {"resilience.m1.timeout": [0.1]})

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario sweep axis"):
            scenario_axes(base_scenario(), {"bogus": [1]})
        with pytest.raises(ValueError, match="unknown sweep axis"):
            scenario_axes(base_scenario(), {"trace.bogus": [1]})

    def test_invalid_param_value_fails_at_expansion(self):
        with pytest.raises(ValueError, match="must be one of"):
            scenario_axes(base_scenario(), {"policy.budget_mode": ["nope"]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            scenario_axes(base_scenario(), {"policy.lam": []})

    def test_multi_policy_axis_hits_every_tenant(self):
        multi = MultiScenario(
            name="axes-multi",
            tenants=(
                TenantSpec(scenario=base_scenario(name="a", workers=None)),
                TenantSpec(scenario=base_scenario(name="b", workers=None)),
            ),
            workers=1,
        )
        multi.validate()
        grid = scenario_axes(multi, {"policy.lam": [0.1, 0.2]})
        assert len(grid) == 2
        for spec, lam in zip(grid, (0.1, 0.2)):
            assert all(
                dict(t.scenario.policy.params)["lam"] == lam
                for t in spec.tenants
            )

    def test_admission_param_axis_requires_base_admission(self):
        multi = MultiScenario(
            tenants=(TenantSpec(scenario=base_scenario(workers=None)),),
            workers=1,
        )
        with pytest.raises(ValueError, match="admission"):
            scenario_axes(multi, {"admission.rate": [10.0]})


class TestAcceptance:
    """ISSUE 4 acceptance: a lam sweep over >= 3 values yields distinct
    fingerprints, bitwise-identical results serial vs 4-proc, and labels
    carrying the swept values."""

    def test_lam_axis_distinct_fingerprints_and_labels(self):
        cells = scenario_cells(
            scenario_axes(base_scenario(),
                          {"policy.lam": [0.05, 0.1, 0.3]})
        )
        prints = {cell_fingerprint(c) for c in cells}
        assert len(prints) == 3 and None not in prints
        labels = [c.label() for c in cells]
        for lam in ("0.05", "0.1", "0.3"):
            assert any(f"lam={lam}" in label for label in labels), labels

    def test_lam_axis_bitwise_serial_vs_four_proc(self):
        cells = scenario_cells(
            scenario_axes(base_scenario(),
                          {"policy.lam": [0.05, 0.1, 0.3]})
        )
        serial = run_sweep(cells, workers=1)
        pooled = run_sweep(cells, workers=4)
        assert all(r.ok for r in serial + pooled), [
            r.error for r in serial + pooled if not r.ok
        ]
        for a, b in zip(serial, pooled):
            assert a.summary == b.summary
            assert a.policy_name == b.policy_name
        # The knob must actually differentiate behaviour, not just labels:
        # at least two lam points disagree on the summary.
        summaries = [r.summary for r in serial]
        assert any(s != summaries[0] for s in summaries[1:])

    def test_variant_policy_name_lands_in_tables(self):
        cells = scenario_cells(
            scenario_axes(base_scenario(), {"policy.lam": [0.3]})
        )
        result = run_sweep(cells, workers=1)[0]
        assert "lam=0.3" in result.policy_name


class TestSweepSpecFile:
    def test_round_trip(self):
        spec = SweepSpec(
            base=base_scenario(),
            axes={"policy.lam": [0.05, 0.1], "seed": [0, 1]},
            name="rt",
        )
        again = SweepSpec.from_dict(json.loads(spec.to_json()))
        assert again == spec
        assert [s.fingerprint() for s in again.expand()] == [
            s.fingerprint() for s in spec.expand()
        ]

    def test_expand_size(self):
        spec = SweepSpec(base=base_scenario(),
                         axes={"policy.lam": [0.05, 0.1], "seed": [0, 1]})
        assert len(spec.expand()) == 4

    def test_load_scenario_file_auto_detects(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "name": "auto",
            "base": base_scenario().to_dict(),
            "axes": {"policy.lam": [0.1, 0.2]},
        }))
        loaded = load_scenario_file(path)
        assert isinstance(loaded, SweepSpec)
        assert loaded.validate() is loaded
        assert len(loaded.expand()) == 2

    def test_validate_surfaces_bad_axis_member(self, tmp_path):
        spec_dict = {
            "base": base_scenario().to_dict(),
            "axes": {"policy": ["Naive", "NoSuchPolicy"]},
        }
        with pytest.raises(ValueError, match="unknown policy"):
            SweepSpec.from_dict(spec_dict).validate()

    def test_nested_sweep_rejected(self):
        inner = SweepSpec(base=base_scenario())
        with pytest.raises(ValueError, match="do not nest"):
            SweepSpec(base=inner)

    def test_example_lam_sweep_file(self):
        from pathlib import Path

        example = (Path(__file__).resolve().parent.parent.parent
                   / "examples" / "scenarios" / "lam_sweep.json")
        spec = load_scenario_file(example).validate()
        assert isinstance(spec, SweepSpec)
        grid = spec.expand()
        assert len(grid) >= 3
        assert len({s.fingerprint() for s in grid}) == len(grid)


class TestTenantAxes:
    """`tenant.<label>.<field>` axes address one tenant of a multi spec."""

    def multi(self, **overrides) -> MultiScenario:
        defaults = dict(
            name="axes-pair",
            tenants=(
                TenantSpec(scenario=base_scenario(name="a", workers=None)),
                TenantSpec(scenario=base_scenario(name="b", workers=None)),
            ),
            workers=1,
        )
        defaults.update(overrides)
        return MultiScenario(**defaults)

    def test_tenant_weight_axis(self):
        grid = scenario_axes(self.multi(), {"tenant.a.weight": [0.5, 2.0]})
        assert [spec.tenants[0].weight for spec in grid] == [0.5, 2.0]
        assert all(spec.tenants[1].weight == 1.0 for spec in grid)

    def test_tenant_quota_axis(self):
        grid = scenario_axes(self.multi(), {"tenant.b.quota": [1, 2]})
        assert [spec.tenants[1].quota for spec in grid] == [1, 2]
        assert all(spec.tenants[0].quota is None for spec in grid)

    def test_tenant_scenario_axis_recurses(self):
        grid = scenario_axes(
            self.multi(), {"tenant.a.trace.base_rate": [30.0, 60.0]}
        )
        assert [s.tenants[0].scenario.trace.base_rate for s in grid] == [
            30.0, 60.0,
        ]
        # The other tenant keeps the authored rate.
        assert all(
            s.tenants[1].scenario.trace.base_rate == 120.0 for s in grid
        )

    def test_multi_trace_axis_hits_every_tenant(self):
        grid = scenario_axes(self.multi(), {"trace.base_rate": [40.0]})
        assert all(
            t.scenario.trace.base_rate == 40.0 for t in grid[0].tenants
        )

    def test_unknown_tenant_rejected(self):
        with pytest.raises(ValueError, match="unknown tenant 'ghost'"):
            scenario_axes(self.multi(), {"tenant.ghost.weight": [1.0]})

    def test_malformed_tenant_axis_rejected(self):
        with pytest.raises(ValueError, match="tenant.<label>.<field>"):
            scenario_axes(self.multi(), {"tenant.a": [1.0]})

    def test_quota_survives_dict_round_trip_and_fingerprint(self):
        spec = self.multi(
            tenants=(
                TenantSpec(scenario=base_scenario(name="a", workers=None),
                           quota=1),
                TenantSpec(scenario=base_scenario(name="b", workers=None),
                           quota={"ax_a": 2}),
            ),
        )
        body = json.loads(json.dumps(spec.to_dict()))
        again = MultiScenario.from_dict(body)
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_quota_must_be_positive(self):
        with pytest.raises(ValueError, match="quota"):
            TenantSpec(scenario=base_scenario(name="a", workers=None),
                       quota=0)
        with pytest.raises(ValueError, match="quota"):
            TenantSpec(scenario=base_scenario(name="a", workers=None),
                       quota={"ax_a": 0})

    def test_dict_quota_must_name_real_pools(self):
        spec = self.multi(
            tenants=(
                TenantSpec(scenario=base_scenario(name="a", workers=None),
                           quota={"nope": 1}),
                TenantSpec(scenario=base_scenario(name="b", workers=None)),
            ),
        )
        with pytest.raises(ValueError, match="nope"):
            spec.validate()
