"""Unit tests for the ``repro bench`` harness (cheap paths only).

The full macro benchmark runs in CI via ``repro bench --quick``; here we
exercise the harness machinery — timing bookkeeping, report shape and
serialization, workload declarations — with stub workloads, plus one real
(small) multi-tenant workload as an end-to-end smoke.
"""

from __future__ import annotations

import json

from repro.bench import (
    BENCH_SCHEMA,
    BenchResult,
    BenchWorkload,
    WorkloadResult,
    bench_workloads,
    format_table,
    run_workload,
    write_report,
)


def _stub(events: int = 100, requests: int = 10) -> BenchWorkload:
    calls = []

    def run():
        calls.append(1)
        return events, requests

    return BenchWorkload("stub", "single", run)


class TestRunWorkload:
    def test_best_of_repeats(self):
        result = run_workload(_stub(), repeats=3)
        assert result.runs == 3
        assert result.events == 100
        assert result.requests == 10
        assert result.wall_s >= 0.0
        assert result.events_per_sec > 0

    def test_repeats_validated(self):
        import pytest

        with pytest.raises(ValueError):
            run_workload(_stub(), repeats=0)


class TestReport:
    def make(self) -> BenchResult:
        result = BenchResult(schema=BENCH_SCHEMA, quick=True, repeats=1,
                             python="3.x")
        result.workloads.append(WorkloadResult(
            name="w", kind="single", cells=1, runs=1, wall_s=0.5,
            events=1000, requests=100, events_per_sec=2000.0,
        ))
        result.macro_wall_s = 0.5
        result.determinism = {"burst_failure": "ok"}
        return result

    def test_write_report_round_trips(self, tmp_path):
        path = tmp_path / "BENCH.json"
        write_report(self.make(), path)
        data = json.loads(path.read_text())
        assert data["schema"] == BENCH_SCHEMA
        assert data["workloads"][0]["name"] == "w"
        assert "baseline_macro_wall_s" not in data  # no baseline folded

    def test_speedup_in_report_when_baseline_set(self, tmp_path):
        result = self.make()
        result.baseline_macro_wall_s = 1.0
        result.speedup = 2.0
        path = tmp_path / "BENCH.json"
        write_report(result, path)
        data = json.loads(path.read_text())
        assert data["speedup"] == 2.0

    def test_deterministic_flag(self):
        result = self.make()
        assert result.deterministic
        result.determinism["lam_sweep"] = "mismatch"
        assert not result.deterministic

    def test_format_table_mentions_everything(self):
        text = format_table(self.make())
        assert "w" in text and "macro" in text and "burst_failure=ok" in text


class TestWorkloadDeclarations:
    def test_four_canonical_kinds(self):
        workloads = bench_workloads(quick=True)
        assert [w.kind for w in workloads] == [
            "single", "multi", "sweep", "llm", "million"
        ]
        sweep = workloads[2]
        assert sweep.cells == 8  # four apps x two policies

    def test_quick_multi_runs_end_to_end(self):
        multi = bench_workloads(quick=True)[1]
        events, requests = multi.run()
        assert events > 0 and requests > 0
        # Determinism of the workload itself.
        assert multi.run() == (events, requests)
