"""Sharded sweeps: deterministic partitioning and bitwise merge."""

from __future__ import annotations

import json

import pytest

from repro.experiments.scenario import Scenario, TraceSpec, scenario_grid
from repro.experiments.sweep import (
    merge_summaries,
    parse_shard,
    run_sweep,
    scenario_cells,
    shard_indices,
    summaries_text,
)


class TestParseShard:
    def test_valid(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("3/8") == (3, 8)

    @pytest.mark.parametrize(
        "text", ["0/2", "3/2", "2", "a/b", "2/0", "-1/2", "1/"]
    )
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)


class TestShardIndices:
    def test_partition_is_complete_and_disjoint(self):
        total = 11
        n = 3
        owned = [shard_indices(total, (i, n)) for i in range(1, n + 1)]
        merged = sorted(i for part in owned for i in part)
        assert merged == list(range(total))

    def test_round_robin(self):
        assert shard_indices(7, (1, 2)) == [0, 2, 4, 6]
        assert shard_indices(7, (2, 2)) == [1, 3, 5]

    def test_single_shard_is_identity(self):
        assert shard_indices(5, (1, 1)) == list(range(5))

    def test_empty_shard(self):
        # More shards than cells: trailing shards legitimately own none.
        assert shard_indices(2, (3, 4)) == []


def _grid_cells():
    base = Scenario(
        trace=TraceSpec(name="constant", duration=10.0, base_rate=30.0),
        workers=2,
    )
    return scenario_cells(
        scenario_grid(base, policies=["PARD", "Naive"], seeds=[0, 1])
    )


class TestShardedSweepMerge:
    def test_merged_shards_equal_serial_bitwise(self):
        cells = _grid_cells()
        serial = summaries_text(run_sweep(cells, workers=1))
        shard_texts = []
        for i in (1, 2):
            indices = shard_indices(len(cells), (i, 2))
            results = run_sweep([cells[k] for k in indices], workers=1)
            shard_texts.append(summaries_text(results, indices=indices))
        assert merge_summaries(shard_texts) == serial

    def test_merge_order_independent(self):
        cells = _grid_cells()
        serial = summaries_text(run_sweep(cells, workers=1))
        texts = []
        for i in (2, 1):  # reversed input order
            indices = shard_indices(len(cells), (i, 2))
            results = run_sweep([cells[k] for k in indices], workers=1)
            texts.append(summaries_text(results, indices=indices))
        assert merge_summaries(texts) == serial

    def test_shard_entries_carry_index(self):
        cells = _grid_cells()
        indices = shard_indices(len(cells), (2, 2))
        results = run_sweep([cells[k] for k in indices], workers=1)
        payload = json.loads(summaries_text(results, indices=indices))
        assert [e["index"] for e in payload] == indices

    def test_missing_shard_rejected(self):
        cells = _grid_cells()
        indices = shard_indices(len(cells), (1, 2))
        results = run_sweep([cells[k] for k in indices], workers=1)
        text = summaries_text(results, indices=indices)
        with pytest.raises(ValueError, match="partition"):
            merge_summaries([text])

    def test_duplicate_shard_rejected(self):
        cells = _grid_cells()[:2]
        indices = [0, 1]
        results = run_sweep(cells, workers=1)
        text = summaries_text(results, indices=indices)
        with pytest.raises(ValueError, match="partition"):
            merge_summaries([text, text])

    def test_unsharded_input_rejected(self):
        cells = _grid_cells()[:1]
        text = summaries_text(run_sweep(cells, workers=1))
        with pytest.raises(ValueError, match="index"):
            merge_summaries([text])

    def test_indices_length_checked(self):
        cells = _grid_cells()[:2]
        results = run_sweep(cells, workers=1)
        with pytest.raises(ValueError):
            summaries_text(results, indices=[0])


class TestShardResume:
    def test_cache_resumes_interrupted_shard(self, tmp_path):
        """A killed shard resumes from its cache and merges bitwise.

        Simulated interruption: run only a prefix of the shard's cells
        (as if the process died mid-grid), then re-run the whole shard
        against the same cache — completed cells come back as hits and
        the merged output still matches the serial run byte for byte.
        """
        cells = _grid_cells()
        cache = tmp_path / "cache"
        serial = summaries_text(run_sweep(cells, workers=1))

        indices = shard_indices(len(cells), (1, 2))
        shard_cells = [cells[k] for k in indices]
        # "Killed" first attempt: only one cell completed.
        run_sweep(shard_cells[:1], workers=1, cache_dir=cache)
        # Resume: same command, same cache.
        events = []
        results = run_sweep(
            shard_cells, workers=1, cache_dir=cache,
            on_event=lambda e: events.append(e.kind),
        )
        assert "cached" in events  # the completed cell was not re-run
        text1 = summaries_text(results, indices=indices)

        other = shard_indices(len(cells), (2, 2))
        results2 = run_sweep(
            [cells[k] for k in other], workers=1, cache_dir=cache
        )
        text2 = summaries_text(results2, indices=other)
        assert merge_summaries([text1, text2]) == serial
