"""Lean metrics mode: identical summaries, no per-request records."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.runner import run_multi_scenario, run_scenario
from repro.experiments.scenario import MultiScenario, Scenario
from repro.experiments.sweep import SweepCell, cell_fingerprint, execute_cell
from repro.metrics.analysis import merge_collectors, summarize
from repro.metrics.collector import MetricsCollector


def _scenario() -> Scenario:
    return Scenario.from_dict({
        "name": "lean-check",
        "app": {"name": "tm"},
        "trace": {"name": "poisson", "duration": 6, "base_rate": 30},
        "policy": "PARD",
        "workers": 2,
        "seed": 0,
    })


def _multi() -> MultiScenario:
    return MultiScenario.from_dict({
        "name": "lean-multi",
        "tenants": [
            {"scenario": {"name": "a", "app": {"name": "tm"}, "policy": "PARD",
                          "trace": {"name": "poisson", "duration": 5,
                                    "base_rate": 20}}},
            {"scenario": {"name": "b", "app": {"name": "tm"}, "policy": "Naive",
                          "trace": {"name": "poisson", "duration": 5,
                                    "base_rate": 15}}},
        ],
        "seed": 0,
    })


class TestLeanParity:
    def test_scenario_summary_identical_records_absent(self):
        full = run_scenario(_scenario())
        lean = run_scenario(_scenario(), lean=True)
        assert lean.summary == full.summary  # exact, not approx
        assert full.collector.records
        assert lean.collector.records == []
        assert lean.collector.lean
        # The streaming counters still answer len() and summarize().
        assert len(lean.collector) == len(full.collector)
        assert summarize(lean.collector) == summarize(full.collector)

    def test_multi_summaries_identical(self):
        full = run_multi_scenario(_multi())
        lean = run_multi_scenario(_multi(), lean=True)
        assert lean.summaries == full.summaries
        assert lean.aggregate == full.aggregate
        assert all(not c.records for c in lean.collectors.values())

    def test_merge_collectors_handles_lean(self):
        full = run_multi_scenario(_multi())
        lean = run_multi_scenario(_multi(), lean=True)
        merged_full = merge_collectors(full.collectors)
        merged_lean = merge_collectors(lean.collectors)
        assert merged_lean.count == merged_full.count
        s_full = summarize(merged_full, duration=5.0)
        s_lean = summarize(merged_lean, duration=5.0)
        assert s_lean.total == s_full.total
        assert s_lean.good == s_full.good
        assert s_lean.invalid_rate == pytest.approx(s_full.invalid_rate)


class TestLeanCells:
    def test_cell_summary_identical(self):
        full = execute_cell(SweepCell(scenario=_scenario()))
        lean = execute_cell(SweepCell(scenario=_scenario(), lean=True))
        assert lean.ok and full.ok
        assert lean.summary == full.summary

    def test_lean_cells_fingerprint_separately(self):
        cell = SweepCell(scenario=_scenario())
        assert cell_fingerprint(cell) != cell_fingerprint(replace(cell, lean=True))

    def test_lean_sweep_reuses_cached_full_results(self, tmp_path):
        from repro.experiments.sweep import run_sweep

        full = run_sweep([SweepCell(scenario=_scenario())],
                         workers=1, cache_dir=tmp_path)
        assert not full[0].cached
        lean = run_sweep([SweepCell(scenario=_scenario(), lean=True)],
                         workers=1, cache_dir=tmp_path)
        # A full result satisfies a lean request: summary identical,
        # records merely extra — so the cell must not re-simulate.
        assert lean[0].cached
        assert lean[0].summary == full[0].summary

    def test_full_sweep_never_reads_lean_cache(self, tmp_path):
        from repro.experiments.sweep import run_sweep

        lean = run_sweep([SweepCell(scenario=_scenario(), lean=True)],
                         workers=1, cache_dir=tmp_path)
        assert not lean[0].cached
        full = run_sweep([SweepCell(scenario=_scenario())],
                         workers=1, cache_dir=tmp_path)
        assert not full[0].cached  # lean entry has no records to serve
        assert full[0].collector.records

    def test_full_fingerprint_unchanged_by_lean_field(self):
        # Adding the lean field must not invalidate existing full-cell
        # cache entries: the payload only mentions lean when set.
        cell = SweepCell(scenario=_scenario())
        fp = cell_fingerprint(cell)
        assert fp == cell_fingerprint(SweepCell(scenario=_scenario(), lean=False))


class TestCollectorCounters:
    def test_hand_built_records_fall_back_to_scan(self):
        from repro.simulation.request import Request

        direct = MetricsCollector()
        via_api = MetricsCollector()
        for i in range(3):
            r = Request(sent_at=float(i), slo=1.0)
            r.mark_completed(float(i) + 0.5)
            via_api.record_request(r)
            r2 = Request(sent_at=float(i), slo=1.0)
            r2.mark_completed(float(i) + 0.5)
            via_api2 = MetricsCollector()
            via_api2.record_request(r2)
            direct.records.extend(via_api2.records)  # bypasses counters
        assert summarize(direct, duration=3.0) == summarize(via_api, duration=3.0)
