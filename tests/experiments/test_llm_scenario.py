"""Scenario-layer tests for the LLM serving family.

Covers the two schema additions this family rides on — declarative
goodput constraints (:class:`GoodputSpec`) and declarative fork routing
(:class:`RouterSpec`) — plus end-to-end runs that thread them through
the runner into per-app :class:`GoodputReport` objects and the sweep's
summaries payload.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_multi_scenario, run_scenario
from repro.experiments.scenario import (
    GoodputSpec,
    MultiScenario,
    RouterSpec,
    Scenario,
    scenario_axes,
)
from repro.simulation.routing import ProbabilisticRouter, StaticRouter


def chat_scenario(**overrides) -> Scenario:
    fields = dict(
        name="chat",
        app={"name": "llm-chat"},
        trace={"name": "poisson", "duration": 4, "base_rate": 10},
        policy="PARD",
        workers=1,
        seed=0,
        goodput={"ttft": 1.0, "e2e": 8.0},
    )
    fields.update(overrides)
    return Scenario.from_dict(fields)


class TestRouterSpec:
    def test_round_trip(self):
        spec = RouterSpec(
            kind="probabilistic", weights={"a": 0.6, "b": 0.4}, seed=3
        )
        assert RouterSpec.from_dict(spec.to_dict()) == spec

    def test_static_rejects_weights(self):
        with pytest.raises(ValueError):
            RouterSpec(kind="static", weights={"a": 1.0})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RouterSpec(kind="random")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            RouterSpec(kind="probabilistic", weights={"a": 0.0})

    def test_build_resolves_kind_and_inherits_seed(self):
        assert isinstance(RouterSpec().build(), StaticRouter)
        prob = RouterSpec(kind="probabilistic", weights={"a": 1.0})
        assert isinstance(prob.build(default_seed=7), ProbabilisticRouter)

    def test_validate_rejects_unknown_weight_module(self):
        scenario = chat_scenario(
            app={"name": "rag-agentic"},
            router={
                "kind": "probabilistic",
                "weights": {"no_such_module": 1.0},
            },
        )
        with pytest.raises(ValueError, match="no_such_module"):
            scenario.validate()


class TestScenarioSchema:
    def test_legacy_dicts_default_to_none(self):
        scenario = Scenario.from_dict(
            {"app": {"name": "tm"}, "policy": "Naive"}
        )
        assert scenario.goodput is None
        assert scenario.router is None

    def test_goodput_round_trips_through_dict(self):
        scenario = chat_scenario()
        again = Scenario.from_dict(scenario.to_dict())
        assert again == scenario
        assert again.goodput == GoodputSpec(ttft=1.0, e2e=8.0)
        assert again.fingerprint() == scenario.fingerprint()

    def test_goodput_axis_sweeps_from_none_base(self):
        base = chat_scenario(goodput=None)
        cells = scenario_axes(base, {"goodput.ttft": [0.2, 0.4]})
        assert [s.goodput.ttft for s in cells] == [0.2, 0.4]
        # Sweeping a constraint must change the cache identity.
        assert cells[0].fingerprint() != cells[1].fingerprint()


class TestRunnerThreading:
    def test_single_scenario_yields_goodput_report(self):
        result = run_scenario(chat_scenario())
        assert result.goodput is not None
        assert result.goodput.total == result.summary.total > 0
        assert result.goodput.tokens_out > 0

    def test_no_constraints_no_report(self):
        result = run_scenario(chat_scenario(goodput=None))
        assert result.goodput is None

    def test_multi_scenario_reports_per_app(self):
        multi = MultiScenario.from_dict(
            {
                "name": "mix",
                "seed": 0,
                "tenants": [
                    {
                        "weight": 1.0,
                        "scenario": chat_scenario(workers=None).to_dict(),
                    },
                    {
                        "weight": 1.0,
                        "scenario": chat_scenario(
                            name="plain",
                            app={"name": "tm"},
                            goodput=None,
                            workers=None,
                        ).to_dict(),
                    },
                ],
            }
        )
        result = run_multi_scenario(multi)
        assert result.goodputs["chat"] is not None
        assert result.goodputs["chat"].total > 0
        assert result.goodputs["plain"] is None

    def test_router_branches_exclusively(self):
        """With a probabilistic router each RAG request takes exactly one
        branch, so no record visits both generate and generate_direct."""
        result = run_scenario(
            chat_scenario(
                name="rag",
                app={"name": "rag-agentic"},
                router={
                    "kind": "probabilistic",
                    "weights": {"rerank": 0.5, "generate_direct": 0.5},
                },
                goodput=None,
            )
        )
        branch_counts = {"generate": 0, "generate_direct": 0}
        for record in result.cluster.metrics.records:
            visited = {v.module_id for v in record.visits}
            assert not ({"generate", "generate_direct"} <= visited)
            for branch in branch_counts:
                if branch in visited:
                    branch_counts[branch] += 1
        # Both branches are actually exercised at these weights.
        assert all(c > 0 for c in branch_counts.values())


class TestSummariesPayload:
    def test_goodput_appears_only_when_declared(self):
        from repro.experiments.sweep import (
            run_sweep,
            scenario_cells,
            summaries_text,
        )

        with_spec = run_sweep(
            scenario_cells([chat_scenario()]), workers=1, cache_dir=None
        )
        without = run_sweep(
            scenario_cells([chat_scenario(goodput=None)]),
            workers=1,
            cache_dir=None,
        )
        assert '"spec"' in summaries_text(with_spec)
        assert '"ttft_met"' in summaries_text(with_spec)
        assert '"ttft_met"' not in summaries_text(without)
