"""Property tests: seeded random fault schedules x resilience policies.

Draw fault schedules (kills, stragglers, link cuts) from seeded chaos
streams, cross them with drop policies and per-hop resilience, and
assert the lifecycle invariant no combination may violate: every
admitted request reaches exactly one terminal state, no module executes
twice for one request, and no token state is left behind.  A sweep over
the same grid additionally pins that a process pool reproduces the
serial run byte for byte.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import AppSpec, Scenario, TraceSpec
from repro.experiments.sweep import run_sweep, scenario_cells, summaries_text
from repro.pipeline.profiles import ModelProfile
from repro.simulation.request import RequestStatus
from repro.studies import ChaosStudy

RESILIENCE = {
    "m1": {"timeout": 0.15, "retry": {"max": 1, "base": 0.02}},
    "m2": {"timeout": 0.25, "on_timeout": "drop"},
}


def chaos_scenario(policy: str, fault_seed: int, resilience=None) -> Scenario:
    return Scenario(
        name=f"chaos-{policy}-{fault_seed}",
        app=AppSpec.chained(
            ["chp_a", "chp_b"],
            slo=0.35,
            pipeline="chaos-prop",
            profiles=[
                ModelProfile("chp_a", base=0.015, per_item=0.005,
                             max_batch=8),
                ModelProfile("chp_b", base=0.010, per_item=0.004,
                             max_batch=8),
            ],
        ),
        trace=TraceSpec(name="poisson", duration=4.0, base_rate=80.0),
        policy=policy,
        seed=fault_seed,
        workers=2,
        resilience=resilience or {},
    )


def schedule(fault_seed: int):
    """A 3-event mixed-kind schedule drawn from the chaos stream."""
    study = ChaosStudy(
        base=chaos_scenario("Naive", 0),
        seeds=(fault_seed,),
        faults=3,
        downtime=(0.3, 1.0),
    )
    return study.schedule(fault_seed)


@pytest.mark.parametrize("fault_seed", [0, 7, 19])
@pytest.mark.parametrize("policy", ["Naive", "PARD"])
def test_every_request_terminal_exactly_once(policy, fault_seed):
    scenario = chaos_scenario(policy, fault_seed, resilience=RESILIENCE)
    scenario = Scenario.from_dict(
        {**scenario.to_dict(),
         "failures": [e.to_dict() for e in schedule(fault_seed)]},
    )
    result = run_scenario(scenario)
    cluster = result.cluster
    records = result.collector.records
    assert len(records) == result.collector.submitted
    rids = [r.rid for r in records]
    assert len(rids) == len(set(rids))
    for record in records:
        assert record.status in (
            RequestStatus.COMPLETED, RequestStatus.DROPPED,
        )
        visited = [v.module_id for v in record.visits]
        assert len(visited) == len(set(visited))
    # All per-request token and fault state was reclaimed.
    assert cluster._severed is None
    assert not cluster._join_arrived
    assert not cluster._join_expected
    assert not cluster._exit_expected
    # The schedule actually fired (fail/degrade/cut plus its recovery).
    assert len(result.fault_records) >= 2


def test_chaos_sweep_pool_matches_serial_bytes():
    scenarios = []
    for policy in ("Naive", "PARD"):
        for fault_seed in (0, 7):
            base = chaos_scenario(policy, fault_seed, resilience=RESILIENCE)
            scenarios.append(Scenario.from_dict(
                {**base.to_dict(),
                 "failures": [e.to_dict() for e in schedule(fault_seed)]},
            ))
    cells = scenario_cells(scenarios)
    serial = run_sweep(cells, workers=1, cache_dir=None)
    assert all(r.ok for r in serial), [r.error for r in serial if not r.ok]
    parallel = run_sweep(cells, workers=2, cache_dir=None)
    assert summaries_text(parallel) == summaries_text(serial)
