"""Round-trip property tests over every committed example scenario file.

For each file under ``examples/scenarios/``: parsing, re-serialising and
re-parsing must preserve both equality and the cache fingerprint — the
property the disk cache and the sweep workers rely on.  Legacy bare-string
``"policy"`` JSON must coerce to an equivalent :class:`PolicySpec`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.scenario import (
    MultiScenario,
    PolicySpec,
    Scenario,
    SweepSpec,
    load_scenario_file,
    scenario_from_dict,
)

SCENARIO_DIR = (
    Path(__file__).resolve().parent.parent.parent / "examples" / "scenarios"
)
EXAMPLE_FILES = sorted(SCENARIO_DIR.glob("*.json"))


def test_examples_exist():
    assert EXAMPLE_FILES, f"no example scenarios under {SCENARIO_DIR}"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_dict_round_trip_preserves_fingerprint(path: Path):
    spec = load_scenario_file(path)
    again = scenario_from_dict(spec.to_dict())
    assert again == spec
    if isinstance(spec, SweepSpec):
        # A sweep file's identity is its expanded grid.
        assert [s.fingerprint() for s in again.expand()] == [
            s.fingerprint() for s in spec.expand()
        ]
    else:
        assert again.fingerprint() == spec.fingerprint()


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_json_round_trip_is_stable(path: Path):
    spec = load_scenario_file(path)
    text = spec.to_json()
    assert scenario_from_dict(json.loads(text)) == spec
    # Serialising twice is byte-stable (no dict-order nondeterminism).
    assert scenario_from_dict(json.loads(text)).to_json() == text


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_every_example_validates(path: Path):
    load_scenario_file(path).validate()


def _scenarios_of(spec) -> "list[Scenario]":
    if isinstance(spec, SweepSpec):
        out = []
        for member in spec.expand():
            out.extend(_scenarios_of(member))
        return out
    if isinstance(spec, MultiScenario):
        return [t.scenario for t in spec.tenants]
    return [spec]


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_legacy_bare_string_policy_coerces_equivalently(path: Path):
    """Rewriting any scenario's policy as the legacy bare string (when it
    has no params) or the explicit mapping form yields an equal spec."""
    spec = load_scenario_file(path)
    for scenario in _scenarios_of(spec):
        d = scenario.to_dict()
        compact = d["policy"]
        explicit = (
            {"name": compact, "params": {}} if isinstance(compact, str)
            else compact
        )
        explicit_spec = Scenario.from_dict(dict(d, policy=explicit))
        assert explicit_spec == scenario
        assert explicit_spec.fingerprint() == scenario.fingerprint()
        assert isinstance(explicit_spec.policy, PolicySpec)


def test_bare_string_and_mapping_forms_share_fingerprint():
    bare = Scenario.from_dict({"app": {"name": "tm"}, "policy": "Naive"})
    mapped = Scenario.from_dict(
        {"app": {"name": "tm"}, "policy": {"name": "Naive", "params": {}}}
    )
    assert bare == mapped
    assert bare.fingerprint() == mapped.fingerprint()
    assert bare.policy == PolicySpec("Naive")
