"""Golden determinism fingerprints for the committed example scenarios.

Every scenario file under ``examples/scenarios/`` has a committed
``--save-summaries`` golden in ``benchmarks/goldens/``.  The simulation
core must reproduce those bytes exactly — serially and through a process
pool — so a performance change that perturbs results can never land
silently.  ``repro bench`` runs the same comparison as its determinism
gate (see :func:`repro.bench.check_goldens`).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import GOLDEN_SCENARIOS, check_goldens
from repro.experiments.sweep import load_scenario_cells, run_sweep, summaries_text

REPO = Path(__file__).resolve().parents[2]
SCENARIOS = REPO / "examples" / "scenarios"
GOLDENS = REPO / "benchmarks" / "goldens"


@pytest.mark.parametrize("stem", GOLDEN_SCENARIOS)
def test_serial_summaries_match_committed_golden(stem):
    cells = load_scenario_cells(SCENARIOS / f"{stem}.json")
    results = run_sweep(cells, workers=1, cache_dir=None)
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    golden = (GOLDENS / f"{stem}.summaries.json").read_text()
    assert summaries_text(results) == golden


def test_two_proc_pool_matches_serial_bytes():
    """One pool over every golden scenario's cells: parallel == serial."""
    cells = []
    for stem in GOLDEN_SCENARIOS:
        cells.extend(load_scenario_cells(SCENARIOS / f"{stem}.json"))
    assert len(cells) >= 2  # the pool path must actually engage
    serial = run_sweep(cells, workers=1, cache_dir=None)
    parallel = run_sweep(cells, workers=2, cache_dir=None)
    assert summaries_text(parallel) == summaries_text(serial)


def test_check_goldens_flags_divergence(tmp_path):
    """A tampered golden must surface as a mismatch, not pass silently.

    Only ``burst_failure`` is staged (the other stems report
    missing-scenario without running), keeping the test cheap.
    """
    scenarios = tmp_path / "scenarios"
    goldens = tmp_path / "goldens"
    scenarios.mkdir()
    goldens.mkdir()
    stem = "burst_failure"
    (scenarios / f"{stem}.json").write_text(
        (SCENARIOS / f"{stem}.json").read_text()
    )
    tampered = (GOLDENS / f"{stem}.summaries.json").read_text().replace(
        '"good":', '"good_":', 1
    )
    (goldens / f"{stem}.summaries.json").write_text(tampered)
    status = check_goldens(scenarios, goldens)
    assert status[stem] == "mismatch"
    assert all(
        status[s] == "missing-scenario" for s in GOLDEN_SCENARIOS if s != stem
    )


def test_check_goldens_missing_golden(tmp_path):
    status = check_goldens(SCENARIOS, tmp_path)
    assert set(status.values()) == {"missing-golden"}
