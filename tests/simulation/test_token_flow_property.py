"""Property tests: token-flow lifecycle on seeded random DAGs.

Rather than enumerate shapes by hand, generate random single-entry DAGs
(dense enough to re-merge flow repeatedly) and assert the lifecycle
invariant that path-counting violated: under every registered policy,
every admitted request reaches exactly one terminal state — completed or
dropped, never both, never neither — with no token state left behind.
A sweep over an inline-pipeline scenario additionally pins that a process
pool reproduces the serial run byte-for-byte.
"""

from __future__ import annotations

import random

import pytest

from repro.metrics.collector import MetricsCollector
from repro.pipeline.applications import Application
from repro.pipeline.spec import ModuleSpec, PipelineSpec
from repro.policies.registry import known_policies, make_policy
from repro.simulation.cluster import Cluster
from repro.simulation.engine import Simulator
from repro.simulation.request import RequestStatus
from repro.simulation.rng import RngStreams
from repro.simulation.routing import ResultDependentRouter

from ..conftest import tiny_registry

MODELS = ("alpha", "beta", "gamma")


def random_dag(seed: int, n: int = 9) -> PipelineSpec:
    """A random single-entry DAG over the tiny registry models.

    Nodes are generated in topological order; every non-entry node picks
    1-3 predecessors among the earlier nodes, so flow forks, re-merges
    and forks again — exactly the shapes where join demand and in-degree
    diverge under subset routing.
    """
    rng = random.Random(seed)
    preds: dict[int, list[int]] = {0: []}
    for i in range(1, n):
        k = min(i, rng.choice((1, 1, 2, 3)))
        preds[i] = sorted(rng.sample(range(i), k))
    subs: dict[int, list[int]] = {i: [] for i in range(n)}
    for i, ps in preds.items():
        for p in ps:
            subs[p].append(i)
    modules = [
        ModuleSpec(
            id=f"m{i}",
            model=MODELS[i % len(MODELS)],
            pres=tuple(f"m{p}" for p in preds[i]),
            subs=tuple(f"m{s}" for s in subs[i]),
        )
        for i in range(n)
    ]
    return PipelineSpec(name=f"random-dag-{seed}", modules=modules)


def _rid_router() -> ResultDependentRouter:
    """Deterministic per-request subset choice (exercises kill plans)."""

    def choose(request, subs):
        return subs[: 1 + request.rid % len(subs)]

    return ResultDependentRouter(choose)


def _run(spec: PipelineSpec, policy_name: str, requests: int = 12) -> Cluster:
    cluster = Cluster(
        sim=Simulator(),
        app=Application(spec=spec, slo=5.0),
        policy=make_policy(policy_name, seed=3),
        workers=1,
        registry=tiny_registry(),
        metrics=MetricsCollector(),
        rng=RngStreams(seed=3),
        router=_rid_router(),
    )
    for i in range(requests):
        cluster.submit_at(0.004 * i)
    cluster.sim.run()
    return cluster


@pytest.mark.parametrize("dag_seed", [11, 23, 47])
@pytest.mark.parametrize("policy_name", known_policies())
def test_every_request_terminal_exactly_once(dag_seed, policy_name):
    spec = random_dag(dag_seed)
    cluster = _run(spec, policy_name)
    records = cluster.metrics.records
    # Exactly one terminal record per admitted request.
    assert len(records) == cluster.metrics.submitted == 12
    rids = [r.rid for r in records]
    assert len(rids) == len(set(rids))
    for record in records:
        assert record.status in (
            RequestStatus.COMPLETED, RequestStatus.DROPPED,
        )
        # No module executed twice for one request.
        visited = [v.module_id for v in record.visits]
        assert len(visited) == len(set(visited))
    # All per-request token state was reclaimed.
    assert not cluster._join_arrived
    assert not cluster._join_expected
    assert not cluster._exit_expected


def test_random_dags_have_joins_and_multiple_exits():
    """The generator must actually produce the interesting shapes."""
    specs = [random_dag(seed) for seed in (11, 23, 47)]
    assert any(spec.join_ids for spec in specs)
    assert any(spec.fork_ids for spec in specs)
    assert any(spec.exit_count > 1 for spec in specs)


def test_inline_dag_sweep_pool_matches_serial_bytes():
    """Serial and 2-process sweeps over an inline DAG app are bitwise equal."""
    from repro.experiments.scenario import Scenario
    from repro.experiments.sweep import run_sweep, scenario_cells, summaries_text

    spec = random_dag(23)
    scenarios = [
        Scenario(
            name=f"prop-{policy}-{seed}",
            app={
                "pipeline": spec.name,
                "slo": 0.5,
                "modules": [
                    {
                        "id": m.id, "model": "object_detection",
                        "pres": list(m.pres), "subs": list(m.subs),
                    }
                    for m in spec.modules
                ],
            },
            trace={"name": "tweet", "duration": 6, "base_rate": 25},
            policy=policy,
            seed=seed,
            workers=1,
        )
        for policy in ("PARD", "Clipper++")
        for seed in (0, 1)
    ]
    cells = scenario_cells(scenarios)
    serial = run_sweep(cells, workers=1, cache_dir=None)
    assert all(r.ok for r in serial), [r.error for r in serial if not r.ok]
    parallel = run_sweep(cells, workers=2, cache_dir=None)
    assert summaries_text(parallel) == summaries_text(serial)
