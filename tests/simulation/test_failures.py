"""Tests for worker failure injection."""

from __future__ import annotations

import pytest

from repro.policies.naive import NaivePolicy
from repro.policies.nexus import NexusPolicy
from repro.simulation.failures import FailureEvent, FailureInjector
from repro.simulation.request import RequestStatus
from repro.workload.generators import constant_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app


def run_with_failures(policy, events, rate=40.0, duration=10.0, workers=2):
    app = tiny_chain_app(n=2, slo=0.4)
    cluster = make_cluster(policy, app=app, workers=workers,
                           batch_plan={"m1": 4, "m2": 4})
    injector = FailureInjector(cluster, events=events)
    injector.schedule_all()
    replay(constant_trace(rate, duration), cluster)
    return cluster, injector


class TestFailureEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(time=1.0, module_id="m1", workers=0)
        with pytest.raises(ValueError):
            FailureEvent(time=1.0, module_id="m1", downtime=0.0)


class TestInjection:
    def test_capacity_drops_then_recovers(self):
        cluster, injector = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=3.0, module_id="m1", workers=1, downtime=2.0)],
        )
        assert cluster.modules["m1"].n_workers == 2  # recovered
        assert len(injector.log) == 2
        assert "fail" in injector.log[0]
        assert "recover" in injector.log[1]

    def test_no_requests_lost(self):
        cluster, _ = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=3.0, module_id="m1", workers=1, downtime=2.0)],
        )
        assert len(cluster.metrics.records) == 400
        assert all(
            r.status in (RequestStatus.COMPLETED, RequestStatus.DROPPED)
            for r in cluster.metrics.records
        )

    def test_total_module_outage_orphans_then_replays(self):
        cluster, injector = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=3.0, module_id="m2", workers=2, downtime=1.0)],
            rate=20.0,
        )
        assert len(cluster.metrics.records) == 200
        # Requests sent into the outage window still finished eventually.
        in_window = [
            r for r in cluster.metrics.records if 3.0 <= r.sent_at < 4.0
        ]
        assert in_window
        assert all(
            r.status is RequestStatus.COMPLETED for r in in_window
        )

    def test_stranded_requests_redispatched_to_survivor(self):
        """A killed worker's queued/forming/executing requests must move to
        the surviving worker, not vanish."""
        app = tiny_chain_app(n=2, slo=0.4)
        cluster = make_cluster(NaivePolicy(), app=app, workers=2,
                               batch_plan={"m1": 4, "m2": 4})
        injector = FailureInjector(
            cluster,
            events=[FailureEvent(time=3.0, module_id="m1", workers=1,
                                 downtime=2.0)],
        )
        injector.schedule_all()
        probe: dict[str, int] = {}

        def before() -> None:
            m = cluster.modules["m1"]
            # The injector kills via workers.pop() — the last worker.
            probe["doomed_load"] = m.workers[-1].load
            probe["survivor_load"] = m.workers[0].load

        def after() -> None:
            m = cluster.modules["m1"]
            probe["workers_after"] = m.n_workers
            probe["survivor_after"] = m.workers[0].load

        cluster.sim.schedule(2.9995, before)
        cluster.sim.schedule(3.0005, after)
        replay(constant_trace(150.0, 8.0), cluster)
        assert probe["workers_after"] == 1
        assert probe["doomed_load"] > 0
        # The survivor absorbed the stranded work (nothing was lost; at
        # most one already-executing batch could complete in the 1 ms gap).
        assert probe["survivor_after"] >= probe["doomed_load"]
        # ... and every stranded request still finished by the end.
        assert all(
            r.status is RequestStatus.COMPLETED
            for r in cluster.metrics.records
        )

    def test_failure_causes_slo_violations_without_dropping(self):
        cluster, _ = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=2.0, module_id="m1", workers=1, downtime=4.0)],
            rate=150.0,
        )
        violations = [r for r in cluster.metrics.records if not r.met_slo]
        assert violations  # the outage backlog blows SLOs under Naive

    def test_dropping_policy_limits_failure_damage(self):
        """The paper's §2 motivation: with dropping, the failure backlog is
        shed instead of poisoning every subsequent request."""
        events = [FailureEvent(time=2.0, module_id="m1", workers=1,
                               downtime=4.0)]
        naive, _ = run_with_failures(NaivePolicy(), list(events), rate=150.0)
        nexus, _ = run_with_failures(NexusPolicy(), list(events), rate=150.0)
        good_naive = sum(1 for r in naive.metrics.records
                         if r.met_slo and r.sent_at > 6.0)
        good_nexus = sum(1 for r in nexus.metrics.records
                         if r.met_slo and r.sent_at > 6.0)
        assert good_nexus >= good_naive
