"""Tests for fault injection: worker kills, degraded workers, link cuts."""

from __future__ import annotations

import pytest

from repro.policies.naive import NaivePolicy
from repro.policies.nexus import NexusPolicy
from repro.simulation.failures import (
    FailureEvent,
    FailureInjector,
    FaultRecord,
)
from repro.simulation.request import RequestStatus
from repro.workload.generators import constant_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app, tiny_dag_app


def run_with_failures(policy, events, rate=40.0, duration=10.0, workers=2):
    app = tiny_chain_app(n=2, slo=0.4)
    cluster = make_cluster(policy, app=app, workers=workers,
                           batch_plan={"m1": 4, "m2": 4})
    injector = FailureInjector(cluster, events=events)
    injector.schedule_all()
    replay(constant_trace(rate, duration), cluster)
    return cluster, injector


class TestFailureEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(time=1.0, module_id="m1", workers=0)
        with pytest.raises(ValueError):
            FailureEvent(time=1.0, module_id="m1", downtime=0.0)

    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FailureEvent(time=1.0, module_id="m1", kind="meteor")
        with pytest.raises(ValueError, match="link fault needs a dst"):
            FailureEvent(time=1.0, module_id="m1", kind="link")
        with pytest.raises(ValueError, match="dst only applies"):
            FailureEvent(time=1.0, module_id="m1", dst="m2")
        with pytest.raises(ValueError, match="degrade factor"):
            FailureEvent(time=1.0, module_id="m1", kind="degrade",
                         factor=1.0)

    def test_legacy_kill_serializes_without_new_keys(self):
        """Pre-existing scenarios must keep their serialized form (and
        therefore their cache fingerprints) byte for byte."""
        event = FailureEvent(time=3.0, module_id="m1", workers=1,
                             downtime=2.0)
        assert event.to_dict() == {
            "time": 3.0, "module_id": "m1", "workers": 1, "downtime": 2.0,
        }

    def test_new_kinds_round_trip(self):
        for event in (
            FailureEvent(time=1.0, module_id="m1", kind="link", dst="m2",
                         downtime=0.5),
            FailureEvent(time=1.0, module_id="m1", kind="degrade",
                         factor=3.0, downtime=0.5),
        ):
            assert FailureEvent.from_dict(event.to_dict()) == event

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown failure-event keys"):
            FailureEvent.from_dict({"time": 1.0, "module_id": "m1",
                                    "blast_radius": 3})


class TestFaultRecords:
    def test_kill_records_render_the_legacy_log(self):
        cluster, injector = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=3.0, module_id="m1", workers=1, downtime=2.0)],
        )
        assert [type(r) for r in injector.records] == [FaultRecord] * 2
        assert injector.log == [
            "t=3.00s fail m1 -1 worker(s)",
            "t=5.00s recover m1 +1 worker(s)",
        ]

    def test_records_export_as_plain_data(self):
        record = FaultRecord(time=2.0, kind="degrade", target="m1",
                             count=1, factor=2.5)
        assert record.to_dict() == {
            "time": 2.0, "kind": "degrade", "target": "m1", "count": 1,
            "factor": 2.5,
        }
        assert FaultRecord(time=1.0, kind="cut", target="m1->m2",
                           count=0).to_dict() == {
            "time": 1.0, "kind": "cut", "target": "m1->m2", "count": 0,
        }


class TestInjection:
    def test_capacity_drops_then_recovers(self):
        cluster, injector = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=3.0, module_id="m1", workers=1, downtime=2.0)],
        )
        assert cluster.modules["m1"].n_workers == 2  # recovered
        assert len(injector.log) == 2
        assert "fail" in injector.log[0]
        assert "recover" in injector.log[1]

    def test_no_requests_lost(self):
        cluster, _ = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=3.0, module_id="m1", workers=1, downtime=2.0)],
        )
        assert len(cluster.metrics.records) == 400
        assert all(
            r.status in (RequestStatus.COMPLETED, RequestStatus.DROPPED)
            for r in cluster.metrics.records
        )

    def test_total_module_outage_orphans_then_replays(self):
        cluster, injector = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=3.0, module_id="m2", workers=2, downtime=1.0)],
            rate=20.0,
        )
        assert len(cluster.metrics.records) == 200
        # Requests sent into the outage window still finished eventually.
        in_window = [
            r for r in cluster.metrics.records if 3.0 <= r.sent_at < 4.0
        ]
        assert in_window
        assert all(
            r.status is RequestStatus.COMPLETED for r in in_window
        )

    def test_stranded_requests_redispatched_to_survivor(self):
        """A killed worker's queued/forming/executing requests must move to
        the surviving worker, not vanish."""
        app = tiny_chain_app(n=2, slo=0.4)
        cluster = make_cluster(NaivePolicy(), app=app, workers=2,
                               batch_plan={"m1": 4, "m2": 4})
        injector = FailureInjector(
            cluster,
            events=[FailureEvent(time=3.0, module_id="m1", workers=1,
                                 downtime=2.0)],
        )
        injector.schedule_all()
        probe: dict[str, int] = {}

        def before() -> None:
            m = cluster.modules["m1"]
            # The injector kills via workers.pop() — the last worker.
            probe["doomed_load"] = m.workers[-1].load
            probe["survivor_load"] = m.workers[0].load

        def after() -> None:
            m = cluster.modules["m1"]
            probe["workers_after"] = m.n_workers
            probe["survivor_after"] = m.workers[0].load

        cluster.sim.schedule(2.9995, before)
        cluster.sim.schedule(3.0005, after)
        replay(constant_trace(150.0, 8.0), cluster)
        assert probe["workers_after"] == 1
        assert probe["doomed_load"] > 0
        # The survivor absorbed the stranded work (nothing was lost; at
        # most one already-executing batch could complete in the 1 ms gap).
        assert probe["survivor_after"] >= probe["doomed_load"]
        # ... and every stranded request still finished by the end.
        assert all(
            r.status is RequestStatus.COMPLETED
            for r in cluster.metrics.records
        )

    def test_failure_causes_slo_violations_without_dropping(self):
        cluster, _ = run_with_failures(
            NaivePolicy(),
            [FailureEvent(time=2.0, module_id="m1", workers=1, downtime=4.0)],
            rate=150.0,
        )
        violations = [r for r in cluster.metrics.records if not r.met_slo]
        assert violations  # the outage backlog blows SLOs under Naive

    def test_dropping_policy_limits_failure_damage(self):
        """The paper's §2 motivation: with dropping, the failure backlog is
        shed instead of poisoning every subsequent request."""
        events = [FailureEvent(time=2.0, module_id="m1", workers=1,
                               downtime=4.0)]
        naive, _ = run_with_failures(NaivePolicy(), list(events), rate=150.0)
        nexus, _ = run_with_failures(NexusPolicy(), list(events), rate=150.0)
        good_naive = sum(1 for r in naive.metrics.records
                         if r.met_slo and r.sent_at > 6.0)
        good_nexus = sum(1 for r in nexus.metrics.records
                         if r.met_slo and r.sent_at > 6.0)
        assert good_nexus >= good_naive


class TestLastWorkerKill:
    def test_killing_the_only_worker_parks_then_replays(self):
        """A single-worker module may lose its last machine: arrivals
        park at the module and replay on recovery — nothing is lost."""
        app = tiny_chain_app(n=2, slo=0.4)
        cluster = make_cluster(NaivePolicy(), app=app, workers=1,
                               batch_plan={"m1": 4, "m2": 4})
        injector = FailureInjector(
            cluster,
            events=[FailureEvent(time=1.0, module_id="m1", workers=1,
                                 downtime=1.0)],
        )
        injector.schedule_all()
        probe: dict[str, int] = {}

        def during() -> None:
            m = cluster.modules["m1"]
            probe["workers"] = m.n_workers
            probe["parked"] = len(m._parked)

        cluster.sim.schedule(1.5, during)
        replay(constant_trace(20.0, 3.0), cluster)
        assert probe["workers"] == 0
        assert probe["parked"] > 0  # outage arrivals parked, not dropped
        assert cluster.modules["m1"].n_workers == 1  # recovered
        assert len(cluster.metrics.records) == 60
        assert all(
            r.status is RequestStatus.COMPLETED
            for r in cluster.metrics.records
        )
        assert injector.log == [
            "t=1.00s fail m1 -1 worker(s)",
            "t=2.00s recover m1 +1 worker(s)",
        ]


class TestDegrade:
    def run_once(self, events, rate=20.0, duration=5.0):
        app = tiny_chain_app(n=2, slo=0.4)
        cluster = make_cluster(NaivePolicy(), app=app, workers=1,
                               batch_plan={"m1": 4, "m2": 4})
        injector = FailureInjector(cluster, events=events)
        injector.schedule_all()
        replay(constant_trace(rate, duration), cluster)
        return cluster, injector

    def test_degrade_inflates_service_then_restores_exactly(self):
        events = [FailureEvent(time=1.0, module_id="m1", kind="degrade",
                               factor=4.0, downtime=2.0)]
        clean, _ = self.run_once([])
        slow, injector = self.run_once(events)
        lat_clean = {r.sent_at: r.latency for r in clean.metrics.records}
        lat_slow = {r.sent_at: r.latency for r in slow.metrics.records}
        in_window = [t for t in lat_clean if 1.0 <= t < 2.5]
        after = [t for t in lat_clean if t >= 3.5]
        assert in_window and after
        # The straggler window is strictly slower than the clean run ...
        assert all(lat_slow[t] > lat_clean[t] for t in in_window)
        # ... and the restore is exact: late requests match bitwise.
        assert all(lat_slow[t] == lat_clean[t] for t in after)
        worker = slow.modules["m1"].workers[0]
        assert worker.degrade_factor == 1.0
        assert injector.log == [
            "t=1.00s degrade m1 x4 1 worker(s)",
            "t=3.00s restore m1 1 worker(s)",
        ]

    def test_no_request_is_lost_to_a_straggler(self):
        cluster, _ = self.run_once(
            [FailureEvent(time=1.0, module_id="m1", kind="degrade",
                          factor=3.0, downtime=2.0)],
        )
        assert len(cluster.metrics.records) == 100
        assert all(
            r.status is RequestStatus.COMPLETED
            for r in cluster.metrics.records
        )


class TestLinkFaults:
    DAG_PLAN = {"m1": 4, "m2": 4, "m3": 4, "m4": 4}

    def dag_cluster(self):
        return make_cluster(NaivePolicy(), app=tiny_dag_app(), workers=1,
                            batch_plan=self.DAG_PLAN)

    def test_cut_chain_edge_parks_handoffs_until_heal(self):
        app = tiny_chain_app(n=2, slo=0.4)
        cluster = make_cluster(NaivePolicy(), app=app, workers=1,
                               batch_plan={"m1": 4, "m2": 4})
        injector = FailureInjector(
            cluster,
            events=[FailureEvent(time=1.0, module_id="m1", kind="link",
                                 dst="m2", downtime=1.0)],
        )
        injector.schedule_all()
        replay(constant_trace(20.0, 3.0), cluster)
        assert len(cluster.metrics.records) == 60
        assert all(
            r.status is RequestStatus.COMPLETED
            for r in cluster.metrics.records
        )
        heal = injector.records[-1]
        assert heal.kind == "heal" and heal.target == "m1->m2"
        assert heal.count > 0  # partition-window handoffs replayed late
        # Requests sent into the partition finish after the heal.
        in_window = [
            r for r in cluster.metrics.records if 1.0 <= r.sent_at < 1.9
        ]
        assert in_window
        assert all(r.finished_at >= 2.0 for r in in_window)
        assert cluster._severed is None  # fast path restored

    def test_partitioned_join_branch_delays_but_never_deadlocks(self):
        cluster = self.dag_cluster()
        injector = FailureInjector(
            cluster,
            events=[FailureEvent(time=1.0, module_id="m1", kind="link",
                                 dst="m2", downtime=1.0)],
        )
        injector.schedule_all()
        replay(constant_trace(20.0, 3.0), cluster)
        assert len(cluster.metrics.records) == 60
        assert all(
            r.status is RequestStatus.COMPLETED
            for r in cluster.metrics.records
        )
        assert not cluster._join_arrived
        assert not cluster._join_expected
        assert injector.records[-1].count > 0

    def test_overlapping_cuts_heal_once_at_the_last(self):
        cluster = self.dag_cluster()
        injector = FailureInjector(
            cluster,
            events=[
                FailureEvent(time=1.0, module_id="m1", kind="link",
                             dst="m2", downtime=2.0),
                FailureEvent(time=1.5, module_id="m1", kind="link",
                             dst="m2", downtime=0.5),
            ],
        )
        injector.schedule_all()
        replay(constant_trace(20.0, 4.0), cluster)
        kinds = [(r.kind, r.count) for r in injector.records]
        assert kinds[:2] == [("cut", 0), ("cut", 0)]
        # The inner heal (t=2.0) releases nothing; the outer one replays.
        assert kinds[2] == ("heal", 0)
        assert kinds[3][0] == "heal" and kinds[3][1] > 0
        assert all(
            r.status is RequestStatus.COMPLETED
            for r in cluster.metrics.records
        )
        assert cluster._severed is None

    def test_parked_token_of_a_terminal_request_evaporates(self):
        """A request dropped while one of its handoffs is parked must not
        be replayed by the heal — its token state is already reclaimed."""
        from repro.simulation.request import DropReason

        cluster = self.dag_cluster()
        injector = FailureInjector(
            cluster,
            events=[FailureEvent(time=0.0, module_id="m1", kind="link",
                                 dst="m2", downtime=1.0)],
        )
        injector.schedule_all()
        cluster.submit_at(0.01)

        def drop_parked() -> None:
            parked = cluster._severed[("m1", "m2")]
            assert parked  # the m1 -> m2 handoff is waiting on the link
            cluster.drop(parked[0], "m2", DropReason.ADMISSION_CONTROL)

        cluster.sim.schedule(0.5, drop_parked)
        cluster.sim.run()
        heal = injector.records[-1]
        assert heal.kind == "heal" and heal.count == 0
        records = cluster.metrics.records
        assert len(records) == 1
        assert records[0].status is RequestStatus.DROPPED
        assert cluster._severed is None
        assert not cluster._join_arrived
        assert not cluster._join_expected
        assert not cluster._exit_expected
