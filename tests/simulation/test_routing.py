"""Tests for DAG path routing (static, probabilistic, result-dependent)."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.policies.naive import NaivePolicy
from repro.simulation.cluster import Cluster
from repro.simulation.engine import Simulator
from repro.simulation.request import RequestStatus
from repro.simulation.rng import RngStreams
from repro.simulation.routing import (
    PathRouter,
    ProbabilisticRouter,
    ResultDependentRouter,
)

from ..conftest import tiny_dag_app, tiny_registry


def dag_cluster(router: PathRouter | None = None, hop_delay: float = 0.0):
    return Cluster(
        sim=Simulator(),
        app=tiny_dag_app(slo=5.0),
        policy=NaivePolicy(),
        workers=1,
        registry=tiny_registry(),
        metrics=MetricsCollector(),
        rng=RngStreams(seed=0),
        router=router,
        hop_delay=hop_delay,
    )


class TestStaticRouting:
    def test_default_fans_out_to_all(self):
        cluster = dag_cluster()
        cluster.submit_at(0.0)
        cluster.sim.run()
        rec = cluster.metrics.records[0]
        assert {v.module_id for v in rec.visits} == {"m1", "m2", "m3", "m4"}


class TestProbabilisticRouting:
    def test_exactly_one_branch_taken(self):
        cluster = dag_cluster(router=ProbabilisticRouter(seed=1))
        for i in range(40):
            cluster.submit_at(0.05 * i)
        cluster.sim.run()
        for rec in cluster.metrics.records:
            mods = {v.module_id for v in rec.visits}
            assert rec.status is RequestStatus.COMPLETED
            # m1 and m4 always; exactly one of m2/m3.
            assert "m1" in mods and "m4" in mods
            assert len(mods & {"m2", "m3"}) == 1

    def test_weights_bias_branch_choice(self):
        cluster = dag_cluster(
            router=ProbabilisticRouter(weights={"m2": 9.0, "m3": 1.0}, seed=2)
        )
        for i in range(100):
            cluster.submit_at(0.05 * i)
        cluster.sim.run()
        took_m2 = sum(
            1 for r in cluster.metrics.records
            if any(v.module_id == "m2" for v in r.visits)
        )
        assert took_m2 > 70

    def test_join_does_not_deadlock_on_single_branch(self):
        """With one branch chosen, the join (in-degree 2) must fire after a
        single arrival — the dynamic-path join accounting."""
        cluster = dag_cluster(router=ProbabilisticRouter(seed=3))
        cluster.submit_at(0.0)
        cluster.sim.run()
        rec = cluster.metrics.records[0]
        assert rec.status is RequestStatus.COMPLETED
        assert any(v.module_id == "m4" for v in rec.visits)

    def test_bad_weights_rejected(self):
        router = ProbabilisticRouter(weights={"m2": 0.0, "m3": 0.0})
        cluster = dag_cluster(router=router)
        cluster.submit_at(0.0)
        with pytest.raises(ValueError, match="positive"):
            cluster.sim.run()


class TestResultDependentRouting:
    def test_chooser_controls_path(self):
        router = ResultDependentRouter(
            lambda request, subs: ("m2",) if request.rid % 2 == 0 else ("m3",)
        )
        cluster = dag_cluster(router=router)
        reqs = [cluster.submit_at(0.05 * i) for i in range(10)]
        cluster.sim.run()
        for req in reqs:
            expected = "m2" if req.rid % 2 == 0 else "m3"
            assert expected in req.visits

    def test_empty_choice_rejected(self):
        router = ResultDependentRouter(lambda request, subs: ())
        cluster = dag_cluster(router=router)
        cluster.submit_at(0.0)
        with pytest.raises(ValueError, match="at least one"):
            cluster.sim.run()

    def test_unknown_choice_rejected(self):
        router = ResultDependentRouter(lambda request, subs: ("ghost",))
        cluster = dag_cluster(router=router)
        cluster.submit_at(0.0)
        with pytest.raises(ValueError, match="non-successor"):
            cluster.sim.run()


class TestHopDelay:
    def test_network_delay_adds_to_latency(self):
        fast = dag_cluster(hop_delay=0.0)
        slow = dag_cluster(hop_delay=0.010)
        fast.submit_at(0.0)
        slow.submit_at(0.0)
        fast.sim.run()
        slow.sim.run()
        lf = fast.metrics.records[0].latency
        ls = slow.metrics.records[0].latency
        # Path m1 -> branch -> m4 has 2 forwarding hops.
        assert ls == pytest.approx(lf + 2 * 0.010, abs=1e-6)

    def test_negative_hop_delay_rejected(self):
        with pytest.raises(ValueError):
            dag_cluster(hop_delay=-0.001)


class TestDynamicPathDropBehaviour:
    def test_paper_observation_dynamic_paths_raise_pard_drop_rate(self):
        """§5.2: with request-specific dynamic paths PARD's estimates grow
        conservative (max over all static paths), nudging the drop rate up
        relative to the static DAG."""
        from repro.experiments import standard_config, run_experiment
        from repro.core.policy import PardPolicy

        config = standard_config("da", "tweet", duration=30.0, seed=2,
                                 scaling=False)
        static = run_experiment(config, PardPolicy(samples=1000, seed=2))
        # Same workload, dynamic router.
        from repro.experiments.runner import build_cluster
        from repro.workload.replay import replay

        trace = config.resolve_trace()
        cluster = build_cluster(config, PardPolicy(samples=1000, seed=2), trace)
        cluster.router = ProbabilisticRouter(seed=2)
        replay(trace, cluster)
        from repro.metrics import summarize

        dynamic = summarize(cluster.metrics, duration=trace.duration)
        # Dynamic paths lighten the actual load (one branch instead of
        # two) yet the estimator still assumes the worst path, so the drop
        # rate must stay within a modest factor of the static run rather
        # than collapse to zero mis-estimates.
        assert dynamic.drop_rate >= 0.0
        assert dynamic.goodput > 0.5 * static.summary.goodput