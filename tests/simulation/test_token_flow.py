"""Token-flow join accounting: regression tests for re-merging DAGs.

Path-counting join accounting (count the joins each chosen branch reaches,
require ``1 + sum(counts - 1)`` arrivals) is wrong on any DAG where flow
re-merges before a later join: a token that merges at an intermediate join
is *one* token afterwards, no matter how many paths fed the merge.  The
canonical failure is the diamond-of-diamonds, which deadlocked under the
old accounting (the final join waited for 3 tokens but only 2 exist).
These tests pin the token-flow semantics: demand = predecessors that will
actually execute, composed at runtime from the spec's precomputed kill
plans (see :mod:`repro.pipeline.spec`).
"""

from __future__ import annotations

import pytest

from repro.core.policy import BudgetMode, PardPolicy
from repro.metrics.collector import MetricsCollector
from repro.pipeline.applications import Application
from repro.pipeline.spec import ModuleSpec, PipelineSpec
from repro.policies.clipper import ClipperPlusPlusPolicy
from repro.policies.naive import NaivePolicy
from repro.simulation.engine import Simulator
from repro.simulation.request import RequestStatus
from repro.simulation.rng import RngStreams
from repro.simulation.routing import ProbabilisticRouter, ResultDependentRouter
from repro.simulation.tenancy import SharedCluster, Tenant

from ..conftest import make_cluster, tiny_dag_app, tiny_registry


def diamond_of_diamonds() -> PipelineSpec:
    """m1 -> {a, b} -> j1 -> {c, d} -> j2: two diamonds in sequence.

    Path-counting saw two joins downstream of each m1 branch and demanded
    three tokens at j2; only two can ever arrive, so the request hung.
    Token flow: j1 merges back into one token, j2's demand is its
    in-degree (2).
    """
    return PipelineSpec(
        name="diamond-of-diamonds",
        modules=[
            ModuleSpec("m1", "alpha", subs=("a", "b")),
            ModuleSpec("a", "beta", pres=("m1",), subs=("j1",)),
            ModuleSpec("b", "gamma", pres=("m1",), subs=("j1",)),
            ModuleSpec("j1", "beta", pres=("a", "b"), subs=("c", "d")),
            ModuleSpec("c", "gamma", pres=("j1",), subs=("j2",)),
            ModuleSpec("d", "alpha", pres=("j1",), subs=("j2",)),
            ModuleSpec("j2", "beta", pres=("c", "d")),
        ],
    )


class TestDiamondOfDiamonds:
    def test_completes_with_each_join_firing_once(self):
        cluster = make_cluster(
            NaivePolicy(), app=Application(spec=diamond_of_diamonds(), slo=5.0)
        )
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        assert request.status is RequestStatus.COMPLETED
        # begin_visit raises on a second arrival, so presence in visits
        # proves each join fired exactly once.
        assert set(request.visits) == {"m1", "a", "b", "j1", "c", "d", "j2"}
        # j1 fired only after both inner branches, j2 after both outer.
        assert request.visit("j1").t_received == pytest.approx(
            max(request.visit("a").t_exec_end, request.visit("b").t_exec_end)
        )
        assert request.visit("j2").t_received == pytest.approx(
            max(request.visit("c").t_exec_end, request.visit("d").t_exec_end)
        )
        # No token state leaks once the request completed.
        assert not cluster._join_arrived
        assert not cluster._join_expected
        assert not cluster._exit_expected

    def test_many_requests_all_accounted(self):
        cluster = make_cluster(
            NaivePolicy(), app=Application(spec=diamond_of_diamonds(), slo=5.0)
        )
        for i in range(25):
            cluster.submit_at(0.003 * i)
        cluster.sim.run()
        records = cluster.metrics.records
        assert len(records) == 25
        assert all(r.status is RequestStatus.COMPLETED for r in records)

    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: PardPolicy(budget_mode=BudgetMode.SPLIT, samples=50),
            ClipperPlusPlusPolicy,
        ],
        ids=["pard-split", "clipper++"],
    )
    def test_split_budget_policies_complete(self, policy_factory):
        # Split-budget policies key their cumulative tables by hop id on
        # every drop decision — the whole DAG must be covered.
        cluster = make_cluster(
            policy_factory(),
            app=Application(spec=diamond_of_diamonds(), slo=5.0),
        )
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        assert request.status is RequestStatus.COMPLETED
        assert set(request.visits) == {"m1", "a", "b", "j1", "c", "d", "j2"}

    def test_shared_cluster_per_tenant_token_state(self):
        app = Application(spec=diamond_of_diamonds(), slo=5.0)
        shared = SharedCluster(
            sim=Simulator(),
            tenants=[
                Tenant(name="t1", app=app, policy=NaivePolicy()),
                Tenant(name="t2", app=app, policy=NaivePolicy()),
            ],
            workers=1,
            registry=tiny_registry(),
            rng=RngStreams(seed=0),
        )
        r1 = shared.submit_at("t1", 0.0)
        r2 = shared.submit_at("t2", 0.001)
        shared.sim.run()
        for request in (r1, r2):
            assert request.status is RequestStatus.COMPLETED
            # Visits are keyed by shared-pool id; translate them back to
            # the tenant's DAG positions to check every hop ran once.
            view = shared.views[request.app]
            hops = {view._mid_of_pool[pool_id] for pool_id in request.visits}
            assert hops == {"m1", "a", "b", "j1", "c", "d", "j2"}
            assert len(request.visits) == 7
        for view in shared.views.values():
            assert not view._join_arrived
            assert not view._join_expected


class TestDynamicRouting:
    def test_single_branch_choice_lowers_join_demand(self):
        # Router always takes m2; the join's demand drops from 2 to 1 and
        # it fires on m2's token alone, without waiting for dead m3.
        router = ResultDependentRouter(lambda request, subs: (subs[0],))
        cluster = make_cluster(
            NaivePolicy(), app=tiny_dag_app(slo=5.0), router=router
        )
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        assert request.status is RequestStatus.COMPLETED
        assert set(request.visits) == {"m1", "m2", "m4"}
        assert request.visit("m4").t_received == pytest.approx(
            request.visit("m2").t_exec_end
        )

    def test_kill_propagates_through_nested_fork(self):
        # s -> {f1, f2}, f2 -> {g1, g2}, j merges f1/g1/g2.  Choosing f1
        # at s kills the entire nested fork: j's demand drops by two and
        # it fires on f1's token alone.
        spec = PipelineSpec(
            name="nested",
            modules=[
                ModuleSpec("s", "alpha", subs=("f1", "f2")),
                ModuleSpec("f1", "beta", pres=("s",), subs=("j",)),
                ModuleSpec("f2", "gamma", pres=("s",), subs=("g1", "g2")),
                ModuleSpec("g1", "alpha", pres=("f2",), subs=("j",)),
                ModuleSpec("g2", "beta", pres=("f2",), subs=("j",)),
                ModuleSpec("j", "gamma", pres=("f1", "g1", "g2"), subs=("t",)),
                ModuleSpec("t", "alpha", pres=("j",)),
            ],
        )
        router = ResultDependentRouter(
            lambda request, subs: ("f1",) if "f1" in subs else subs
        )
        cluster = make_cluster(
            NaivePolicy(), app=Application(spec=spec, slo=5.0), router=router
        )
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        assert request.status is RequestStatus.COMPLETED
        assert set(request.visits) == {"s", "f1", "j", "t"}

    def test_release_fires_join_whose_token_already_arrived(self):
        # a's token reaches j early and waits for the f -> j edge; when f
        # then routes away from j, the kill must *release* j immediately
        # (expected drops to the tokens already arrived) — deferring would
        # deadlock, since no further token is coming.
        spec = PipelineSpec(
            name="release",
            modules=[
                ModuleSpec("s", "alpha", subs=("a", "b")),
                ModuleSpec("a", "gamma", pres=("s",), subs=("j",)),
                ModuleSpec("b", "alpha", pres=("s",), subs=("f",)),
                ModuleSpec("f", "alpha", pres=("b",), subs=("j", "e")),
                ModuleSpec("e", "gamma", pres=("f",)),
                ModuleSpec("j", "beta", pres=("a", "f")),
            ],
        )
        router = ResultDependentRouter(
            lambda request, subs: ("e",) if "e" in subs else subs
        )
        cluster = make_cluster(
            NaivePolicy(), app=Application(spec=spec, slo=5.0), router=router
        )
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        assert request.status is RequestStatus.COMPLETED
        # Both live exits executed; j fired at the moment of the kill.
        assert set(request.visits) == {"s", "a", "b", "f", "e", "j"}
        assert request.visit("j").t_received == pytest.approx(
            request.visit("f").t_exec_end
        )
        assert not cluster._join_arrived
        assert not cluster._exit_expected

    def test_unchosen_exit_branch_is_retired(self):
        # Choosing x at the fork retires exit y: the request completes on
        # x alone instead of waiting forever for a token y never gets.
        spec = PipelineSpec(
            name="two-exits",
            modules=[
                ModuleSpec("s", "alpha", subs=("x", "y")),
                ModuleSpec("x", "beta", pres=("s",)),
                ModuleSpec("y", "gamma", pres=("s",)),
            ],
        )
        router = ResultDependentRouter(lambda request, subs: ("x",))
        cluster = make_cluster(
            NaivePolicy(), app=Application(spec=spec, slo=5.0), router=router
        )
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        assert request.status is RequestStatus.COMPLETED
        assert set(request.visits) == {"s", "x"}
        assert not cluster._exit_expected

    def test_composed_kills_make_join_dead_and_propagate(self):
        # Two independent forks each kill one in-edge of join x.  Neither
        # plan alone kills x, but composed at runtime its demand reaches
        # zero: x is dead, and its death plan retires the exit behind it.
        spec = PipelineSpec(
            name="composed",
            modules=[
                ModuleSpec("s", "alpha", subs=("p", "q")),
                ModuleSpec("p", "beta", pres=("s",), subs=("p1", "x")),
                ModuleSpec("q", "gamma", pres=("s",), subs=("q1", "x")),
                ModuleSpec("p1", "gamma", pres=("p",)),
                ModuleSpec("q1", "beta", pres=("q",)),
                ModuleSpec("x", "beta", pres=("p", "q"), subs=("z",)),
                ModuleSpec("z", "alpha", pres=("x",)),
            ],
        )
        router = ResultDependentRouter(
            lambda request, subs: (subs[0],) if "x" in subs else subs
        )
        cluster = make_cluster(
            NaivePolicy(), app=Application(spec=spec, slo=5.0), router=router
        )
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        assert request.status is RequestStatus.COMPLETED
        assert set(request.visits) == {"s", "p", "q", "p1", "q1"}
        assert not cluster._join_arrived
        assert not cluster._join_expected
        assert not cluster._exit_expected

    def test_probabilistic_router_every_request_accounted(self):
        cluster = make_cluster(
            NaivePolicy(),
            app=tiny_dag_app(slo=5.0),
            router=ProbabilisticRouter(seed=7),
        )
        for i in range(40):
            cluster.submit_at(0.002 * i)
        cluster.sim.run()
        records = cluster.metrics.records
        assert len(records) == 40
        assert all(r.status is RequestStatus.COMPLETED for r in records)
        assert not cluster._join_arrived
        assert not cluster._join_expected
