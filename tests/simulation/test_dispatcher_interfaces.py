"""Tests for dispatchers and the queue/policy interfaces."""

from __future__ import annotations

import pytest

from repro.interfaces import FifoQueue
from repro.policies.naive import NaivePolicy
from repro.simulation.dispatcher import (
    LeastLoadedDispatcher,
    RoundRobinDispatcher,
)
from repro.simulation.request import Request

from ..conftest import make_cluster, tiny_chain_app


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue()
        reqs = [Request(sent_at=float(i), slo=1.0) for i in range(3)]
        for r in reqs:
            q.push(r, 0.0)
        assert [q.pop(0.0) for _ in range(3)] == reqs

    def test_pop_empty_returns_none(self):
        assert FifoQueue().pop(0.0) is None

    def test_drain(self):
        q = FifoQueue()
        reqs = [Request(sent_at=float(i), slo=1.0) for i in range(5)]
        for r in reqs:
            q.push(r, 0.0)
        assert q.drain(0.0) == reqs
        assert len(q) == 0


class TestDispatchers:
    def workers(self):
        cluster = make_cluster(
            NaivePolicy(), app=tiny_chain_app(n=1, slo=5.0), workers=3
        )
        return cluster.modules["m1"].workers

    def test_least_loaded_prefers_empty_worker(self):
        workers = self.workers()
        # Load worker 0 with queued requests.
        for i in range(3):
            r = Request(sent_at=0.0, slo=5.0)
            workers[0].queue.push(r, 0.0)
        pick = LeastLoadedDispatcher().pick(workers)
        assert pick.worker_id in (1, 2)

    def test_least_loaded_ties_break_by_id(self):
        workers = self.workers()
        assert LeastLoadedDispatcher().pick(workers).worker_id == 0

    def test_round_robin_cycles(self):
        workers = self.workers()
        rr = RoundRobinDispatcher()
        picks = [rr.pick(workers).worker_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_empty_worker_list_rejected(self):
        with pytest.raises(ValueError):
            LeastLoadedDispatcher().pick([])
        with pytest.raises(ValueError):
            RoundRobinDispatcher().pick([])


class TestPolicyDefaults:
    def test_default_queue_is_fifo(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_chain_app(n=1))
        assert isinstance(cluster.modules["m1"].workers[0].queue, FifoQueue)

    def test_default_admission_allows_everything(self):
        policy = NaivePolicy()
        cluster = make_cluster(policy, app=tiny_chain_app(n=1))
        request = Request(sent_at=0.0, slo=1.0)
        assert policy.on_admit(request, cluster.modules["m1"], 0.0) is None

    def test_describe_defaults_to_name(self):
        assert NaivePolicy().describe() == "Naive"
