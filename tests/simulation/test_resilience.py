"""Tests for per-hop resilience: timeout, retry, hedging, fallback.

Every rescue is a duplicate queue entry for the same request; the first
worker to draw one claims the hop and every other entry skips lazily.
The invariant these tests pin: whatever combination of policies fires,
each admitted request still reaches exactly one terminal state and no
module executes twice for one request.
"""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.policies.naive import NaivePolicy
from repro.simulation.cluster import Cluster
from repro.simulation.engine import Simulator
from repro.simulation.request import DropReason, RequestStatus
from repro.simulation.resilience import (
    HopResilience,
    ResilienceManager,
    descendants,
)
from repro.simulation.rng import RngStreams
from repro.simulation.routing import ProbabilisticRouter
from repro.workload.generators import constant_trace
from repro.workload.replay import replay

from ..conftest import tiny_chain_app, tiny_dag_app, tiny_registry


def resilient_cluster(
    resilience: dict,
    app=None,
    workers: int = 1,
    batch_plan: dict[str, int] | None = None,
    router=None,
    seed: int = 0,
) -> Cluster:
    app = app or tiny_chain_app(n=2, slo=0.4)
    return Cluster(
        sim=Simulator(),
        app=app,
        policy=NaivePolicy(),
        workers=workers,
        registry=tiny_registry(),
        batch_plan=batch_plan or {m: 4 for m in app.spec.module_ids},
        metrics=MetricsCollector(),
        rng=RngStreams(seed=seed),
        router=router,
        resilience=resilience,
    )


def assert_exactly_once(cluster: Cluster) -> None:
    records = cluster.metrics.records
    assert len(records) == cluster.metrics.submitted
    rids = [r.rid for r in records]
    assert len(rids) == len(set(rids))
    for record in records:
        assert record.status in (
            RequestStatus.COMPLETED, RequestStatus.DROPPED,
        )
        visited = [v.module_id for v in record.visits]
        assert len(visited) == len(set(visited))
    assert not cluster._join_arrived
    assert not cluster._join_expected
    assert not cluster._exit_expected


class TestHopResilience:
    def test_needs_timeout_or_hedge(self):
        with pytest.raises(ValueError, match="timeout or a hedge"):
            HopResilience()

    def test_validation(self):
        with pytest.raises(ValueError, match="timeout must be > 0"):
            HopResilience(timeout=0.0)
        with pytest.raises(ValueError, match="on_timeout"):
            HopResilience(timeout=0.1, on_timeout="panic")
        with pytest.raises(ValueError, match="retry.max"):
            HopResilience(timeout=0.1, retry_max=-1)
        with pytest.raises(ValueError, match="retry.base"):
            HopResilience(timeout=0.1, backoff_base=0.0)
        with pytest.raises(ValueError, match="jitter"):
            HopResilience(timeout=0.1, backoff_jitter=-0.5)
        with pytest.raises(ValueError, match="hedge delay"):
            HopResilience(hedge=0.0)
        with pytest.raises(ValueError, match="fallback requires a timeout"):
            HopResilience(hedge=0.1, fallback="m3")

    def test_dict_round_trip(self):
        hop = HopResilience(
            timeout=0.25, on_timeout="retry", retry_max=2,
            backoff_base=0.02, backoff_jitter=0.5, hedge=0.1, fallback="m3",
        )
        assert HopResilience.from_dict(hop.to_dict()) == hop

    def test_hedge_only_dict_omits_timeout_keys(self):
        hop = HopResilience(hedge=0.05)
        assert hop.to_dict() == {"hedge": 0.05}
        assert HopResilience.from_dict({"hedge": 0.05}) == hop

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown resilience keys"):
            HopResilience.from_dict({"timeout": 0.1, "retires": 3})
        with pytest.raises(ValueError, match="unknown retry keys"):
            HopResilience.from_dict({"timeout": 0.1, "retry": {"tries": 3}})


class TestManagerValidation:
    def test_unknown_module_rejected(self):
        cluster = resilient_cluster({})
        with pytest.raises(ValueError, match="unknown module"):
            ResilienceManager(cluster, {"nope": HopResilience(timeout=0.1)})

    def test_fallback_to_self_rejected(self):
        cluster = resilient_cluster({}, app=tiny_dag_app())
        with pytest.raises(ValueError, match="fall back to itself"):
            ResilienceManager(
                cluster,
                {"m2": HopResilience(timeout=0.1, fallback="m2")},
            )

    def test_downstream_fallback_rejected(self):
        # m4 is downstream of m2: the flow would route into it again
        # after the substituted hop completes — a guaranteed double
        # visit, so it is rejected statically.
        cluster = resilient_cluster({}, app=tiny_dag_app())
        with pytest.raises(
            ValueError, match="cannot fall back to its downstream"
        ):
            ResilienceManager(
                cluster,
                {"m2": HopResilience(timeout=0.1, fallback="m4")},
            )

    def test_sibling_fallback_accepted(self):
        cluster = resilient_cluster({}, app=tiny_dag_app())
        ResilienceManager(
            cluster, {"m2": HopResilience(timeout=0.1, fallback="m3")}
        )

    def test_descendants(self):
        spec = tiny_dag_app().spec
        assert descendants(spec, "m1") == {"m2", "m3", "m4"}
        assert descendants(spec, "m2") == {"m4"}
        assert descendants(spec, "m4") == set()


class TestFastPath:
    def test_no_resilience_leaves_hooks_disarmed(self):
        cluster = resilient_cluster({})
        assert cluster.resilience is None
        for module in cluster.modules.values():
            assert module._resilience is None

    def test_resilient_modules_only_arm_their_own_hook(self):
        cluster = resilient_cluster({"m1": {"timeout": 0.1}})
        assert cluster.modules["m1"]._resilience is not None
        assert cluster.modules["m2"]._resilience is None


class TestTimeoutRetry:
    def overloaded(self, resilience, **kwargs):
        cluster = resilient_cluster(resilience, **kwargs)
        replay(constant_trace(250.0, 3.0), cluster)
        return cluster

    def test_retries_fire_under_queueing(self):
        cluster = self.overloaded(
            {"m1": {"timeout": 0.1, "retry": {"max": 2, "base": 0.02}}}
        )
        assert cluster.metrics.res_timeouts > 0
        assert cluster.metrics.res_retries > 0
        assert_exactly_once(cluster)

    def test_exhausted_retries_drop_with_timeout_reason(self):
        cluster = self.overloaded(
            {"m1": {"timeout": 0.1, "retry": {"max": 0, "base": 0.02}}}
        )
        dropped = [
            r for r in cluster.metrics.records
            if r.status is RequestStatus.DROPPED
        ]
        assert dropped
        assert all(r.drop_reason is DropReason.TIMEOUT for r in dropped)
        assert all(r.dropped_at_module == "m1" for r in dropped)
        assert cluster.metrics.res_retries == 0
        assert_exactly_once(cluster)

    def test_on_timeout_drop_never_duplicates(self):
        cluster = self.overloaded(
            {"m1": {"timeout": 0.1, "on_timeout": "drop"}}
        )
        assert cluster.metrics.res_timeouts > 0
        assert cluster.metrics.res_retries == 0
        assert any(
            r.drop_reason is DropReason.TIMEOUT
            for r in cluster.metrics.records
        )
        assert_exactly_once(cluster)

    def test_identical_runs_are_deterministic(self):
        def signature():
            cluster = self.overloaded(
                {"m1": {"timeout": 0.1,
                        "retry": {"max": 2, "base": 0.02, "jitter": 0.5}}}
            )
            # rids are process-global, so compare everything but them.
            return [
                (r.sent_at, r.status, r.finished_at, r.drop_reason)
                for r in cluster.metrics.records
            ]

        assert signature() == signature()

    def test_fault_free_run_keeps_counters_zero(self):
        cluster = resilient_cluster(
            {"m1": {"timeout": 5.0, "retry": {"max": 1, "base": 0.02}}}
        )
        replay(constant_trace(20.0, 2.0), cluster)
        assert cluster.metrics.res_timeouts == 0
        assert cluster.metrics.res_retries == 0
        assert all(
            r.status is RequestStatus.COMPLETED
            for r in cluster.metrics.records
        )


class TestHedge:
    def test_hedges_fire_and_requests_complete_once(self):
        cluster = resilient_cluster(
            {"m1": {"hedge": 0.05}}, workers=2,
        )
        replay(constant_trace(400.0, 3.0), cluster)
        assert cluster.metrics.res_hedges > 0
        assert_exactly_once(cluster)

    def test_single_worker_module_never_hedges(self):
        cluster = resilient_cluster({"m1": {"hedge": 0.05}}, workers=1)
        replay(constant_trace(400.0, 3.0), cluster)
        assert cluster.metrics.res_hedges == 0
        assert_exactly_once(cluster)


class TestFallback:
    def dag_cluster(self, resilience):
        # Route (almost) everything down the m2 branch; m3 is the
        # router-skipped sibling that serves as the degraded standby.
        return resilient_cluster(
            resilience,
            app=tiny_dag_app(),
            batch_plan={"m1": 8, "m2": 1, "m3": 8, "m4": 8},
            router=ProbabilisticRouter(
                weights={"m2": 1000.0, "m3": 0.001}, seed=0,
            ),
        )

    def test_fallback_executes_on_sibling_branch(self):
        cluster = self.dag_cluster(
            {"m2": {"timeout": 0.08, "retry": {"max": 0, "base": 0.02},
                    "fallback": "m3"}}
        )
        replay(constant_trace(150.0, 3.0), cluster)
        assert cluster.metrics.res_fallbacks > 0
        # The origin hop never executes for a rescued request, so its
        # record shows the sibling in the origin's place; the router all
        # but never picks m3 itself, so m3 visits are the rescues.
        rescued = [
            r for r in cluster.metrics.records
            if r.status is RequestStatus.COMPLETED
            and "m3" in {v.module_id for v in r.visits}
        ]
        assert len(rescued) == cluster.metrics.res_fallbacks
        assert_exactly_once(cluster)

    def test_fallback_state_is_reclaimed(self):
        cluster = self.dag_cluster(
            {"m2": {"timeout": 0.08, "retry": {"max": 0, "base": 0.02},
                    "fallback": "m3"}}
        )
        replay(constant_trace(150.0, 3.0), cluster)
        assert not cluster._fallback_origin
