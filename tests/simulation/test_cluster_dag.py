"""Tests for cluster routing: chains, DAG fork/join, sibling invalidation."""

from __future__ import annotations

import pytest

from repro.interfaces import DropContext, DropPolicy
from repro.policies.naive import NaivePolicy
from repro.simulation.request import DropReason, RequestStatus

from ..conftest import make_cluster, tiny_chain_app, tiny_dag_app


class DropAtModule(DropPolicy):
    """Test policy: drop every request drawn at one specific module."""

    name = "drop-at"

    def __init__(self, module_id: str) -> None:
        super().__init__()
        self.module_id = module_id

    def should_drop(self, ctx: DropContext) -> DropReason | None:
        if ctx.module.spec.id == self.module_id:
            return DropReason.ESTIMATED_VIOLATION
        return None


class TestChainRouting:
    def test_request_visits_every_module_in_order(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_chain_app(n=3, slo=5.0))
        cluster.submit_at(0.0)
        cluster.sim.run()
        rec = cluster.metrics.records[0]
        assert [v.module_id for v in rec.visits] == ["m1", "m2", "m3"]
        starts = [v.queueing_delay for v in rec.visits]
        assert all(s >= 0 for s in starts)

    def test_completion_time_is_last_module_end(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_chain_app(n=2, slo=5.0))
        cluster.submit_at(0.0)
        cluster.sim.run()
        rec = cluster.metrics.records[0]
        assert rec.status is RequestStatus.COMPLETED
        # d_alpha(1) + d_beta(1) = 0.025 + 0.019.
        assert rec.latency == pytest.approx(0.044)

    def test_drop_stops_forwarding(self):
        cluster = make_cluster(
            DropAtModule("m2"), app=tiny_chain_app(n=3, slo=5.0)
        )
        cluster.submit_at(0.0)
        cluster.sim.run()
        rec = cluster.metrics.records[0]
        assert rec.status is RequestStatus.DROPPED
        assert rec.dropped_at_module == "m2"
        # m1 executed, m2/m3 did not.
        executed = {v.module_id for v in rec.visits}
        assert executed == {"m1"}


class TestDagRouting:
    def test_fork_executes_both_branches(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_dag_app(slo=5.0))
        cluster.submit_at(0.0)
        cluster.sim.run()
        rec = cluster.metrics.records[0]
        assert rec.status is RequestStatus.COMPLETED
        assert {v.module_id for v in rec.visits} == {"m1", "m2", "m3", "m4"}

    def test_join_waits_for_slower_branch(self):
        cluster = make_cluster(NaivePolicy(), app=tiny_dag_app(slo=5.0))
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        v2 = request.visit("m2")
        v3 = request.visit("m3")
        v4 = request.visit("m4")
        assert v4.t_received == pytest.approx(
            max(v2.t_exec_end, v3.t_exec_end)
        )

    def test_branch_drop_invalidates_sibling(self):
        """A drop on one branch cancels the request; the sibling branch's
        executed work is attributed (and will count as invalid)."""
        cluster = make_cluster(DropAtModule("m2"), app=tiny_dag_app(slo=5.0))
        cluster.submit_at(0.0)
        cluster.sim.run()
        rec = cluster.metrics.records[0]
        assert rec.status is RequestStatus.DROPPED
        assert rec.dropped_at_module == "m2"
        # The join module never ran.
        assert "m4" not in {v.module_id for v in rec.visits}
        # GPU time includes m1 (and possibly the sibling m3), all wasted.
        assert rec.gpu_time > 0
        assert rec.wasted_gpu_time == rec.gpu_time

    def test_exactly_one_record_per_dag_request(self):
        cluster = make_cluster(DropAtModule("m3"), app=tiny_dag_app(slo=5.0))
        for i in range(20):
            cluster.submit_at(0.001 * i)
        cluster.sim.run()
        assert len(cluster.metrics.records) == 20

    def test_nested_forks_join_waits_for_every_branch(self):
        """Two sequential forks feeding one join: m1 -> {m2, m3}, then
        m2 -> {m4, m5}, with m4, m5 and m3 all merging at m6.  The join
        requirement must accumulate across the forks (3 deliveries), not
        be overwritten by the second fork's count (regression test: the
        join fired after 2 arrivals, before the slowest branch)."""
        from repro.pipeline.applications import Application
        from repro.pipeline.spec import ModuleSpec, PipelineSpec

        spec = PipelineSpec(
            name="nested-forks",
            modules=[
                ModuleSpec("m1", "alpha", subs=("m2", "m3")),
                ModuleSpec("m2", "beta", pres=("m1",), subs=("m4", "m5")),
                ModuleSpec("m3", "gamma", pres=("m1",), subs=("m6",)),
                ModuleSpec("m4", "alpha", pres=("m2",), subs=("m6",)),
                ModuleSpec("m5", "gamma", pres=("m2",), subs=("m6",)),
                ModuleSpec("m6", "beta", pres=("m3", "m4", "m5")),
            ],
        )
        cluster = make_cluster(
            NaivePolicy(), app=Application(spec=spec, slo=5.0)
        )
        request = cluster.submit_at(0.0)
        cluster.sim.run()
        assert request.status is RequestStatus.COMPLETED
        branch_ends = [
            request.visit(mid).t_exec_end for mid in ("m3", "m4", "m5")
        ]
        # The join must not have started before the slowest branch arrived.
        assert request.visit("m6").t_received == pytest.approx(
            max(branch_ends)
        )
        # Exactly one record, and no stray token state left behind.
        assert len(cluster.metrics.records) == 1
        assert not cluster._join_arrived
        assert not cluster._join_expected

    def test_nested_forks_many_requests_all_accounted(self):
        from repro.pipeline.applications import Application
        from repro.pipeline.spec import ModuleSpec, PipelineSpec

        spec = PipelineSpec(
            name="nested-forks",
            modules=[
                ModuleSpec("m1", "alpha", subs=("m2", "m3")),
                ModuleSpec("m2", "beta", pres=("m1",), subs=("m4", "m5")),
                ModuleSpec("m3", "gamma", pres=("m1",), subs=("m6",)),
                ModuleSpec("m4", "alpha", pres=("m2",), subs=("m6",)),
                ModuleSpec("m5", "gamma", pres=("m2",), subs=("m6",)),
                ModuleSpec("m6", "beta", pres=("m3", "m4", "m5")),
            ],
        )
        cluster = make_cluster(
            DropAtModule("m4"), app=Application(spec=spec, slo=5.0)
        )
        for i in range(15):
            cluster.submit_at(0.002 * i)
        cluster.sim.run()
        # Dropping one branch still yields exactly one terminal record per
        # request, and the join never fires early on a partial set.
        assert len(cluster.metrics.records) == 15
        assert all(
            r.status is RequestStatus.DROPPED for r in cluster.metrics.records
        )

    def test_multi_entry_pipeline_rejected(self):
        import pytest as _pytest

        from repro.pipeline.applications import Application
        from repro.pipeline.spec import ModuleSpec, PipelineSpec

        spec = PipelineSpec(
            name="two-entries",
            modules=[
                ModuleSpec("a", "alpha", subs=("c",)),
                ModuleSpec("b", "beta", subs=("c",)),
                ModuleSpec("c", "gamma", pres=("a", "b")),
            ],
        )
        with _pytest.raises(ValueError, match="exactly one entry"):
            make_cluster(NaivePolicy(), app=Application(spec=spec, slo=1.0))


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        from repro.experiments import ExperimentConfig, run_experiment
        from repro.core.policy import PardPolicy

        def run():
            config = ExperimentConfig(
                app="tm", trace="tweet", base_rate=50, duration=12, seed=9
            )
            result = run_experiment(config, PardPolicy(samples=500, seed=9))
            return (
                result.summary.good,
                result.summary.dropped,
                round(result.summary.invalid_rate, 12),
            )

        assert run() == run()
