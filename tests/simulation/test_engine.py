"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.engine import Simulator


def test_events_fire_in_time_order(sim):
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_equal_times_fire_in_scheduling_order(sim):
    fired = []
    for i in range(10):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_now_advances_with_events(sim):
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.5]


def test_schedule_in_past_raises(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(0.5, lambda: None)


def test_schedule_after_negative_delay_raises(sim):
    with pytest.raises(ValueError):
        sim.schedule_after(-0.1, lambda: None)


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_when_queue_empty(sim):
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_cancelled_event_does_not_fire(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []


def test_events_scheduled_during_execution(sim):
    fired = []

    def chain(n: int) -> None:
        fired.append(n)
        if n < 3:
            sim.schedule_after(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_limits_execution(sim):
    fired = []
    for i in range(5):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_processed_and_pending_counts(sim):
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.step()
    assert sim.processed_events == 1
    assert sim.pending_events == 1


def test_step_returns_false_when_drained(sim):
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_events_excludes_cancelled(sim):
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    assert sim.pending_events == 4
    handles[0].cancel()
    handles[2].cancel()
    assert sim.pending_events == 2
    # Double-cancel must not double-count the tombstone.
    handles[0].cancel()
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
    assert sim.processed_events == 2


def test_cancel_after_fire_is_noop(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    handle.cancel()  # no-op: already fired
    assert sim.pending_events == 0
    sim.schedule(2.0, fired.append, "y")
    sim.run()
    assert fired == ["x", "y"]


def test_mass_cancellation_compacts_heap(sim):
    """Tombstones must not accumulate: cancelling most of a large queue
    shrinks the underlying heap rather than leaving it for run() to walk."""
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(1000)]
    for h in handles[:900]:
        h.cancel()
    assert sim.pending_events == 100
    # Lazy compaction has dropped (most of) the tombstones already.
    assert len(sim._heap) < 500
    sim.run()
    assert sim.processed_events == 100


def test_firing_order_survives_compaction(sim):
    fired = []
    handles = []
    for i in range(300):
        handles.append(sim.schedule(float(i % 7), fired.append, i))
    for i, h in enumerate(handles):
        if i % 3 != 0:
            h.cancel()
    sim.run()
    survivors = [i for i in range(300) if i % 3 == 0]
    # Time-major, scheduling-order-minor: exactly the uncancelled events.
    expected = sorted(survivors, key=lambda i: (i % 7, i))
    assert fired == expected


def test_run_until_with_cancelled_head(sim):
    fired = []
    head = sim.schedule(1.0, fired.append, "dead")
    sim.schedule(2.0, fired.append, "live")
    head.cancel()
    sim.run(until=1.5)
    assert fired == []
    assert sim.now == 1.5
    sim.run()
    assert fired == ["live"]


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
def test_property_events_execute_sorted(times):
    sim = Simulator()
    fired: list[float] = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)
