"""Tests for sliding-window runtime statistics."""

from __future__ import annotations

import pytest

from repro.simulation.stats import ModuleStats, RateMeter, WindowedSamples


class TestWindowedSamples:
    def test_mean_of_recent_samples(self):
        ws = WindowedSamples(window=5.0)
        ws.record(0.0, 1.0)
        ws.record(1.0, 3.0)
        assert ws.mean(now=1.0) == pytest.approx(2.0)

    def test_old_samples_evicted(self):
        ws = WindowedSamples(window=5.0)
        ws.record(0.0, 100.0)
        ws.record(6.0, 2.0)
        assert ws.mean(now=6.0) == pytest.approx(2.0)
        assert len(ws) == 1

    def test_weighted_average_prefers_recent(self):
        ws = WindowedSamples(window=10.0)
        ws.record(0.0, 0.0)  # old, low weight
        ws.record(9.0, 10.0)  # fresh, high weight
        avg = ws.weighted_average(now=10.0)
        assert avg > 5.0  # closer to the fresh sample

    def test_weighted_average_equals_value_for_single_sample(self):
        ws = WindowedSamples(window=5.0)
        ws.record(1.0, 7.0)
        assert ws.weighted_average(now=1.0) == pytest.approx(7.0)

    def test_default_when_empty(self):
        ws = WindowedSamples(window=5.0)
        assert ws.weighted_average(now=1.0, default=42.0) == 42.0
        assert ws.mean(now=1.0, default=-1.0) == -1.0

    def test_values_returns_window_contents(self):
        ws = WindowedSamples(window=2.0)
        ws.record(0.0, 1.0)
        ws.record(1.5, 2.0)
        ws.record(2.5, 3.0)
        assert ws.values(now=3.0) == [2.0, 3.0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedSamples(window=0.0)


class TestRateMeter:
    def test_rate_over_full_window(self):
        rm = RateMeter(window=5.0)
        for t in (5.0, 6.0, 7.0, 8.0, 9.0):
            rm.record(t)
        assert rm.rate(now=10.0) == pytest.approx(1.0)

    def test_rate_early_in_run_uses_elapsed_span(self):
        rm = RateMeter(window=10.0)
        rm.record(0.5)
        rm.record(1.0)
        # Only 2 seconds elapsed: rate should reflect 2 events / 2 s.
        assert rm.rate(now=2.0) == pytest.approx(1.0)

    def test_zero_rate_when_no_events(self):
        rm = RateMeter(window=5.0)
        assert rm.rate(now=10.0) == 0.0

    def test_events_age_out(self):
        rm = RateMeter(window=2.0)
        rm.record(0.0)
        rm.record(0.5)
        assert rm.rate(now=5.0) == 0.0

    def test_total_counts_everything(self):
        rm = RateMeter(window=1.0)
        for t in range(10):
            rm.record(float(t))
        assert rm.total == 10


def _reference_weighted_average(
    samples: list[tuple[float, float]], window: float, now: float, default: float
) -> float:
    """The pre-optimization explicit loop, as the oracle."""
    num = den = 0.0
    for t, v in samples:
        if t < now - window:
            continue
        wgt = 1.0 - (now - t) / window
        if wgt <= 0.0:
            continue
        num += wgt * v
        den += wgt
    return num / den if den > 0 else default


class TestIncrementalSums:
    """The O(1) running-sum aggregates must match the explicit loop."""

    def test_weighted_average_matches_reference_under_churn(self):
        import random

        rng = random.Random(7)
        window = 5.0
        ws = WindowedSamples(window=window)
        log: list[tuple[float, float]] = []
        t = 0.0
        for i in range(5000):
            t += rng.random() * 0.05
            v = rng.uniform(-3.0, 10.0)
            ws.record(t, v)
            log.append((t, v))
            if i % 7 == 0:
                got = ws.weighted_average(t, default=-1.0)
                want = _reference_weighted_average(log, window, t, -1.0)
                assert got == pytest.approx(want, rel=1e-9, abs=1e-12)
        # Long quiet gap: everything evicts, sums reset exactly.
        t += 2 * window
        assert ws.weighted_average(t, default=42.0) == 42.0
        assert len(ws) == 0

    def test_mean_matches_reference_after_eviction(self):
        ws = WindowedSamples(window=2.0)
        for i in range(100):
            ws.record(i * 0.1, float(i))
        now = 9.9
        live = [(t, v) for t, v in ((i * 0.1, float(i)) for i in range(100))
                if t >= now - 2.0]
        assert ws.mean(now) == pytest.approx(
            sum(v for _, v in live) / len(live), rel=1e-12
        )

    def test_rebuild_bounds_drift(self):
        # Tiny values after huge ones: without periodic exact rebuilds the
        # incremental sums would be dominated by cancellation error.
        ws = WindowedSamples(window=1.0)
        t = 0.0
        for _ in range(200):
            t += 0.01
            ws.record(t, 1e12)
        for _ in range(3000):
            t += 0.01
            ws.record(t, 1e-6)
        got = ws.weighted_average(t)
        assert got == pytest.approx(1e-6, rel=1e-6)

    def test_rate_meter_cache_invalidated_by_record(self):
        rm = RateMeter(window=10.0)
        rm.record(1.0)
        assert rm.rate(now=10.0) == pytest.approx(0.1)
        assert rm.rate(now=10.0) == pytest.approx(0.1)  # cached path
        rm.record(10.0)
        assert rm.rate(now=10.0) == pytest.approx(0.2)  # cache dropped


class TestModuleStats:
    def test_records_flow_through(self):
        ms = ModuleStats(window=5.0)
        ms.record_arrival(0.1)
        ms.record_queue_delay(0.2, 0.05)
        ms.record_batch_wait(0.2, 0.02)
        ms.record_batch(0.3, 4)
        ms.record_drop()
        assert ms.input_rate(1.0) > 0
        assert ms.avg_queue_delay(0.5) == pytest.approx(0.05)
        assert ms.recent_batch_waits(0.5) == [0.02]
        assert ms.avg_batch_size(0.5, default=1) == pytest.approx(4.0)
        assert ms.drops == 1
        assert ms.executed == 4

    def test_avg_batch_size_default(self):
        ms = ModuleStats(window=5.0)
        assert ms.avg_batch_size(1.0, default=8) == 8
