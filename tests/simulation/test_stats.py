"""Tests for sliding-window runtime statistics."""

from __future__ import annotations

import pytest

from repro.simulation.stats import ModuleStats, RateMeter, WindowedSamples


class TestWindowedSamples:
    def test_mean_of_recent_samples(self):
        ws = WindowedSamples(window=5.0)
        ws.record(0.0, 1.0)
        ws.record(1.0, 3.0)
        assert ws.mean(now=1.0) == pytest.approx(2.0)

    def test_old_samples_evicted(self):
        ws = WindowedSamples(window=5.0)
        ws.record(0.0, 100.0)
        ws.record(6.0, 2.0)
        assert ws.mean(now=6.0) == pytest.approx(2.0)
        assert len(ws) == 1

    def test_weighted_average_prefers_recent(self):
        ws = WindowedSamples(window=10.0)
        ws.record(0.0, 0.0)  # old, low weight
        ws.record(9.0, 10.0)  # fresh, high weight
        avg = ws.weighted_average(now=10.0)
        assert avg > 5.0  # closer to the fresh sample

    def test_weighted_average_equals_value_for_single_sample(self):
        ws = WindowedSamples(window=5.0)
        ws.record(1.0, 7.0)
        assert ws.weighted_average(now=1.0) == pytest.approx(7.0)

    def test_default_when_empty(self):
        ws = WindowedSamples(window=5.0)
        assert ws.weighted_average(now=1.0, default=42.0) == 42.0
        assert ws.mean(now=1.0, default=-1.0) == -1.0

    def test_values_returns_window_contents(self):
        ws = WindowedSamples(window=2.0)
        ws.record(0.0, 1.0)
        ws.record(1.5, 2.0)
        ws.record(2.5, 3.0)
        assert ws.values(now=3.0) == [2.0, 3.0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedSamples(window=0.0)


class TestRateMeter:
    def test_rate_over_full_window(self):
        rm = RateMeter(window=5.0)
        for t in (5.0, 6.0, 7.0, 8.0, 9.0):
            rm.record(t)
        assert rm.rate(now=10.0) == pytest.approx(1.0)

    def test_rate_early_in_run_uses_elapsed_span(self):
        rm = RateMeter(window=10.0)
        rm.record(0.5)
        rm.record(1.0)
        # Only 2 seconds elapsed: rate should reflect 2 events / 2 s.
        assert rm.rate(now=2.0) == pytest.approx(1.0)

    def test_zero_rate_when_no_events(self):
        rm = RateMeter(window=5.0)
        assert rm.rate(now=10.0) == 0.0

    def test_events_age_out(self):
        rm = RateMeter(window=2.0)
        rm.record(0.0)
        rm.record(0.5)
        assert rm.rate(now=5.0) == 0.0

    def test_total_counts_everything(self):
        rm = RateMeter(window=1.0)
        for t in range(10):
            rm.record(float(t))
        assert rm.total == 10


class TestModuleStats:
    def test_records_flow_through(self):
        ms = ModuleStats(window=5.0)
        ms.record_arrival(0.1)
        ms.record_queue_delay(0.2, 0.05)
        ms.record_batch_wait(0.2, 0.02)
        ms.record_batch(0.3, 4)
        ms.record_drop()
        assert ms.input_rate(1.0) > 0
        assert ms.avg_queue_delay(0.5) == pytest.approx(0.05)
        assert ms.recent_batch_waits(0.5) == [0.02]
        assert ms.avg_batch_size(0.5, default=1) == pytest.approx(4.0)
        assert ms.drops == 1
        assert ms.executed == 4

    def test_avg_batch_size_default(self):
        ms = ModuleStats(window=5.0)
        assert ms.avg_batch_size(1.0, default=8) == 8
