"""Tests for the request lifecycle model."""

from __future__ import annotations

import pytest

from repro.simulation.request import (
    DropReason,
    ModuleVisit,
    Request,
    RequestStatus,
)


def make_request(sent_at: float = 0.0, slo: float = 0.5) -> Request:
    return Request(sent_at=sent_at, slo=slo)


def test_unique_request_ids():
    ids = {make_request().rid for _ in range(100)}
    assert len(ids) == 100


def test_deadline_and_remaining_budget():
    r = make_request(sent_at=1.0, slo=0.5)
    assert r.deadline == pytest.approx(1.5)
    assert r.remaining_budget(1.2) == pytest.approx(0.3)
    assert r.remaining_budget(1.7) == pytest.approx(-0.2)


def test_visit_latency_decomposition():
    v = ModuleVisit(module_id="m1", t_received=1.0)
    v.t_batched = 1.2
    v.t_exec_start = 1.5
    v.t_exec_end = 1.6
    assert v.queueing_delay == pytest.approx(0.2)
    assert v.batch_wait == pytest.approx(0.3)
    assert v.execution == pytest.approx(0.1)


def test_visit_accessors_raise_before_population():
    v = ModuleVisit(module_id="m1", t_received=1.0)
    with pytest.raises(ValueError):
        _ = v.queueing_delay
    v.t_batched = 1.1
    with pytest.raises(ValueError):
        _ = v.batch_wait


def test_begin_visit_twice_raises():
    r = make_request()
    r.begin_visit("m1", 0.1)
    with pytest.raises(ValueError):
        r.begin_visit("m1", 0.2)


def test_completed_within_slo_is_good():
    r = make_request(sent_at=0.0, slo=0.5)
    r.mark_completed(0.4)
    assert r.status is RequestStatus.COMPLETED
    assert r.met_slo
    assert r.elapsed == pytest.approx(0.4)


def test_completed_after_slo_violates():
    r = make_request(sent_at=0.0, slo=0.5)
    r.mark_completed(0.6)
    assert r.status is RequestStatus.COMPLETED
    assert not r.met_slo


def test_dropped_request_never_good():
    r = make_request()
    r.begin_visit("m1", 0.1)
    r.mark_dropped("m1", DropReason.ESTIMATED_VIOLATION, 0.2)
    assert r.status is RequestStatus.DROPPED
    assert not r.met_slo
    assert r.dropped_at_module == "m1"
    assert r.finished_at == pytest.approx(0.2)


def test_drop_is_idempotent_for_dag_siblings():
    r = make_request()
    r.mark_dropped("m2", DropReason.ESTIMATED_VIOLATION, 0.2)
    r.mark_dropped("m3", DropReason.SIBLING_DROPPED, 0.3)  # no-op
    assert r.dropped_at_module == "m2"
    assert r.finished_at == pytest.approx(0.2)


def test_complete_then_drop_raises():
    r = make_request()
    r.mark_completed(0.1)
    with pytest.raises(ValueError):
        r.mark_dropped("m1", DropReason.ALREADY_EXPIRED, 0.2)


def test_double_complete_raises():
    r = make_request()
    r.mark_completed(0.1)
    with pytest.raises(ValueError):
        r.mark_completed(0.2)


def test_elapsed_requires_terminal_state():
    r = make_request()
    with pytest.raises(ValueError):
        _ = r.elapsed


def test_gpu_time_sums_across_visits():
    r = make_request()
    v1 = r.begin_visit("m1", 0.0)
    v1.gpu_time = 0.01
    v2 = r.begin_visit("m2", 0.1)
    v2.gpu_time = 0.02
    assert r.gpu_time == pytest.approx(0.03)
