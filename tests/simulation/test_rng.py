"""Tests for named RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.rng import RngStreams


def test_same_name_returns_same_generator():
    streams = RngStreams(seed=1)
    assert streams.stream("a") is streams.stream("a")


def test_same_seed_reproduces_draws():
    a = RngStreams(seed=42).stream("arrivals").random(10)
    b = RngStreams(seed=42).stream("arrivals").random(10)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    streams = RngStreams(seed=42)
    a = streams.stream("one").random(10)
    b = streams.stream("two").random(10)
    assert not np.array_equal(a, b)


def test_consuming_one_stream_does_not_shift_another():
    s1 = RngStreams(seed=7)
    s1.stream("noise").random(1000)  # burn a different stream
    after_burn = s1.stream("target").random(5)
    s2 = RngStreams(seed=7)
    fresh = s2.stream("target").random(5)
    assert np.array_equal(after_burn, fresh)


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random(10)
    b = RngStreams(seed=2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngStreams(seed=-1)


def test_spawn_is_deterministic_and_independent():
    parent = RngStreams(seed=9)
    child_a = parent.spawn("child").stream("x").random(5)
    child_b = RngStreams(seed=9).spawn("child").stream("x").random(5)
    assert np.array_equal(child_a, child_b)
    assert not np.array_equal(child_a, parent.stream("x").random(5))
