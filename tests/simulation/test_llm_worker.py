"""Tests for LLMWorker: continuous batching and KV-cache accounting.

The KV cache is a schedulable resource — every admitted sequence holds a
token reservation against the worker's capacity.  These tests pin the
accounting invariant that no path may violate: after any run (clean
completions, admission-control drops, worker failures, preemptions) every
worker ends with ``kv_used == 0`` and no leftover per-request state.
"""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.pipeline.applications import Application
from repro.pipeline.llm_profiles import LLMProfile, TokenDist
from repro.pipeline.profiles import ModelProfile, ProfileRegistry
from repro.pipeline.spec import chain
from repro.policies.naive import NaivePolicy
from repro.simulation.cluster import Cluster
from repro.simulation.engine import Simulator
from repro.simulation.failures import FailureEvent, FailureInjector
from repro.simulation.llm import LLMWorker
from repro.simulation.request import DropReason, RequestStatus
from repro.simulation.rng import RngStreams
from repro.simulation.worker import Worker


def llm_profile(**overrides) -> LLMProfile:
    """A fast deterministic profile (constant token lengths by default)."""
    kwargs = dict(
        name="gen",
        max_batch=4,
        prefill_base=0.002,
        prefill_per_token=0.00002,
        decode_base=0.001,
        decode_per_token=0.0001,
        kv_capacity=4096,
        prompt_dist=TokenDist(kind="constant", mean=40.0),
        output_dist=TokenDist(kind="constant", mean=8.0),
    )
    kwargs.update(overrides)
    return LLMProfile(**kwargs)


def llm_cluster(profile: LLMProfile, workers: int = 1, slo: float = 60.0) -> Cluster:
    app = Application(spec=chain("llm", [profile.name]), slo=slo)
    return Cluster(
        sim=Simulator(),
        app=app,
        policy=NaivePolicy(),
        workers=workers,
        registry=ProfileRegistry([profile]),
        metrics=MetricsCollector(),
        rng=RngStreams(seed=7),
    )


def assert_clean(cluster: Cluster) -> None:
    """No KV reservation or per-request engine state survives the run."""
    for module in cluster.modules.values():
        for worker in module.workers:
            assert isinstance(worker, LLMWorker)
            assert worker.kv_used == 0
            assert worker._reserved == {}
            assert worker._generated == {}
            assert worker._running == []
            assert worker._need_prefill == []
            assert worker.executing is None
            assert worker.idle


def submit_and_run(cluster: Cluster, n: int, gap: float = 0.003) -> None:
    for i in range(n):
        cluster.submit_at(gap * i)
    cluster.sim.run()


class TestWorkerSelection:
    def test_llm_profile_gets_llm_worker(self):
        cluster = llm_cluster(llm_profile())
        assert all(
            isinstance(w, LLMWorker)
            for m in cluster.modules.values()
            for w in m.workers
        )

    def test_fixed_profile_keeps_plain_worker(self):
        from ..conftest import make_cluster

        cluster = make_cluster(NaivePolicy())
        workers = [w for m in cluster.modules.values() for w in m.workers]
        assert workers
        assert not any(isinstance(w, LLMWorker) for w in workers)
        assert all(isinstance(w, Worker) for w in workers)

    def test_llm_worker_rejects_fixed_profile(self):
        cluster = llm_cluster(llm_profile())
        module = cluster.modules["m1"]
        module.profile = ModelProfile("gen", base=0.01, per_item=0.001)
        with pytest.raises(TypeError):
            LLMWorker(module, worker_id=99)


class TestTokenEmission:
    def test_completion_emits_sampled_output_tokens(self):
        cluster = llm_cluster(llm_profile())
        submit_and_run(cluster, 10)
        records = cluster.metrics.records
        assert len(records) == 10
        for r in records:
            assert r.status is RequestStatus.COMPLETED
            # Constant output_dist: every request streams exactly 8 tokens.
            assert r.tokens_out == 8
            assert r.first_token_at is not None
            assert r.last_token_at is not None
            assert r.first_token_at <= r.last_token_at <= r.finished_at
        assert_clean(cluster)

    def test_sampled_lengths_are_sticky_and_seeded(self):
        profile = llm_profile(
            prompt_dist=TokenDist(kind="lognormal", mean=64.0, sigma=0.5),
            output_dist=TokenDist(kind="uniform", low=2.0, high=12.0),
        )

        def lengths() -> list[tuple[int, int]]:
            cluster = llm_cluster(profile)
            submit_and_run(cluster, 8)
            assert_clean(cluster)
            # rids are process-global; compare in submission (rid) order.
            return [
                r.tokens_out
                for r in sorted(cluster.metrics.records, key=lambda r: r.rid)
            ]

        assert lengths() == lengths()


class TestKvAccounting:
    def test_no_leak_after_clean_run(self):
        cluster = llm_cluster(llm_profile())
        submit_and_run(cluster, 25, gap=0.002)
        assert_clean(cluster)
        assert len(cluster.metrics.records) == 25

    def test_admission_blocks_under_kv_pressure_without_reordering(self):
        # Capacity fits exactly one sequence (40 + 8 = 48 of 50): requests
        # serialize through the cache but all finish, in FIFO order.
        cluster = llm_cluster(llm_profile(kv_capacity=50))
        submit_and_run(cluster, 6)
        records = cluster.metrics.records
        assert [r.rid for r in records] == sorted(r.rid for r in records)
        assert all(r.status is RequestStatus.COMPLETED for r in records)
        assert len(records) == 6
        assert_clean(cluster)

    def test_never_fitting_request_is_dropped_not_wedged(self):
        # worst = 40 + 8 = 48 > capacity 32 on an empty cache: admission
        # control rejects outright instead of blocking the worker forever.
        cluster = llm_cluster(llm_profile(kv_capacity=32))
        submit_and_run(cluster, 4)
        records = cluster.metrics.records
        assert len(records) == 4
        for r in records:
            assert r.status is RequestStatus.DROPPED
            assert r.drop_reason is DropReason.ADMISSION_CONTROL
        assert_clean(cluster)

    def test_preempt_mode_completes_and_releases_everything(self):
        # Two fresh sequences fit (2 * 41 = 82 of 100) but reservation
        # growth (+1 token per sequence per decode) exhausts the cache
        # mid-generation, forcing preemption and later resumption.
        profile = llm_profile(
            kv_capacity=100,
            preempt=True,
            output_dist=TokenDist(kind="constant", mean=20.0),
        )
        cluster = llm_cluster(profile)
        submit_and_run(cluster, 6, gap=0.001)
        records = cluster.metrics.records
        assert len(records) == 6
        assert all(r.status is RequestStatus.COMPLETED for r in records)
        assert all(r.tokens_out == 20 for r in records)
        assert_clean(cluster)

    def test_preempt_mode_matches_block_mode_token_counts(self):
        for preempt in (False, True):
            cluster = llm_cluster(llm_profile(preempt=preempt))
            submit_and_run(cluster, 12)
            assert [r.tokens_out for r in cluster.metrics.records] == [8] * 12
            assert_clean(cluster)

    def test_worker_failure_releases_kv_with_the_worker(self):
        # Kill the only worker mid-stream: in-flight sequences strand and
        # replay on the replacement; nothing leaks on either worker.
        cluster = llm_cluster(llm_profile(), workers=2)
        injector = FailureInjector(
            cluster,
            events=[
                FailureEvent(time=0.02, module_id="m1", workers=1, downtime=0.05)
            ],
        )
        injector.schedule_all()
        submit_and_run(cluster, 20, gap=0.002)
        records = cluster.metrics.records
        assert len(records) == 20
        assert all(
            r.status in (RequestStatus.COMPLETED, RequestStatus.DROPPED)
            for r in records
        )
        assert cluster.modules["m1"].n_workers == 2  # recovered
        assert_clean(cluster)

    def test_kill_mid_decode_releases_kv_and_readmits_cleanly(self):
        # Kill the ONLY worker while sequences are decoding: their KV
        # reservations die with the machine, the stranded sequences park
        # at the module, and the recovered worker re-admits them from a
        # clean slate — fresh reservations, full completions, no leaks.
        cluster = llm_cluster(llm_profile(), workers=1)
        injector = FailureInjector(
            cluster,
            events=[
                FailureEvent(time=0.01, module_id="m1", workers=1,
                             downtime=0.05)
            ],
        )
        injector.schedule_all()
        probe: dict[str, object] = {}

        def before() -> None:
            worker = cluster.modules["m1"].workers[0]
            probe["kv_mid_decode"] = worker.kv_used

        def during() -> None:
            module = cluster.modules["m1"]
            probe["workers_down"] = module.n_workers
            probe["parked"] = len(module._parked)

        cluster.sim.schedule(0.0099, before)
        cluster.sim.schedule(0.03, during)
        submit_and_run(cluster, 12, gap=0.001)
        assert probe["kv_mid_decode"] > 0  # the kill interrupts decoding
        assert probe["workers_down"] == 0
        assert probe["parked"] > 0  # stranded sequences wait at the module
        records = cluster.metrics.records
        assert len(records) == 12
        assert all(r.status is RequestStatus.COMPLETED for r in records)
        # Tokens streamed before the kill stay counted (like GPU time on
        # plain workers); re-admission regenerates the full sampled
        # length, so interrupted sequences may exceed it slightly.
        assert all(r.tokens_out >= 8 for r in records)
        assert sum(r.tokens_out == 8 for r in records) >= 8
        assert_clean(cluster)


class TestBatchingPlanIntegration:
    def test_llm_profile_plugs_into_affine_planning(self):
        """The derived base/per_item make provisioning treat the profile
        as a normal affine model (satellite: planning stays unchanged)."""
        from repro.simulation.batching import (
            module_throughput,
            plan_batch_sizes,
            provision_workers,
        )

        profile = llm_profile()
        registry = ProfileRegistry([profile])
        spec = chain("llm", ["gen"])
        plan = plan_batch_sizes(spec, registry, slo=2.0)
        workers = provision_workers(spec, registry, plan, rate=120.0)
        for mid, n in workers.items():
            assert module_throughput(profile, plan[mid], n) >= 120.0
