"""Tests for the multi-tenant shared cluster (pools, views, isolation)."""

from __future__ import annotations

import pytest

from repro.policies.naive import NaivePolicy
from repro.simulation.engine import Simulator
from repro.simulation.request import DropReason, RequestStatus
from repro.simulation.tenancy import SharedCluster, Tenant, assign_pools

from ..conftest import tiny_chain_app, tiny_dag_app, tiny_registry


def two_tenant_cluster(policy_a=None, policy_b=None, workers=2, **kw):
    """tm-style chain (alpha, beta) + gamma-only chain over shared pools."""
    sim = Simulator()
    a = Tenant(name="a", app=tiny_chain_app(n=2, slo=0.5),
               policy=policy_a or NaivePolicy())
    b = Tenant(name="b", app=tiny_chain_app(n=3, slo=0.4),
               policy=policy_b or NaivePolicy())
    cluster = SharedCluster(sim, [a, b], workers=workers,
                            registry=tiny_registry(), **kw)
    return sim, cluster


class TestPoolAssignment:
    def test_same_model_shares_a_pool(self):
        a = ("a", tiny_chain_app(n=2))  # alpha -> beta
        b = ("b", tiny_chain_app(n=3))  # alpha -> beta -> gamma
        pools, by_member = assign_pools([a, b])
        assert set(pools) == {"alpha", "beta", "gamma"}
        assert pools["alpha"].members == (("a", "m1"), ("b", "m1"))
        assert by_member[("a", "m2")] == by_member[("b", "m2")] == "beta"

    def test_duplicate_model_within_app_gets_own_pool(self):
        # tiny_dag uses beta at both m2 and m4: a request can sit at both
        # hops, so the second hop cannot share the first's pool identity.
        pools, by_member = assign_pools([("a", tiny_dag_app())])
        assert by_member[("a", "m2")] == "beta"
        assert by_member[("a", "m4")] == "beta:m4"
        assert pools["beta:m4"].model == "beta"

    def test_assignment_is_deterministic_first_use_order(self):
        pools, _ = assign_pools(
            [("a", tiny_chain_app(n=3)), ("b", tiny_chain_app(n=2))]
        )
        assert list(pools) == ["alpha", "beta", "gamma"]


class TestSharedServing:
    def test_both_apps_complete_over_shared_pools(self):
        sim, cluster = two_tenant_cluster()
        for i in range(10):
            cluster.submit_at("a", 0.01 * i)
            cluster.submit_at("b", 0.01 * i)
        cluster.start_ticks()
        sim.run(until=5.0)
        cluster.stop_ticks()
        sim.run()
        for name in ("a", "b"):
            records = cluster.views[name].metrics.records
            assert len(records) == 10
            assert all(r.status is RequestStatus.COMPLETED for r in records)

    def test_pool_stats_see_aggregate_load(self):
        sim, cluster = two_tenant_cluster()
        for i in range(10):
            cluster.submit_at("a", 0.01 * i)
            cluster.submit_at("b", 0.01 * i)
        sim.run()
        # Both tenants route their first hop through the one alpha pool:
        # 20 requests executed there in total.
        alpha = cluster.pools["alpha"]
        executed = sum(w.telemetry.executed_requests for w in alpha.workers)
        assert executed == 20

    def test_requests_carry_their_tenants_slo(self):
        sim, cluster = two_tenant_cluster()
        ra = cluster.submit_at("a", 0.0)
        rb = cluster.submit_at("b", 0.0)
        assert ra.slo == pytest.approx(0.5)
        assert rb.slo == pytest.approx(0.4)
        assert (ra.app, rb.app) == ("a", "b")

    def test_cluster_slo_is_tightest_tenant(self):
        _, cluster = two_tenant_cluster()
        assert cluster.slo == pytest.approx(0.4)

    def test_duplicate_tenant_names_rejected(self):
        sim = Simulator()
        tenants = [
            Tenant(name="x", app=tiny_chain_app(n=2), policy=NaivePolicy()),
            Tenant(name="x", app=tiny_chain_app(n=3), policy=NaivePolicy()),
        ]
        with pytest.raises(ValueError, match="duplicate tenant names"):
            SharedCluster(sim, tenants, workers=1, registry=tiny_registry())

    def test_workers_dict_must_cover_every_pool(self):
        sim = Simulator()
        tenants = [
            Tenant(name="a", app=tiny_chain_app(n=2), policy=NaivePolicy()),
        ]
        with pytest.raises(ValueError, match="missing 'beta'"):
            SharedCluster(sim, tenants, workers={"alpha": 1},
                          registry=tiny_registry())

    def test_unknown_app_submission_rejected(self):
        sim, cluster = two_tenant_cluster()
        with pytest.raises(KeyError):
            cluster.submit_at("nosuch", 0.0)


class TestPerTenantPolicies:
    def test_policies_are_demultiplexed_per_request(self):
        from repro.interfaces import DropContext, DropPolicy

        class DropAll(DropPolicy):
            name = "drop-all"

            def should_drop(self, ctx: DropContext):
                return DropReason.ESTIMATED_VIOLATION

        sim, cluster = two_tenant_cluster(policy_a=DropAll())
        for i in range(5):
            cluster.submit_at("a", 0.001 * i)
            cluster.submit_at("b", 0.001 * i)
        sim.run()
        a_recs = cluster.views["a"].metrics.records
        b_recs = cluster.views["b"].metrics.records
        assert all(r.status is RequestStatus.DROPPED for r in a_recs)
        assert all(r.status is RequestStatus.COMPLETED for r in b_recs)

    def test_pard_policy_translates_pool_to_tenant_hop(self):
        """PARD's planner keys state by the tenant's module ids; the drop
        decision at a shared pool must translate back through hop_id."""
        from repro.core.policy import PardPolicy

        sim, cluster = two_tenant_cluster(
            policy_a=PardPolicy(samples=200, seed=0),
            policy_b=PardPolicy(samples=200, seed=1),
        )
        for i in range(30):
            cluster.submit_at("a", 0.005 * i)
            cluster.submit_at("b", 0.005 * i)
        cluster.start_ticks()
        sim.run(until=5.0)
        cluster.stop_ticks()
        sim.run()
        assert len(cluster.views["a"].metrics.records) == 30
        assert len(cluster.views["b"].metrics.records) == 30

    def test_entry_module_check_is_per_tenant(self):
        sim, cluster = two_tenant_cluster()
        view_a = cluster.views["a"]
        assert view_a.is_entry_module(cluster.pools["alpha"])
        assert not view_a.is_entry_module(cluster.pools["beta"])

    def test_hop_id_translates_shared_pool(self):
        sim, cluster = two_tenant_cluster()
        assert cluster.views["a"].hop_id(cluster.pools["beta"]) == "m2"
        assert cluster.views["b"].hop_id(cluster.pools["beta"]) == "m2"
        assert cluster.views["b"].hop_id(cluster.pools["gamma"]) == "m3"


class TestAdmissionSeam:
    def test_cross_app_admission_hook_sees_every_request(self):
        def admit(request, module, now):
            # Cross-app throttling: reject app b at the shared entry pool.
            if request.app == "b" and module.spec.id == "alpha":
                return DropReason.ADMISSION_CONTROL
            return None

        sim, cluster = two_tenant_cluster(admission=admit)
        for i in range(5):
            cluster.submit_at("a", 0.001 * i)
            cluster.submit_at("b", 0.001 * i)
        sim.run()
        a_recs = cluster.views["a"].metrics.records
        b_recs = cluster.views["b"].metrics.records
        assert all(r.status is RequestStatus.COMPLETED for r in a_recs)
        assert all(r.drop_reason is DropReason.ADMISSION_CONTROL
                   for r in b_recs)


class TestDagTenants:
    def test_dag_tenant_joins_on_shared_cluster(self):
        sim = Simulator()
        tenants = [
            Tenant(name="dag", app=tiny_dag_app(slo=5.0), policy=NaivePolicy()),
            Tenant(name="chain", app=tiny_chain_app(n=2, slo=5.0),
                   policy=NaivePolicy()),
        ]
        cluster = SharedCluster(sim, tenants, workers=1,
                                registry=tiny_registry())
        request = cluster.submit_at("dag", 0.0)
        cluster.submit_at("chain", 0.0)
        sim.run()
        assert request.status is RequestStatus.COMPLETED
        # The join pool received the request only after both branches.
        v_join = request.visit("beta:m4")
        assert v_join.t_received == pytest.approx(
            max(request.visit("beta").t_exec_end,
                request.visit("gamma").t_exec_end)
        )
        records = cluster.views["dag"].metrics.records
        assert len(records) == 1


class TestFailuresAndScaling:
    def test_failure_injection_targets_pools(self):
        from repro.simulation.failures import FailureEvent, FailureInjector

        sim, cluster = two_tenant_cluster(workers=2)
        injector = FailureInjector(
            cluster,
            events=[FailureEvent(time=0.05, module_id="alpha", workers=1,
                                 downtime=0.2)],
        )
        injector.schedule_all()
        for i in range(10):
            cluster.submit_at("a", 0.01 * i)
            cluster.submit_at("b", 0.01 * i)
        sim.run()
        assert any("fail alpha" in line for line in injector.log)
        assert cluster.pools["alpha"].n_workers == 2  # recovered
        total = (len(cluster.views["a"].metrics.records)
                 + len(cluster.views["b"].metrics.records))
        assert total == 20

    def test_reactive_scaler_operates_on_pools(self):
        from repro.simulation.scaling import ReactiveScaler

        sim, cluster = two_tenant_cluster(workers=1)
        scaler = ReactiveScaler(cluster, interval=0.5, cold_start=0.2,
                                max_workers=4)
        scaler.start()
        for i in range(400):
            cluster.submit_at("a", 0.005 * i)
            cluster.submit_at("b", 0.005 * i)
        cluster.start_ticks()
        sim.run(until=4.0)
        cluster.stop_ticks()
        sim.run()
        assert any(e.kind == "scale_out_done" for e in scaler.events)
        assert {e.module_id for e in scaler.events} <= set(cluster.pools)


class TestWorkerQuotas:
    def test_quota_maps_installed_on_member_pools(self):
        sim = Simulator()
        a = Tenant(name="a", app=tiny_chain_app(n=2, slo=0.5),
                   policy=NaivePolicy(), quota=1)
        b = Tenant(name="b", app=tiny_chain_app(n=3, slo=0.4),
                   policy=NaivePolicy(), quota={"gamma": 2})
        cluster = SharedCluster(sim, [a, b], workers=2,
                                registry=tiny_registry())
        # Tenant a's int quota covers each of its pools; b's dict quota
        # names gamma only, and gamma is b-exclusive.
        assert cluster.pools["alpha"]._quota_of == {"a": 1}
        assert cluster.pools["beta"]._quota_of == {"a": 1}
        assert cluster.pools["gamma"]._quota_of == {"b": 2}

    def test_no_quota_keeps_the_fast_path(self):
        _, cluster = two_tenant_cluster()
        assert all(p._quota_of is None for p in cluster.pools.values())

    def test_quota_confines_dispatch_to_the_worker_prefix(self):
        sim = Simulator()
        a = Tenant(name="a", app=tiny_chain_app(n=2, slo=0.5),
                   policy=NaivePolicy(), quota=1)
        b = Tenant(name="b", app=tiny_chain_app(n=2, slo=0.5),
                   policy=NaivePolicy())
        cluster = SharedCluster(sim, [a, b], workers=3,
                                registry=tiny_registry())
        for i in range(30):
            cluster.submit_at("a", 0.002 * i)
        sim.run()
        alpha = cluster.pools["alpha"]
        # Only tenant a submitted, and its quota is 1: every execution
        # lands on the first worker, the rest of the pool stays idle.
        assert alpha.workers[0].telemetry.executed_requests == 30
        assert all(w.telemetry.executed_requests == 0
                   for w in alpha.workers[1:])

    def test_unquotaed_tenant_still_spreads_over_the_pool(self):
        sim = Simulator()
        a = Tenant(name="a", app=tiny_chain_app(n=2, slo=0.5),
                   policy=NaivePolicy(), quota=1)
        b = Tenant(name="b", app=tiny_chain_app(n=2, slo=0.5),
                   policy=NaivePolicy())
        cluster = SharedCluster(sim, [a, b], workers=2,
                                registry=tiny_registry())
        for i in range(40):
            cluster.submit_at("b", 0.001 * i)
        sim.run()
        alpha = cluster.pools["alpha"]
        assert all(w.telemetry.executed_requests > 0 for w in alpha.workers)

    def test_quota_larger_than_pool_is_a_noop(self):
        sim = Simulator()
        a = Tenant(name="a", app=tiny_chain_app(n=2, slo=0.5),
                   policy=NaivePolicy(), quota=16)
        b = Tenant(name="b", app=tiny_chain_app(n=2, slo=0.5),
                   policy=NaivePolicy())
        cluster = SharedCluster(sim, [a, b], workers=2,
                                registry=tiny_registry())
        for i in range(40):
            cluster.submit_at("a", 0.001 * i)
        sim.run()
        alpha = cluster.pools["alpha"]
        assert all(w.telemetry.executed_requests > 0 for w in alpha.workers)
        records = cluster.views["a"].metrics.records
        assert len(records) == 40
