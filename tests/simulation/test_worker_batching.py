"""Tests for worker batching mechanics (Figure 3b semantics)."""

from __future__ import annotations

import pytest

from repro.policies.naive import NaivePolicy
from repro.simulation.request import RequestStatus

from ..conftest import make_cluster, tiny_chain_app


def single_module_cluster(batch: int = 4, workers: int = 1):
    app = tiny_chain_app(n=1, slo=10.0)  # generous SLO: nothing drops
    return make_cluster(
        NaivePolicy(), app=app, workers=workers, batch_plan={"m1": batch}
    )


def test_idle_worker_starts_batch_immediately():
    cluster = single_module_cluster()
    cluster.submit_at(0.0)
    cluster.sim.run()
    rec = cluster.metrics.records[0]
    visit = rec.visits[0]
    assert visit.queueing_delay == pytest.approx(0.0)
    assert visit.batch_wait == pytest.approx(0.0)
    assert visit.batch_size == 1


def test_requests_arriving_during_execution_form_next_batch():
    cluster = single_module_cluster(batch=4)
    # alpha profile: duration(1) = 0.025, duration(3) = 0.035.
    cluster.submit_at(0.0)  # starts immediately, runs [0, 0.025)
    cluster.submit_at(0.005)  # joins forming batch, waits until 0.025
    cluster.submit_at(0.010)
    cluster.submit_at(0.015)
    cluster.sim.run()
    records = sorted(cluster.metrics.records, key=lambda r: r.sent_at)
    assert records[0].visits[0].batch_size == 1
    later = records[1:]
    assert all(r.visits[0].batch_size == 3 for r in later)
    # Second batch starts exactly when the first finishes.
    assert later[0].visits[0].batch_wait == pytest.approx(0.025 - 0.005)
    assert later[-1].visits[0].batch_wait == pytest.approx(0.025 - 0.015)


def test_batch_wait_decreases_with_later_arrival():
    """Figure 3b: earlier requests in a forming batch wait longer."""
    cluster = single_module_cluster(batch=8)
    cluster.submit_at(0.0)
    waits = []
    for t in (0.002, 0.010, 0.020):
        cluster.submit_at(t)
    cluster.sim.run()
    records = sorted(cluster.metrics.records, key=lambda r: r.sent_at)[1:]
    waits = [r.visits[0].batch_wait for r in records]
    assert waits == sorted(waits, reverse=True)


def test_forming_batch_respects_target_size():
    cluster = single_module_cluster(batch=2)
    for i in range(6):
        cluster.submit_at(0.001 * i)
    cluster.sim.run()
    sizes = {r.visits[0].batch_size for r in cluster.metrics.records}
    assert max(sizes) <= 2


def test_gpu_time_share_is_duration_over_batch():
    cluster = single_module_cluster(batch=4)
    cluster.submit_at(0.0)
    cluster.submit_at(0.001)
    cluster.submit_at(0.002)
    cluster.sim.run()
    records = sorted(cluster.metrics.records, key=lambda r: r.sent_at)
    # First batch: size 1, duration(1) = 0.025.
    assert records[0].gpu_time == pytest.approx(0.025)
    # Second batch: size 2, duration(2) = 0.030 shared by 2.
    for r in records[1:]:
        assert r.gpu_time == pytest.approx(0.015)


def test_worker_goes_idle_and_resumes():
    cluster = single_module_cluster()
    cluster.submit_at(0.0)
    cluster.submit_at(1.0)  # long after the first batch drained
    cluster.sim.run()
    assert len(cluster.metrics.records) == 2
    second = max(cluster.metrics.records, key=lambda r: r.sent_at)
    assert second.visits[0].queueing_delay == pytest.approx(0.0)
    assert second.visits[0].batch_wait == pytest.approx(0.0)


def test_telemetry_counters():
    cluster = single_module_cluster(batch=4)
    for i in range(5):
        cluster.submit_at(0.001 * i)
    cluster.sim.run()
    worker = cluster.modules["m1"].workers[0]
    assert worker.telemetry.executed_requests == 5
    assert worker.telemetry.batches >= 2
    assert worker.telemetry.busy_time > 0


def test_all_requests_reach_terminal_state():
    cluster = single_module_cluster(batch=4, workers=2)
    for i in range(50):
        cluster.submit_at(0.002 * i)
    cluster.sim.run()
    assert len(cluster.metrics.records) == 50
    assert all(
        r.status in (RequestStatus.COMPLETED, RequestStatus.DROPPED)
        for r in cluster.metrics.records
    )
