"""Property tests: token-flow lifecycle and determinism for LLM apps.

The continuous-batching engine must uphold the same lifecycle invariant
as fixed-duration workers — every admitted request reaches exactly one
terminal state with no token or KV state left behind — under every
registered policy, including on the multi-exit agentic RAG DAG where a
probabilistic router kills the untaken branch.  A sweep over the
committed ``llm_serving.json`` example additionally pins that a process
pool reproduces the serial run byte-for-byte.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.metrics.collector import MetricsCollector
from repro.pipeline.applications import get_application
from repro.pipeline.profiles import DEFAULT_PROFILES
from repro.policies.registry import known_policies, make_policy
from repro.simulation.cluster import Cluster
from repro.simulation.engine import Simulator
from repro.simulation.llm import LLMWorker
from repro.simulation.request import RequestStatus
from repro.simulation.rng import RngStreams
from repro.simulation.routing import ProbabilisticRouter

SCENARIO_DIR = (
    Path(__file__).resolve().parent.parent.parent / "examples" / "scenarios"
)


def _run_llm(app_name: str, policy_name: str, requests: int = 12) -> Cluster:
    cluster = Cluster(
        sim=Simulator(),
        app=get_application(app_name),
        policy=make_policy(policy_name, seed=3),
        workers=1,
        registry=DEFAULT_PROFILES,
        metrics=MetricsCollector(),
        rng=RngStreams(seed=3),
        router=ProbabilisticRouter(
            {"rerank": 0.5, "generate_direct": 0.5}, seed=3
        )
        if app_name == "rag-agentic"
        else None,
    )
    for i in range(requests):
        cluster.submit_at(0.02 * i)
    cluster.sim.run()
    return cluster


@pytest.mark.parametrize("app_name", ["llm-chat", "rag-agentic"])
@pytest.mark.parametrize("policy_name", known_policies())
def test_every_llm_request_terminal_exactly_once(app_name, policy_name):
    cluster = _run_llm(app_name, policy_name)
    records = cluster.metrics.records
    assert len(records) == cluster.metrics.submitted == 12
    rids = [r.rid for r in records]
    assert len(rids) == len(set(rids))
    for record in records:
        assert record.status in (
            RequestStatus.COMPLETED, RequestStatus.DROPPED,
        )
    # All per-request token-flow state was reclaimed...
    assert not cluster._join_arrived
    assert not cluster._join_expected
    assert not cluster._exit_expected
    # ...and every KV reservation was released.
    for module in cluster.modules.values():
        for worker in module.workers:
            if isinstance(worker, LLMWorker):
                assert worker.kv_used == 0
                assert not worker._reserved
                assert not worker._generated


@pytest.mark.parametrize("app_name", ["llm-chat", "rag-agentic"])
def test_same_seed_reruns_are_identical(app_name):
    def outcome(cluster):
        return [
            (r.status, r.tokens_out, r.finished_at, r.first_token_at)
            for r in sorted(cluster.metrics.records, key=lambda r: r.sent_at)
        ]

    a = _run_llm(app_name, "PARD")
    b = _run_llm(app_name, "PARD")
    assert outcome(a) == outcome(b)


def test_llm_serving_sweep_pool_matches_serial_bytes():
    """Serial and 2-process sweeps over the committed LLM example are
    bitwise equal — the determinism contract the CI smoke and the golden
    rely on."""
    from repro.experiments.sweep import (
        load_scenario_cells,
        run_sweep,
        summaries_text,
    )

    cells = load_scenario_cells(SCENARIO_DIR / "llm_serving.json")
    serial = run_sweep(cells, workers=1, cache_dir=None)
    assert all(r.ok for r in serial), [r.error for r in serial if not r.ok]
    parallel = run_sweep(cells, workers=2, cache_dir=None)
    assert summaries_text(parallel) == summaries_text(serial)
    # The goodput block is part of the replicated payload.
    assert '"per_app_goodput"' in summaries_text(serial)
