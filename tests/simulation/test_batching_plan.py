"""Tests for SLO splitting, batch planning and provisioning."""

from __future__ import annotations

import pytest

from repro.pipeline.profiles import ModelProfile, ProfileRegistry
from repro.pipeline.spec import chain
from repro.simulation.batching import (
    module_throughput,
    plan_batch_sizes,
    provision_workers,
    slo_split,
)


def registry() -> ProfileRegistry:
    return ProfileRegistry(
        [
            ModelProfile("heavy", base=0.030, per_item=0.010, max_batch=16),
            ModelProfile("light", base=0.010, per_item=0.003, max_batch=16),
        ]
    )


def spec():
    return chain("p", ["heavy", "light"])


class TestSloSplit:
    def test_shares_proportional_to_single_request_duration(self):
        shares = slo_split(spec(), registry(), slo=0.40)
        # heavy d1 = 0.040, light d1 = 0.013 -> shares 40/53, 13/53.
        assert shares["m1"] == pytest.approx(0.40 * 0.040 / 0.053)
        assert shares["m2"] == pytest.approx(0.40 * 0.013 / 0.053)

    def test_shares_sum_to_slo(self):
        shares = slo_split(spec(), registry(), slo=0.40)
        assert sum(shares.values()) == pytest.approx(0.40)


class TestBatchPlan:
    def test_batches_fit_their_budget(self):
        reg = registry()
        plan = plan_batch_sizes(spec(), reg, slo=0.40, execution_fraction=0.5)
        shares = slo_split(spec(), reg, slo=0.40)
        for mid, batch in plan.items():
            model = spec()[mid].model
            assert reg.get(model).duration(batch) <= shares[mid] * 0.5 + 1e-9

    def test_minimum_batch_is_one_even_when_budget_too_small(self):
        plan = plan_batch_sizes(spec(), registry(), slo=0.05)
        assert all(b >= 1 for b in plan.values())

    def test_larger_slo_allows_larger_batches(self):
        small = plan_batch_sizes(spec(), registry(), slo=0.30)
        large = plan_batch_sizes(spec(), registry(), slo=0.60)
        assert all(large[m] >= small[m] for m in small)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            plan_batch_sizes(spec(), registry(), slo=0.4, execution_fraction=0.0)


class TestProvisioning:
    def test_enough_capacity_for_rate(self):
        reg = registry()
        plan = plan_batch_sizes(spec(), reg, slo=0.40)
        workers = provision_workers(spec(), reg, plan, rate=200.0)
        for mid, n in workers.items():
            model = spec()[mid].model
            cap = module_throughput(reg.get(model), plan[mid], n)
            assert cap >= 200.0

    def test_minimal_worker_count(self):
        reg = registry()
        plan = plan_batch_sizes(spec(), reg, slo=0.40)
        workers = provision_workers(spec(), reg, plan, rate=200.0)
        for mid, n in workers.items():
            if n > 1:
                model = spec()[mid].model
                cap = module_throughput(reg.get(model), plan[mid], n - 1)
                assert cap < 200.0  # one fewer would not suffice

    def test_ceiling_regression_exact_and_fractional_need(self):
        """Ceiling regression: an exact-integer worker need must not be
        over-provisioned, while any fractional need rounds up.

        Power-of-two costs make the division exact: one worker at batch 1
        serves 1 / (0.25 + 0.25) = 2 req/s precisely.
        """
        exact = ProfileRegistry(
            [ModelProfile("exact", base=0.25, per_item=0.25, max_batch=4)]
        )
        pipeline = chain("p", ["exact"])
        plan = {"m1": 1}
        assert module_throughput(exact.get("exact"), 1, 1) == 2.0
        # need = 3.0 exactly -> 3 workers, not 4.
        assert provision_workers(pipeline, exact, plan, rate=6.0) == {"m1": 3}
        # need = 2.5 -> rounds up to 3.
        assert provision_workers(pipeline, exact, plan, rate=5.0) == {"m1": 3}
        # need = 0.5 -> floor of one worker.
        assert provision_workers(pipeline, exact, plan, rate=1.0) == {"m1": 1}

    def test_zero_rate_rejected(self):
        reg = registry()
        plan = plan_batch_sizes(spec(), reg, slo=0.40)
        with pytest.raises(ValueError):
            provision_workers(spec(), reg, plan, rate=0.0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            module_throughput(registry().get("heavy"), 4, -1)
