"""Arrival-lane semantics: reserved sequence blocks and tie-breaking.

The engine guarantee under test: events scheduled through a lane fire at
the exact tie-breaking position eager pre-scheduling at lane-open time
would give them — after everything scheduled before the lane opened,
before everything scheduled after, lanes in opening order.
"""

from __future__ import annotations

import pytest

from repro.simulation.engine import ArrivalLane, Simulator


class TestArrivalLane:
    def test_tie_breaks_after_pre_open_events(self):
        # An event scheduled BEFORE the lane opened wins a same-time tie
        # (matches the old eager order: failures armed first, then the
        # trace pre-scheduled).
        sim = Simulator()
        order: list[str] = []
        sim.schedule(5.0, lambda: order.append("pre"))
        lane = sim.open_lane()
        lane.schedule(5.0, lambda t: order.append("lane"), 5.0)
        sim.schedule(5.0, lambda: order.append("post"))
        sim.run()
        assert order == ["pre", "lane", "post"]

    def test_lazy_equals_eager_ordering(self):
        # Scheduling lane events one at a time (from inside callbacks,
        # the pump pattern) produces the same firing order as scheduling
        # them all up front.
        def drive(lazy: bool) -> list[str]:
            sim = Simulator()
            order: list[str] = []
            sim.schedule(2.0, lambda: order.append("other@2"))
            lane = sim.open_lane()
            times = [1.0, 2.0, 2.0, 3.0]

            if lazy:
                it = iter(times)

                def fire(t: float) -> None:
                    order.append(f"lane@{t:g}")
                    nxt = next(it, None)
                    if nxt is not None:
                        lane.schedule(nxt, fire, nxt)

                first = next(it)
                lane.schedule(first, fire, first)
            else:
                for t in times:
                    lane.schedule(t, lambda t=t: order.append(f"lane@{t:g}"))
            sim.schedule(2.0, lambda: order.append("late@2"))
            sim.run()
            return order

        assert drive(lazy=True) == drive(lazy=False)

    def test_lanes_fire_in_opening_order(self):
        sim = Simulator()
        order: list[str] = []
        a = sim.open_lane()
        b = sim.open_lane()
        # Schedule through b first; a still wins the tie (opened first).
        b.schedule(1.0, lambda t: order.append("b"), 1.0)
        a.schedule(1.0, lambda t: order.append("a"), 1.0)
        sim.run()
        assert order == ["a", "b"]

    def test_monotonicity_enforced(self):
        sim = Simulator()
        lane = sim.open_lane()
        lane.schedule(5.0, lambda t: None, 5.0)
        with pytest.raises(ValueError):
            lane.schedule(4.0, lambda t: None, 4.0)

    def test_past_times_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        lane = sim.open_lane()
        with pytest.raises(ValueError):
            lane.schedule(5.0, lambda t: None, 5.0)

    def test_block_reservation_is_finite(self):
        sim = Simulator()
        lane = sim.open_lane()
        # Exhausting the block must fail loudly, not silently corrupt
        # the ordering; simulate by jumping the internal cursor.
        lane._k = ArrivalLane._SPAN
        with pytest.raises(OverflowError):
            lane.schedule(1.0, lambda t: None, 1.0)
