"""Tests for the reactive scaling engine."""

from __future__ import annotations

from repro.policies.naive import NaivePolicy
from repro.simulation.scaling import ReactiveScaler
from repro.workload.generators import step_trace
from repro.workload.replay import replay

from ..conftest import make_cluster, tiny_chain_app


def scaled_cluster(trace, **scaler_kw):
    app = tiny_chain_app(n=2, slo=0.5)
    cluster = make_cluster(NaivePolicy(), app=app, workers=1,
                           batch_plan={"m1": 4, "m2": 4})
    scaler = ReactiveScaler(cluster, **scaler_kw)
    scaler.start()
    replay(trace, cluster)
    return cluster, scaler


class TestScaleOut:
    def test_burst_triggers_scale_out_after_cold_start(self):
        trace = step_trace([(0.0, 20.0), (2.0, 300.0)], duration=14.0, seed=1)
        cluster, scaler = scaled_cluster(
            trace, interval=1.0, cold_start=3.0, max_workers=8
        )
        outs = [e for e in scaler.events if e.kind == "scale_out_done"]
        assert outs
        first_request = min(
            e.time for e in scaler.events if e.kind == "scale_out_requested"
        )
        assert outs[0].time >= first_request + 3.0  # cold start respected
        assert cluster.modules["m1"].n_workers > 1

    def test_scale_out_requested_events_increment_workers_after(self):
        """A 3-worker scale-out must log an incrementing live+pending count
        per request, not the same stale pre-loop count three times
        (regression test)."""
        trace = step_trace([(0.0, 1000.0)], duration=8.0, seed=7)
        _, scaler = scaled_cluster(
            trace, interval=1.0, cold_start=2.0, max_workers=16
        )
        by_tick: dict[tuple[float, str], list[int]] = {}
        for e in scaler.events:
            if e.kind == "scale_out_requested":
                by_tick.setdefault((e.time, e.module_id), []).append(
                    e.workers_after
                )
        multi = [counts for counts in by_tick.values() if len(counts) > 1]
        assert multi, "load never triggered a multi-worker scale-out"
        for counts in multi:
            assert counts == list(range(counts[0], counts[0] + len(counts)))

    def test_max_workers_cap(self):
        trace = step_trace([(0.0, 1000.0)], duration=10.0, seed=2)
        cluster, _ = scaled_cluster(
            trace, interval=1.0, cold_start=0.5, max_workers=3
        )
        assert all(m.n_workers <= 3 for m in cluster.modules.values())


class TestScaleIn:
    def test_scale_in_waits_for_patience(self):
        trace = step_trace(
            [(0.0, 300.0), (4.0, 5.0)], duration=30.0, seed=3
        )
        cluster, scaler = scaled_cluster(
            trace, interval=1.0, cold_start=0.5, max_workers=8,
            scale_in_patience=4,
        )
        ins = [e for e in scaler.events if e.kind == "scale_in"]
        assert ins  # eventually scaled in after the load dropped
        # Scale-in must not begin before patience ticks after the drop.
        assert min(e.time for e in ins) >= 4.0 + 4 * 1.0 - 1e-9

    def test_never_below_one_worker(self):
        trace = step_trace([(0.0, 5.0)], duration=20.0, seed=4)
        cluster, _ = scaled_cluster(trace, interval=1.0, cold_start=0.5)
        assert all(m.n_workers >= 1 for m in cluster.modules.values())


class TestDrainInteraction:
    def test_simulation_terminates_with_scaler_running(self):
        """stop_ticks() must also stop the scaler's tick loop, otherwise
        the post-trace drain never finishes (regression test)."""
        trace = step_trace([(0.0, 50.0)], duration=5.0, seed=5)
        cluster, scaler = scaled_cluster(trace, interval=1.0, cold_start=1.0)
        # replay() returned, so the event loop drained; the scaler must be
        # stopped and all requests accounted.
        assert scaler._stopped
        assert len(cluster.metrics.records) == len(trace)

    def test_pending_cold_starts_do_not_land_after_stop(self):
        """A cold start still pending when the scaler is stopped must not
        materialise a worker during drain (regression test)."""
        trace = step_trace([(0.0, 1000.0)], duration=3.0, seed=6)
        # cold_start far exceeds duration + drain: every requested worker
        # is still pending when stop_ticks() cancels the control plane.
        cluster, scaler = scaled_cluster(
            trace, interval=1.0, cold_start=60.0, max_workers=8
        )
        assert any(e.kind == "scale_out_requested" for e in scaler.events)
        assert not any(e.kind == "scale_out_done" for e in scaler.events)
        assert all(m.n_workers == 1 for m in cluster.modules.values())
