#!/usr/bin/env python
"""Define and serve a custom pipeline from a JSON spec.

Shows the integration surface a downstream user actually touches:
registering model profiles, loading the paper's JSON pipeline format,
building a cluster by hand, replaying a custom trace, and pulling
windowed metrics out of the collector.

Run:  python examples/custom_pipeline.py
"""

from __future__ import annotations

from repro import PardPolicy
from repro.metrics import normalized_goodput_series, summarize
from repro.pipeline import Application, ModelProfile, PipelineSpec, ProfileRegistry
from repro.simulation import Cluster, Simulator
from repro.workload import replay, step_trace

PIPELINE_JSON = """
{
  "name": "doc-analysis",
  "modules": [
    {"name": "layout_detector", "id": "layout", "pres": [], "subs": ["ocr", "figures"]},
    {"name": "ocr_model", "id": "ocr", "pres": ["layout"], "subs": ["summary"]},
    {"name": "figure_classifier", "id": "figures", "pres": ["layout"], "subs": ["summary"]},
    {"name": "summarizer", "id": "summary", "pres": ["ocr", "figures"], "subs": []}
  ]
}
"""


def main() -> None:
    registry = ProfileRegistry(
        [
            ModelProfile("layout_detector", base=0.020, per_item=0.007, max_batch=16),
            ModelProfile("ocr_model", base=0.030, per_item=0.010, max_batch=16),
            ModelProfile("figure_classifier", base=0.012, per_item=0.005, max_batch=16),
            ModelProfile("summarizer", base=0.025, per_item=0.008, max_batch=16),
        ]
    )
    spec = PipelineSpec.from_json(PIPELINE_JSON)
    app = Application(spec=spec, slo=0.450)
    print(f"pipeline {spec.name!r}: {len(spec)} modules, "
          f"paths from entry: {spec.paths_from('layout')}")

    cluster = Cluster(
        sim=Simulator(),
        app=app,
        policy=PardPolicy(seed=1),
        workers=2,
        registry=registry,
    )
    # 40 req/s for 30 s, then a 4x flash crowd for 10 s, then recovery.
    trace = step_trace(
        rates=[(0.0, 40.0), (30.0, 170.0), (40.0, 40.0)], duration=70.0, seed=1
    )
    replay(trace, cluster)

    summary = summarize(cluster.metrics, duration=trace.duration)
    print(f"\n{summary}")
    print("\nnormalized goodput in 5 s windows:")
    times, norm = normalized_goodput_series(cluster.metrics, window=5.0)
    for t, g in zip(times, norm):
        bar = "#" * int(40 * (g if g == g else 0))  # NaN-safe
        print(f"  t={t:5.1f}s {g:6.1%} {bar}")


if __name__ == "__main__":
    main()
