#!/usr/bin/env python
"""Quickstart: serve the live-video pipeline under four dropping policies.

Builds the paper's ``lv`` application (5 cascaded models, 500 ms SLO),
replays a bursty Twitter-like trace at ~90% of provisioned capacity, and
compares PARD against Nexus, Clipper++ and a no-dropping baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClipperPlusPlusPolicy,
    NaivePolicy,
    NexusPolicy,
    PardPolicy,
    run_experiment,
    standard_config,
)


def main() -> None:
    config = standard_config(
        app="lv", trace="tweet", duration=60.0, seed=7, utilization=0.9
    )
    print(f"workload: lv x tweet, base rate ~{config.resolve_base_rate():.0f} req/s")
    print(f"{'policy':12s} {'goodput':>9s} {'drop rate':>10s} {'invalid rate':>13s}")
    policies = [
        PardPolicy(seed=7),
        NexusPolicy(),
        ClipperPlusPlusPolicy(),
        NaivePolicy(),
    ]
    for policy in policies:
        result = run_experiment(config, policy)
        s = result.summary
        print(
            f"{result.policy_name:12s} {s.goodput:7.1f}/s "
            f"{s.drop_rate:10.2%} {s.invalid_rate:13.2%}"
        )


if __name__ == "__main__":
    main()
