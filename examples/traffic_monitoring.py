#!/usr/bin/env python
"""Traffic monitoring under a flash-crowd burst.

The ``tm`` pipeline (object detection -> face recognition -> text
recognition, 400 ms SLO) is hit by a Twitter-like trace whose rate doubles
abruptly mid-run — the paper's motivating scenario for proactive dropping.
The example prints where each policy drops requests along the pipeline
(the drop-too-late effect of Figure 2c) and the transient drop-rate peak.

Run:  python examples/traffic_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import NexusPolicy, PardPolicy, run_experiment, standard_config
from repro.metrics import drop_rate_series, drops_per_module


def main() -> None:
    config = standard_config(
        app="tm", trace="tweet", duration=90.0, seed=3, utilization=0.9
    )
    print("tm x tweet with a 2x mid-run burst\n")
    for policy in (PardPolicy(seed=3), NexusPolicy()):
        result = run_experiment(config, policy)
        s = result.summary
        shares = drops_per_module(result.collector, result.module_ids)
        times, rates = drop_rate_series(result.collector, window=5.0)
        peak = float(np.max(rates)) if len(rates) else 0.0
        print(f"{result.policy_name}")
        print(f"  goodput          {s.goodput:7.1f}/s")
        print(f"  avg drop rate    {s.drop_rate:8.2%}")
        print(f"  peak 5s drop     {peak:8.2%}")
        print(f"  wasted GPU time  {s.invalid_rate:8.2%}")
        bars = "  drops by module  "
        for mid in result.module_ids:
            bars += f"{mid}:{shares[mid]:>6.1%}  "
        print(bars)
        early = sum(shares[m] for m in result.module_ids[:2])
        print(f"  dropped in first two modules: {early:.1%}\n")


if __name__ == "__main__":
    main()
