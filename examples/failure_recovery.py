#!/usr/bin/env python
"""Machine failure and recovery under different dropping policies.

The paper motivates request dropping with "unpredictable events such as
workload bursts or machine failure" (§1): a failed machine removes
capacity instantly, and the backlog it leaves behind poisons subsequent
requests unless the system sheds load. This example kills one of two
workers of the live-video pipeline's entry module for six seconds and
compares how PARD, Nexus and Naive weather the outage.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import NaivePolicy, NexusPolicy, PardPolicy
from repro.experiments import ExperimentConfig, build_cluster
from repro.metrics import drop_rate_series, summarize
from repro.simulation import FailureEvent, FailureInjector
from repro.workload import poisson_trace, replay


def main() -> None:
    trace = poisson_trace(rate=130.0, duration=45.0, seed=2)
    events = [FailureEvent(time=15.0, module_id="m1", workers=1, downtime=6.0)]
    print("lv pipeline, 130 req/s, worker failure at t=15s for 6s\n")
    for policy in (PardPolicy(seed=2), NexusPolicy(), NaivePolicy()):
        config = ExperimentConfig(
            app="lv", trace="tweet", custom_trace=trace,
            workers={"m1": 2, "m2": 2, "m3": 1, "m4": 1, "m5": 2}, seed=2,
        )
        cluster = build_cluster(config, policy, trace)
        injector = FailureInjector(cluster, events=list(events))
        injector.schedule_all()
        replay(trace, cluster)
        summary = summarize(cluster.metrics, duration=trace.duration)
        times, rates = drop_rate_series(cluster.metrics, window=3.0)
        outage = [r for t, r in zip(times, rates) if 15.0 <= t < 24.0]
        after = [r for t, r in zip(times, rates) if 27.0 <= t < 42.0]
        print(f"{policy.name}")
        print(f"  goodput            {summary.goodput:7.1f}/s")
        print(f"  wasted GPU time    {summary.invalid_rate:8.2%}")
        print(f"  drops during outage  {max(outage):8.2%} (peak 3s window)")
        print(f"  drops after recovery {max(after):8.2%} (peak 3s window)")
        for line in injector.log:
            print(f"    {line}")
        print()


if __name__ == "__main__":
    main()
