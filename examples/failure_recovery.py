#!/usr/bin/env python
"""Machine failure and recovery under different dropping policies.

The paper motivates request dropping with "unpredictable events such as
workload bursts or machine failure" (§1): a failed machine removes
capacity instantly, and the backlog it leaves behind poisons subsequent
requests unless the system sheds load. This example kills one of two
workers of the live-video pipeline's entry module for six seconds and
compares how PARD, Nexus and Naive weather the outage.

The whole experiment is one declarative :class:`~repro.Scenario` — the
workload, the worker plan and the failure schedule are plain data, so the
same spec could be saved as JSON (``scenario.save("outage.json")``), run
via ``repro scenario run --file outage.json`` or swept over seeds in a
process pool.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import Scenario, run_scenario
from repro.experiments import AppSpec, TraceSpec
from repro.metrics import drop_rate_series
from repro.simulation import FailureEvent

SCENARIO = Scenario(
    name="lv-outage",
    app=AppSpec(name="lv"),
    trace=TraceSpec(name="poisson", base_rate=130.0, duration=45.0, seed=2),
    workers={"m1": 2, "m2": 2, "m3": 1, "m4": 1, "m5": 2},
    seed=2,
    failures=(
        FailureEvent(time=15.0, module_id="m1", workers=1, downtime=6.0),
    ),
)


def main() -> None:
    print("lv pipeline, 130 req/s, worker failure at t=15s for 6s\n")
    for policy in ("PARD", "Nexus", "Naive"):
        result = run_scenario(replace(SCENARIO, policy=policy))
        summary = result.summary
        times, rates = drop_rate_series(result.collector, window=3.0)
        outage = [r for t, r in zip(times, rates) if 15.0 <= t < 24.0]
        after = [r for t, r in zip(times, rates) if 27.0 <= t < 42.0]
        print(f"{result.policy_name}")
        print(f"  goodput            {summary.goodput:7.1f}/s")
        print(f"  wasted GPU time    {summary.invalid_rate:8.2%}")
        print(f"  drops during outage  {max(outage):8.2%} (peak 3s window)")
        print(f"  drops after recovery {max(after):8.2%} (peak 3s window)")
        for line in result.failure_log:
            print(f"    {line}")
        print()


if __name__ == "__main__":
    main()
