#!/usr/bin/env python
"""Offline profiling: from timed forward passes to a serving deployment.

PARD profiles every model before startup to learn its batch-latency curve
d(B); all online estimation then runs off the profile. This example times
a noisy synthetic device, fits the affine profile, registers it, plans
batch sizes against an SLO, and serves a short workload with the fitted
profiles end to end.

Run:  python examples/offline_profiling.py
"""

from __future__ import annotations

from repro import PardPolicy
from repro.metrics import summarize
from repro.pipeline import Application, ProfileRegistry, chain
from repro.profiling import OfflineProfiler, SyntheticGpu
from repro.simulation import Cluster, Simulator, plan_batch_sizes
from repro.workload import poisson_trace, replay

DEVICES = {
    "detector": SyntheticGpu(base=0.028, per_item=0.009, jitter=0.04),
    "classifier": SyntheticGpu(base=0.014, per_item=0.005, jitter=0.04),
    "tracker": SyntheticGpu(base=0.010, per_item=0.004, jitter=0.04),
}


def main() -> None:
    registry = ProfileRegistry()
    print("offline profiling (30 timed passes per batch size):")
    for name, gpu in DEVICES.items():
        profiler = OfflineProfiler(repeats=30, seed=1)
        profiler.measure(gpu)
        profile = profiler.fit(name, max_batch=gpu.max_batch)
        registry.register(profile)
        err = profiler.fit_error(gpu, profile)
        print(f"  {name:11s} fitted d(B) = {profile.base * 1000:.1f}ms "
              f"+ {profile.per_item * 1000:.2f}ms*B  "
              f"(max fit error {err:.1%})")

    app = Application(spec=chain("profiled", list(DEVICES)), slo=0.350)
    plan = plan_batch_sizes(app.spec, registry, app.slo)
    print(f"\nbatch plan for a {app.slo * 1000:.0f}ms SLO: "
          + ", ".join(f"{m}={b}" for m, b in plan.items()))

    cluster = Cluster(
        sim=Simulator(), app=app, policy=PardPolicy(seed=1),
        workers=2, registry=registry, batch_plan=plan,
    )
    trace = poisson_trace(rate=90.0, duration=30.0, seed=1)
    replay(trace, cluster)
    print(f"\nserved 90 req/s for 30s: "
          f"{summarize(cluster.metrics, duration=trace.duration)}")


if __name__ == "__main__":
    main()
