#!/usr/bin/env python
"""DAG-style live video analysis (the paper's ``da`` application).

Person detection fans out to pose recognition and face recognition in
parallel; expression recognition joins the branches.  PARD estimates the
end-to-end latency as the maximum over DAG paths, and a drop on either
branch invalidates the sibling branch's computation — this example
measures that cross-branch waste.

Run:  python examples/dag_video_analysis.py
"""

from __future__ import annotations

from repro import NexusPolicy, PardPolicy, run_experiment, standard_config
from repro.simulation.request import RequestStatus


def main() -> None:
    config = standard_config(
        app="da", trace="azure", duration=90.0, seed=11, utilization=0.85
    )
    app = config.resolve_app()
    print("da pipeline structure:")
    for m in app.spec.modules:
        arrow = f" -> {list(m.subs)}" if m.subs else " (exit)"
        print(f"  {m.id} [{m.model}]{arrow}")
    print(f"SLO: {app.slo * 1000:.0f} ms\n")

    for policy in (PardPolicy(seed=11), NexusPolicy()):
        result = run_experiment(config, policy)
        s = result.summary
        # Wasted cross-branch work: GPU time burnt by requests that were
        # dropped after executing at least one module.
        partial = [
            r
            for r in result.collector.records
            if r.status is RequestStatus.DROPPED and r.visits
        ]
        wasted = sum(r.gpu_time for r in partial)
        print(f"{result.policy_name}")
        print(f"  goodput                {s.goodput:7.1f}/s")
        print(f"  drop rate              {s.drop_rate:8.2%}")
        print(f"  invalid rate           {s.invalid_rate:8.2%}")
        print(f"  partially-executed drops: {len(partial)} "
              f"({wasted:.2f}s GPU wasted)\n")


if __name__ == "__main__":
    main()
