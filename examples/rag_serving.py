#!/usr/bin/env python
"""Proactive dropping in a RAG workflow (paper §7).

A four-stage retrieval-augmented-generation pipeline — query rewrite,
parallel retrieve + web search, answer generation — serves queries under a
5-second time-to-first-token SLO.  Compares the reactive baseline against
PARD-style proactive dropping and the oracle output-length predictor.

Run:  python examples/rag_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.rag import RAG_POLICIES, RagPipeline


def main() -> None:
    rate = 14.0  # queries/second, slightly above generate-stage capacity
    duration = 120.0
    rng = np.random.default_rng(42)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=int(rate * duration)))

    print(f"RAG workflow at {rate:.0f} qps, TTFT SLO 5 s\n")
    print(f"{'policy':12s} {'drop rate':>10s} {'goodput':>9s}")
    results = {}
    for name, policy_cls in RAG_POLICIES.items():
        pipeline = RagPipeline(policy_cls(), seed=5)
        for t in arrivals:
            pipeline.submit_at(float(t))
        pipeline.run()
        results[name] = pipeline
        print(
            f"{name:12s} {pipeline.drop_rate():10.1%} "
            f"{pipeline.goodput_fraction():9.1%}"
        )

    print("\nper-stage latency (median / p95, proactive run):")
    samples = results["proactive"].stage_latency_samples()
    for stage, xs in samples.items():
        if not xs:
            continue
        arr = np.asarray(xs)
        print(
            f"  {stage:9s} {np.median(arr) * 1000:7.0f} ms / "
            f"{np.quantile(arr, 0.95) * 1000:7.0f} ms"
        )


if __name__ == "__main__":
    main()
