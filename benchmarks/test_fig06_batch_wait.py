"""Figure 6: probability density of aggregated batch wait per module.

Verifies the central-limit concentration the State Planner exploits and
regenerates the paper's worked example: with lambda = 0.1 and equal
durations, w_k / sum(d) = 0.31, 0.28, 0.22, 0.10 for 4, 3, 2, 1 cascaded
modules.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch_wait import BatchWaitEstimator, irwin_hall_quantile

PAPER_FRACTIONS = {4: 0.31, 3: 0.28, 2: 0.22, 1: 0.10}


def test_fig6_quantiles_match_paper(benchmark):
    d = 0.05  # equal per-module duration

    def compute():
        est = BatchWaitEstimator(lam=0.1, samples=100_000, seed=0)
        return {n: est.estimate([d] * n) for n in (1, 2, 3, 4)}

    w = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nFigure 6: w_k at lambda=0.1 (4-module pipeline, equal d)")
    print(f"{'modules':>8s} {'w_k':>10s} {'w_k/sum d':>10s} {'paper':>7s}")
    for n in (4, 3, 2, 1):
        frac = w[n] / (n * d)
        print(f"{n:8d} {w[n] * 1000:8.1f}ms {frac:10.2f} {PAPER_FRACTIONS[n]:7.2f}")
        np.testing.assert_allclose(frac, PAPER_FRACTIONS[n], atol=0.015)


def test_fig6_distribution_concentrates(benchmark):
    """More cascaded modules -> aggregated wait concentrates near half its
    support (CLT), i.e. the coefficient of variation shrinks."""
    rng = np.random.default_rng(1)

    def sample_cv(n: int) -> float:
        total = sum(rng.uniform(0, 1.0, 50_000) for _ in range(n))
        return float(total.std() / total.mean())

    cvs = benchmark.pedantic(
        lambda: {n: sample_cv(n) for n in (1, 2, 3, 4, 6, 8)},
        rounds=1,
        iterations=1,
    )
    print("\nFigure 6 (shape): CV of aggregated batch wait vs cascade depth")
    for n, cv in cvs.items():
        print(f"  {n} modules: CV={cv:.3f}")
    depths = sorted(cvs)
    for a, b in zip(depths, depths[1:]):
        assert cvs[b] < cvs[a]


def test_fig6_closed_form_agrees_with_sampler(benchmark):
    est = BatchWaitEstimator(lam=0.1, samples=200_000, seed=2)
    durations = [0.08, 0.05, 0.06]

    sampled = benchmark.pedantic(
        lambda: est.estimate(durations), rounds=1, iterations=1
    )
    # Equal-duration Irwin-Hall bounds bracket the unequal-duration value.
    lo = min(durations) * irwin_hall_quantile(0.1, 3)
    hi = max(durations) * irwin_hall_quantile(0.1, 3)
    print(f"\nsampled w={sampled * 1000:.1f}ms, Irwin-Hall bracket "
          f"[{lo * 1000:.1f}, {hi * 1000:.1f}]ms")
    assert lo <= sampled <= hi
