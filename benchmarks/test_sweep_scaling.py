"""Sweep subsystem scaling: parallel fan-out vs the serial runner.

Runs the same 8-cell grid serially and through a 4-worker process pool,
asserting the summaries are bitwise identical (same seeds => same metrics,
regardless of where the cell executed).  The wall-clock speedup is
reported; it is only *asserted* on multi-core machines, since a process
pool cannot beat serial execution on one core.
"""

from __future__ import annotations

import os
import time

from repro.experiments.sweep import run_sweep, sweep_grid

from .conftest import BENCH_SEED

GRID_KW = dict(duration=20.0, scaling=False)


def _grid():
    return sweep_grid(
        ["lv", "tm"], ["tweet", "wiki"], ["PARD", "Naive"],
        seeds=[BENCH_SEED], **GRID_KW,
    )


def test_sweep_parallel_matches_serial_and_scales(benchmark):
    cells = _grid()
    assert len(cells) == 8

    t0 = time.perf_counter()
    serial = run_sweep(cells, workers=1)
    t_serial = time.perf_counter() - t0

    def parallel_sweep():
        return run_sweep(cells, workers=4)

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(parallel_sweep, rounds=1, iterations=1)
    t_parallel = time.perf_counter() - t0

    assert all(r.ok for r in serial), [r.error for r in serial if not r.ok]
    assert all(r.ok for r in parallel), [r.error for r in parallel if not r.ok]
    for a, b in zip(serial, parallel):
        assert a.summary == b.summary, (a.cell.label(), a.summary, b.summary)

    cpus = os.cpu_count() or 1
    speedup = t_serial / max(t_parallel, 1e-9)
    print(f"\n8-cell sweep: serial {t_serial:.1f}s, 4 workers "
          f"{t_parallel:.1f}s ({speedup:.2f}x on {cpus} CPUs)")
    # Reported, not asserted: wall-clock scaling depends on free cores and
    # the process start method (spawn pays ~1s/worker re-importing numpy),
    # so a hard bound would fail spuriously on loaded or spawn-start
    # machines.  The contract this suite *enforces* is the bitwise match
    # above; the printed speedup is the evidence on capable hardware.
