"""Extension benchmark: token-flow joins on a re-merging diamond DAG.

The programmatic twin of ``examples/scenarios/diamond_merge.json``: two
diamonds in sequence (m1 -> {a, b} -> j1 -> {c, d} -> j2).  Path-counting
join accounting deadlocked on this shape — it demanded three tokens at j2
when only two can ever arrive — so the whole workload is a regression
gate for the token-flow lifecycle: every submitted request must reach a
terminal state under every system, with each join executing exactly once
per completed request, statically and under per-request dynamic routing.
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.runner import ExperimentConfig, build_cluster, run_experiment
from repro.metrics import summarize
from repro.pipeline.applications import Application
from repro.pipeline.spec import ModuleSpec, PipelineSpec
from repro.policies.naive import NaivePolicy
from repro.simulation.request import RequestStatus
from repro.simulation.routing import ProbabilisticRouter
from repro.workload.replay import replay

from .conftest import BENCH_SEED

SYSTEMS = ("PARD", "Clipper++", "Nexus", "Naive")


def diamond_app(slo: float = 0.5) -> Application:
    spec = PipelineSpec(
        name="diamond-of-diamonds",
        modules=[
            ModuleSpec("m1", "object_detection", subs=("a", "b")),
            ModuleSpec("a", "face_recognition", pres=("m1",), subs=("j1",)),
            ModuleSpec("b", "text_recognition", pres=("m1",), subs=("j1",)),
            ModuleSpec("j1", "person_detection", pres=("a", "b"),
                       subs=("c", "d")),
            ModuleSpec("c", "expression_recognition", pres=("j1",),
                       subs=("j2",)),
            ModuleSpec("d", "pose_recognition", pres=("j1",), subs=("j2",)),
            ModuleSpec("j2", "eye_tracking", pres=("c", "d")),
        ],
    )
    return Application(spec=spec, slo=slo)


def _config(seed: int = BENCH_SEED) -> ExperimentConfig:
    return ExperimentConfig(
        app="diamond", custom_app=diamond_app(), trace="tweet",
        base_rate=40.0, duration=30.0, seed=seed, workers=1,
    )


def _check_token_invariants(collector) -> None:
    """Every request terminal exactly once; joins fire once per completion."""
    rids = [r.rid for r in collector.records]
    assert len(rids) == len(set(rids))
    for record in collector.records:
        assert record.status is not RequestStatus.IN_FLIGHT
        visited = Counter(v.module_id for v in record.visits)
        assert all(n == 1 for n in visited.values())
        if record.status is RequestStatus.COMPLETED:
            # A completed request merged at both joins, exactly once each.
            assert visited["j1"] == 1 and visited["j2"] == 1


def test_diamond_merge_systems(benchmark):
    def sweep():
        return {
            system: run_experiment(_config(), system)
            for system in SYSTEMS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nDiamond-of-diamonds (tweet): goodput / drop / invalid")
    for system, result in results.items():
        s = result.summary
        print(f"  {system:10s} goodput={s.goodput:6.1f}/s "
              f"drop={s.drop_rate:6.2%} invalid={s.invalid_rate:6.2%}")
        _check_token_invariants(result.collector)
        # The join deadlock starved completion entirely; even in this
        # overloaded regime a healthy lifecycle completes a solid share
        # and accounts for the rest as explicit drops.
        explicit_drops = sum(
            1 for r in result.collector.records
            if r.status is RequestStatus.DROPPED
        )
        assert s.completed + explicit_drops == s.total
        assert s.completed > 0.25 * s.total
        # No token state may outlive the run.
        cluster = result.cluster
        assert not cluster._join_arrived
        assert not cluster._join_expected


def test_diamond_merge_dynamic_paths():
    """Per-request single-branch routing at both forks stays accounted."""
    config = _config()
    trace = config.resolve_trace()
    cluster = build_cluster(config, NaivePolicy(), trace)
    cluster.router = ProbabilisticRouter(seed=BENCH_SEED)
    replay(trace, cluster)
    summary = summarize(cluster.metrics, duration=trace.duration)
    assert summary.total == len(trace.arrivals)
    _check_token_invariants(cluster.metrics)
    assert not cluster._join_arrived
    assert not cluster._join_expected
