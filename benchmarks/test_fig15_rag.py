"""Figure 15 + Table 2: proactive dropping in the RAG workflow (§7).

(a) normalized goodput / drop rate of reactive vs proactive vs predict
    (oracle output length) policies — paper: 39% / 17% / 11% drops;
(b) per-stage latency distributions showing the domain-specific shapes:
    no batch wait for continuous batching, long-tail search, cheap
    retrieve, input-length-dependent generate prefill.
"""

from __future__ import annotations

import numpy as np

from repro.rag import RAG_POLICIES, RagPipeline

RATE = 14.0
DURATION = 120.0


def _run_all(seed: int = 5) -> dict[str, RagPipeline]:
    rng = np.random.default_rng(42)
    arrivals = np.cumsum(rng.exponential(1.0 / RATE, size=int(RATE * DURATION)))
    out = {}
    for name, policy_cls in RAG_POLICIES.items():
        pipe = RagPipeline(policy_cls(), seed=seed)
        for t in arrivals:
            pipe.submit_at(float(t))
        pipe.run()
        out[name] = pipe
    return out


def test_fig15a_rag_drop_rates(benchmark):
    pipes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print("\nFigure 15a: RAG drop rate / normalized goodput")
    for name in ("reactive", "proactive", "predict"):
        p = pipes[name]
        print(f"  {name:10s} drops={p.drop_rate():6.1%} "
              f"goodput={p.goodput_fraction():6.1%}")
    # Paper ordering: predict < proactive < reactive drops.
    assert pipes["proactive"].drop_rate() < pipes["reactive"].drop_rate()
    assert pipes["predict"].drop_rate() <= pipes["proactive"].drop_rate() + 0.02
    # The gap must be substantial (paper: 39% -> 17%).
    assert (
        pipes["reactive"].drop_rate() - pipes["proactive"].drop_rate() > 0.08
    )


def test_fig15b_stage_latency_distributions(benchmark):
    pipes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    samples = pipes["proactive"].stage_latency_samples()
    print("\nFigure 15b: per-stage latency percentiles (ms)")
    stats = {}
    for stage in ("rewrite", "retrieve", "search", "generate"):
        arr = np.asarray(samples[stage])
        p50, p95, p99 = (
            float(np.quantile(arr, q)) for q in (0.5, 0.95, 0.99)
        )
        stats[stage] = (p50, p95, p99)
        print(f"  {stage:9s} p50={p50 * 1000:7.0f} p95={p95 * 1000:7.0f} "
              f"p99={p99 * 1000:7.0f}")
    # Domain shapes (the paper's observations):
    # retrieve is cheap and tight; search has a heavy tail; rewrite's
    # output-length variance dominates its spread.
    assert stats["retrieve"][1] < stats["search"][0]  # p95 retrieve < p50 search
    assert stats["search"][2] > 4 * stats["search"][0]  # long tail
    assert stats["rewrite"][2] > 3 * stats["rewrite"][0]  # output-length spread
