"""Figure 2: why reactive dropping fails (motivation experiments).

(a) minimum normalized goodput across time-window sizes, lv-tweet;
(b) drop rate at the minimum-goodput window;
(c) percentage of dropped requests per module for the reactive policy
    across six workloads;
(d) transient drop rate of the reactive policy over time.
"""

from __future__ import annotations

from repro.metrics import (
    drop_rate_at_min_goodput,
    drop_rate_series,
    drops_per_module,
    min_normalized_goodput,
)

from .conftest import fmt_pct

WINDOWS = (5.0, 10.0, 25.0)
SYSTEMS = ("PARD", "Nexus", "Clipper++", "Naive")


def test_fig2ab_min_goodput_and_drop_rate(benchmark, workload_sweep):
    def sweep():
        workload_sweep.prefetch([("lv", "tweet", s) for s in SYSTEMS])
        return {s: workload_sweep("lv", "tweet", s) for s in SYSTEMS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFigure 2a: minimum normalized goodput (lv-tweet)")
    header = f"{'window':>8s}" + "".join(f"{s:>12s}" for s in SYSTEMS)
    print(header)
    min_goodputs: dict[str, list[float]] = {s: [] for s in SYSTEMS}
    for w in WINDOWS:
        row = f"{w:7.0f}s"
        for s in SYSTEMS:
            g = min_normalized_goodput(results[s].collector, w)
            min_goodputs[s].append(g)
            row += f"{g:12.2f}"
        print(row)
    print("\nFigure 2b: drop rate at the minimum-goodput window")
    print(header)
    for w in WINDOWS:
        row = f"{w:7.0f}s"
        for s in SYSTEMS:
            row += f"{drop_rate_at_min_goodput(results[s].collector, w):12.2%}"
        print(row)
    # Reproduction check: PARD's worst window dominates the reactive
    # systems' (the paper's headline motivation).
    for i in range(len(WINDOWS)):
        assert min_goodputs["PARD"][i] >= min_goodputs["Nexus"][i]
        assert min_goodputs["PARD"][i] >= min_goodputs["Clipper++"][i]


def test_fig2c_reactive_drops_cluster_late(benchmark, workload_sweep):
    workloads = [(a, t) for a in ("lv", "tm", "gm") for t in ("tweet", "wiki")]

    def sweep():
        workload_sweep.prefetch([(a, t, "Nexus") for a, t in workloads])
        return {(a, t): workload_sweep(a, t, "Nexus") for a, t in workloads}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFigure 2c: % of drops per module, reactive (Nexus) policy")
    late_shares = []
    for (a, t), res in results.items():
        shares = drops_per_module(res.collector, res.module_ids)
        n = len(res.module_ids)
        late = sum(shares[m] for m in res.module_ids[n // 2:])
        late_shares.append(late)
        row = " ".join(fmt_pct(shares[m]) for m in res.module_ids)
        print(f"  {a}-{t:6s} [{row}]  latter-half={late:.0%}")
    # Paper: 57.1%-97.2% of reactive drops land in the latter half of the
    # pipeline.  Require that the effect shows for most workloads.
    assert sum(1 for s in late_shares if s > 0.4) >= len(late_shares) // 2


def test_fig2d_transient_drop_rate(benchmark, workload_sweep):
    result = benchmark.pedantic(
        lambda: workload_sweep("lv", "tweet", "Clipper++"), rounds=1, iterations=1
    )
    times, rates = drop_rate_series(result.collector, window=2.0)
    print("\nFigure 2d: transient drop rate (Clipper++, lv-tweet, 2s windows)")
    for t, r in zip(times, rates):
        if r > 0.02:
            print(f"  t={t:5.1f}s  {r:6.1%} {'#' * int(40 * r)}")
    peak = float(rates.max()) if len(rates) else 0.0
    print(f"  peak transient drop rate: {peak:.1%}")
    # The burst must push the reactive policy's transient drop rate far
    # above its average (the paper reports >95% peaks on a 2x rate step).
    assert peak > 2.0 * result.summary.drop_rate
