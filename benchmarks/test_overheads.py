"""§5.4 overhead analysis: DEPQ operations, state sync, wait estimation.

The paper reports O(log n) DEPQ put/get adding <0.16% request latency,
<3.2 kbps control-plane traffic per worker, and asynchronous batch-wait
distribution updates of complexity O(M * N).  These are true wall-clock
microbenchmarks (multiple rounds), unlike the figure-reproduction runs.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch_wait import BatchWaitEstimator
from repro.core.depq import MinMaxHeap
from repro.core.state_planner import StatePlanner
from repro.policies.naive import NaivePolicy

from tests.conftest import make_cluster, tiny_chain_app


def test_depq_push_pop_throughput(benchmark):
    keys = np.random.default_rng(0).random(1024).tolist()

    def workload():
        heap: MinMaxHeap[float] = MinMaxHeap()
        for k in keys:
            heap.push(k, k)
        for i in range(512):
            if i % 2:
                heap.pop_min()
            else:
                heap.pop_max()
        return heap

    heap = benchmark(workload)
    assert len(heap) == 512
    per_op = benchmark.stats.stats.mean / (1024 + 512)
    print(f"\nDEPQ mean cost per operation: {per_op * 1e6:.2f} us "
          f"(queue length 1024)")
    # Far below a per-request latency budget of hundreds of ms.
    assert per_op < 1e-3


def test_depq_scaling_is_logarithmic(benchmark):
    """Cost per op grows mildly with queue size (log n, not linear)."""

    def cost(n: int) -> float:
        import time

        heap: MinMaxHeap[int] = MinMaxHeap()
        for i in range(n):
            heap.push(float(i % 97), i)
        t0 = time.perf_counter()
        ops = 2000
        for i in range(ops):
            heap.push(float(i % 89), i)
            if i % 2:
                heap.pop_min()
            else:
                heap.pop_max()
        return (time.perf_counter() - t0) / ops

    results = benchmark.pedantic(
        lambda: {n: cost(n) for n in (100, 10_000)}, rounds=1, iterations=1
    )
    print(f"\nDEPQ per-op cost: n=100 -> {results[100] * 1e6:.2f}us, "
          f"n=10000 -> {results[10_000] * 1e6:.2f}us")
    # 100x more elements must cost far less than 100x per op.
    assert results[10_000] < results[100] * 10


def test_state_sync_payload_size(benchmark):
    cluster = make_cluster(NaivePolicy(), app=tiny_chain_app(n=3))
    planner = StatePlanner(samples=1000)
    planner.bind(cluster)

    payload = benchmark(planner.sync_payload_bytes)
    per_second_bits = payload * 8  # one sync per second
    print(f"\nstate-sync payload: {payload} bytes/sync = "
          f"{per_second_bits / 1000:.2f} kbps")
    # Paper: < 3.2 kbps per worker.
    assert per_second_bits < 10_000


def test_batch_wait_update_cost(benchmark):
    """The O(M*N) distribution update must be cheap enough to run every
    sync tick (paper: asynchronous, no added request latency)."""
    est = BatchWaitEstimator(lam=0.1, samples=10_000, seed=0)
    durations = [0.05] * 5
    observed = [list(np.random.default_rng(i).uniform(0, 0.05, 200))
                for i in range(5)]

    benchmark(est.estimate, durations, observed)
    mean = benchmark.stats.stats.mean
    print(f"\nbatch-wait estimate (M=10k, N=5): {mean * 1000:.2f} ms")
    assert mean < 0.25  # well within a 1 s sync interval


def test_drop_decision_cost(benchmark):
    """End-to-end cost of one PARD drop decision (estimate + compare)."""
    from repro.core.policy import PardPolicy
    from repro.interfaces import DropContext
    from repro.simulation.request import Request

    policy = PardPolicy(samples=1000, seed=0)
    cluster = make_cluster(policy, app=tiny_chain_app(n=3))
    policy.on_tick(0.0)
    module = cluster.modules["m1"]
    request = Request(sent_at=0.0, slo=0.3)
    ctx = DropContext(
        request=request,
        module=module,
        worker=module.workers[0],
        now=0.01,
        expected_start=0.02,
        batch_duration=module.planned_duration,
        slo=0.3,
    )

    benchmark(policy.should_drop, ctx)
    mean = benchmark.stats.stats.mean
    print(f"\nPARD drop decision: {mean * 1e6:.2f} us")
    # Negligible versus a ~300 ms SLO (paper: < 0.16% added latency).
    assert mean < 0.3 * 0.0016
