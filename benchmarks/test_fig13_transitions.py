"""Figure 13: load factor and HBF/LBF transitions, PARD vs PARD-instant.

The delayed transition (hysteresis band 1 +/- eps, with eps derived from
workload smoothness) must switch modes substantially less often than the
instant variant while tracking the same load signal.
"""

from __future__ import annotations

from repro.experiments import run_experiment, standard_config
from repro.policies.ablations import ABLATIONS

from .conftest import BENCH_DURATION, BENCH_SEED


def test_fig13_transition_counts(benchmark):
    config = standard_config(
        "lv", "tweet", seed=BENCH_SEED, duration=BENCH_DURATION
    )

    def both():
        return (
            run_experiment(config, ABLATIONS["PARD"](seed=BENCH_SEED)),
            run_experiment(config, ABLATIONS["PARD-instant"](seed=BENCH_SEED)),
        )

    pard, instant = benchmark.pedantic(both, rounds=1, iterations=1)

    print("\nFigure 13: priority-mode transitions over the run")
    for label, res in (("PARD", pard), ("PARD-instant", instant)):
        ctrl = res.cluster.policy.priority
        # Ignore the initial mode assignment of each module.
        switches = [t for t in ctrl.transitions if t.time > 0]
        print(f"  {label:13s} transitions={len(switches):3d} "
              f"drop={res.summary.drop_rate:.2%} "
              f"goodput={res.summary.goodput:.1f}/s")
        by_mode = {}
        for t in switches:
            by_mode[t.mode] = by_mode.get(t.mode, 0) + 1
        print(f"                per-mode: {by_mode}")

    pard_ctrl = pard.cluster.policy.priority
    instant_ctrl = instant.cluster.policy.priority

    # Show the m1 load-factor track with mode annotations.
    print("\n  m1 load factor (PARD):")
    track = [(t, mu) for (t, mid, mu) in pard_ctrl.load_history if mid == "m1"]
    for t, mu in track[:: max(1, len(track) // 20)]:
        bar = "#" * int(20 * min(mu, 2.0))
        print(f"    t={t:5.1f}s mu={mu:5.2f} {bar}")

    pard_switches = [t for t in pard_ctrl.transitions if t.time > 0]
    instant_switches = [t for t in instant_ctrl.transitions if t.time > 0]
    # The hysteresis band must suppress flapping.
    assert len(pard_switches) <= len(instant_switches)
    # Both controllers must actually use both modes on this bursty trace.
    assert {t.mode for t in instant_switches} == {"hbf", "lbf"}
    # Epsilon is adaptive: it must be non-zero once the workload fluctuates.
    assert any(t.epsilon > 0 for t in pard_switches + pard_ctrl.transitions)
