"""Figure 12: latency-budget behaviour inside the pipeline (lv-tweet).

(a) consumed latency budget per module for SLO-compliant requests;
(b) CDF of end-to-end queueing delay, batch wait and inference duration —
    batch wait must show far greater variance than the other components;
(c) queueing delay per module during the workload burst, PARD vs FCFS;
(d) remaining latency budget of consecutive requests at mid-pipeline
    modules — highly variable and time-independent.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_experiment, standard_config
from repro.metrics import consumed_budget_per_module, latency_component_cdf
from repro.policies.ablations import ABLATIONS

from .conftest import BENCH_DURATION, BENCH_SEED


def _run(name: str):
    config = standard_config("lv", "tweet", seed=BENCH_SEED, duration=BENCH_DURATION)
    return run_experiment(config, ABLATIONS[name](seed=BENCH_SEED))


def test_fig12a_consumed_budget_per_module(benchmark):
    result = benchmark.pedantic(lambda: _run("PARD"), rounds=1, iterations=1)
    budgets = consumed_budget_per_module(result.collector, result.module_ids)
    print("\nFigure 12a: mean consumed budget per module (good requests)")
    total = 0.0
    for mid in result.module_ids:
        total += budgets[mid]
        print(f"  {mid}: {budgets[mid] * 1000:6.1f} ms (cumulative "
              f"{total * 1000:6.1f} ms)")
    slo = result.config.resolve_app().slo
    print(f"  SLO: {slo * 1000:.0f} ms")
    assert 0 < total <= slo  # good requests stay within budget on average


def test_fig12b_latency_component_cdfs(benchmark):
    result = benchmark.pedantic(lambda: _run("PARD"), rounds=1, iterations=1)
    print("\nFigure 12b: CDF percentiles of end-to-end latency components")
    stats = {}
    for comp in ("queueing", "wait", "exec"):
        xs, ps = latency_component_cdf(result.collector, comp)
        pct = {
            p: float(np.interp(p, ps, xs)) for p in (0.25, 0.5, 0.75, 0.95)
        }
        spread = pct[0.95] - pct[0.25]
        stats[comp] = (pct, spread)
        print(f"  sum {comp:9s}: p50={pct[0.5] * 1000:6.1f}ms "
              f"p95={pct[0.95] * 1000:6.1f}ms spread={spread * 1000:6.1f}ms")
    # Batch wait must be the dominant source of per-request variability
    # relative to the fixed execution durations (the paper's argument for
    # estimating w_k rather than assuming a constant).
    assert stats["wait"][1] > stats["exec"][1]


def test_fig12c_queueing_under_burst(benchmark):
    def both():
        return _run("PARD"), _run("PARD-FCFS")

    pard, fcfs = benchmark.pedantic(both, rounds=1, iterations=1)
    print("\nFigure 12c: mean queueing delay per module (burst region)")

    def per_module_queueing(result):
        out = {}
        for mid in result.module_ids:
            qs = [
                v.queueing_delay
                for r in result.collector.records
                for v in r.visits
                if v.module_id == mid
            ]
            out[mid] = float(np.mean(qs)) if qs else 0.0
        return out

    q_pard = per_module_queueing(pard)
    q_fcfs = per_module_queueing(fcfs)
    for mid in pard.module_ids:
        print(f"  {mid}: PARD={q_pard[mid] * 1000:6.1f}ms "
              f"PARD-FCFS={q_fcfs[mid] * 1000:6.1f}ms")
    # Paper: FCFS increases queueing delay versus PARD (by ~34% overall).
    assert sum(q_pard.values()) <= sum(q_fcfs.values()) * 1.15


def test_fig12d_remaining_budget_variability(benchmark):
    result = benchmark.pedantic(lambda: _run("PARD"), rounds=1, iterations=1)
    print("\nFigure 12d: remaining budget of consecutive requests at M2/M3")
    slo = result.config.resolve_app().slo
    for mid in ("m2", "m3"):
        samples = []
        for r in sorted(result.collector.records, key=lambda r: r.sent_at):
            for v in r.visits:
                if v.module_id == mid:
                    consumed = sum(
                        vv.queueing_delay + vv.batch_wait + vv.execution
                        for vv in r.visits
                        if result.module_ids.index(vv.module_id)
                        < result.module_ids.index(mid)
                    )
                    samples.append(slo - consumed)
        arr = np.asarray(samples[:100])
        print(f"  {mid}: mean={arr.mean() * 1000:6.1f}ms "
              f"std={arr.std() * 1000:5.1f}ms "
              f"range=[{arr.min() * 1000:.0f}, {arr.max() * 1000:.0f}]ms")
        # Budgets of consecutive requests vary materially (the paper's
        # argument against arrival-order decisions).
        assert arr.std() > 0.005  # > 5 ms of spread
