"""Figure 10: input traces and normalized real-time goodput, 12 workloads.

Left panel: the three trace rate envelopes.  Right panels: normalized
goodput of the four systems inside the burst window of each trace (the
paper's red-boxed regions).  Headline claim: PARD's goodput is 16%-176%
above Nexus/Clipper++ in these regions.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import APPS, TRACES
from repro.metrics import normalized_goodput_series
from repro.workload import get_trace

SYSTEMS = ("PARD", "Nexus", "Clipper++", "Naive")


def test_fig10_trace_envelopes(benchmark):
    traces = benchmark.pedantic(
        lambda: {t: get_trace(t, base_rate=100, duration=120, seed=0)
                 for t in TRACES},
        rounds=1,
        iterations=1,
    )
    print("\nFigure 10 (left): trace rate envelopes (req/s, 5s bins)")
    for name, trace in traces.items():
        _, rates = trace.rate_series(window=5.0)
        spark = " ".join(f"{r:4.0f}" for r in rates[::2])
        print(f"  {name:6s} mean={trace.mean_rate:6.1f} cv={trace.rate_cv():.2f}")
        print(f"         {spark}")
    # Shape checks mirroring the paper's characterisation.
    assert traces["wiki"].rate_cv() < traces["tweet"].rate_cv() * 1.2
    assert traces["azure"].rate_cv() > traces["wiki"].rate_cv()


def test_fig10_normalized_goodput_under_burst(benchmark, workload_sweep):
    grid = [(a, t, s) for a in APPS for t in TRACES for s in SYSTEMS]

    def sweep():
        workload_sweep.prefetch(grid)
        return {key: workload_sweep(*key) for key in grid}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nFigure 10 (right): mean normalized goodput in the stressed "
          "region, per workload")
    print(f"{'workload':>12s}" + "".join(f"{s:>12s}" for s in SYSTEMS)
          + f"{'PARD gain':>12s}")
    gains = []
    for t in TRACES:
        for a in APPS:
            means = {}
            for s in SYSTEMS:
                res = results[(a, t, s)]
                times, norm = normalized_goodput_series(res.collector, window=2.0)
                # The stressed region: windows where any system drops.
                stressed = ~np.isnan(norm) & (norm < 0.999)
                means[s] = (
                    float(np.nanmean(norm[stressed]))
                    if stressed.any()
                    else 1.0
                )
            best_reactive = max(means["Nexus"], means["Clipper++"])
            gain = means["PARD"] / best_reactive - 1.0 if best_reactive > 0 else 0.0
            gains.append(gain)
            row = f"{a}-{t:>10s}"[-12:].rjust(12)
            for s in SYSTEMS:
                row += f"{means[s]:12.2f}"
            row += f"{gain:12.1%}"
            print(row)
    print(f"\nmean PARD goodput gain over best reactive baseline: "
          f"{float(np.mean(gains)):.1%} (paper band: +16% to +176%)")
    assert float(np.mean(gains)) > 0.10
    assert sum(1 for g in gains if g > 0) >= int(0.8 * len(gains))
