"""Extension benchmark: dynamic DAG paths and request-path prediction.

§5.2 reports that with request-specific dynamic paths (each request
probabilistically takes the pose *or* face branch of ``da``), PARD's drop
rate rises by 0.05x-0.21x across traces due to mis-estimation, and names
request-path prediction as future work.  This bench reproduces the
degradation and evaluates the implemented extension
(``PathMode.PREDICTED``): branch probabilities are learned online and the
forward estimate becomes a probability-weighted mixture over paths
instead of the conservative maximum.
"""

from __future__ import annotations

from repro.core.policy import PardPolicy
from repro.core.state_planner import PathMode
from repro.experiments import standard_config
from repro.experiments.runner import build_cluster
from repro.metrics import summarize
from repro.simulation.routing import ProbabilisticRouter
from repro.workload.replay import replay

from .conftest import BENCH_SEED


def _run(dynamic: bool, path_mode: str, seed: int = BENCH_SEED):
    config = standard_config("da", "tweet", seed=seed, duration=60.0,
                             scaling=False)
    trace = config.resolve_trace()
    policy = PardPolicy(samples=2000, path_mode=path_mode, seed=seed)
    cluster = build_cluster(config, policy, trace)
    if dynamic:
        cluster.router = ProbabilisticRouter(seed=seed)
    replay(trace, cluster)
    return summarize(cluster.metrics, duration=trace.duration)


def test_dynamic_paths_and_prediction(benchmark):
    def sweep():
        return {
            "static / max": _run(False, PathMode.MAX),
            "dynamic / max": _run(True, PathMode.MAX),
            "dynamic / predicted": _run(True, PathMode.PREDICTED),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nDynamic-path DAG (da-tweet): drop rate / invalid / goodput")
    for label, s in results.items():
        print(f"  {label:20s} drop={s.drop_rate:6.2%} "
              f"invalid={s.invalid_rate:6.2%} goodput={s.goodput:6.1f}/s")

    static = results["static / max"]
    dyn_max = results["dynamic / max"]
    dyn_pred = results["dynamic / predicted"]
    # Dynamic paths halve the branch work, so goodput cannot collapse;
    # the conservative max-over-paths estimator stays usable (paper:
    # +0.05x..+0.21x drop-rate increase attributable to mis-estimation).
    assert dyn_max.goodput > 0.5 * static.goodput
    # The prediction extension must not do worse than the conservative
    # estimator on dynamic paths, and should reduce unnecessary drops.
    assert dyn_pred.drop_rate <= dyn_max.drop_rate + 0.01
    assert dyn_pred.goodput >= dyn_max.goodput - 1.0
