"""Figure 8: average drop rate and invalid rate, 12 workloads x 4 systems.

The paper reports PARD dropping 0.12%-3.6% on average, cutting drop rate
by 1.6x-16.7x and wasted computation by 1.5x-61.9x versus Nexus and
Clipper++ (and far more versus Naive).
"""

from __future__ import annotations

from repro.experiments import APPS, TRACES

SYSTEMS = ("PARD", "Nexus", "Clipper++", "Naive")


def test_fig8_drop_and_invalid_rates(benchmark, workload_sweep):
    grid = [(a, t, s) for a in APPS for t in TRACES for s in SYSTEMS]

    def sweep():
        workload_sweep.prefetch(grid)  # fan the 48 cells over the pool
        return {key: workload_sweep(*key) for key in grid}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for metric in ("drop_rate", "invalid_rate"):
        print(f"\nFigure 8: average {metric.replace('_', ' ')}")
        print(f"{'workload':>12s}" + "".join(f"{s:>12s}" for s in SYSTEMS))
        for t in TRACES:
            for a in APPS:
                row = f"{a}-{t:>10s}"[-12:].rjust(12)
                for s in SYSTEMS:
                    v = getattr(results[(a, t, s)].summary, metric)
                    row += f"{v:12.2%}"
                print(row)

    # Reproduction checks: PARD must beat both reactive baselines on both
    # metrics for (nearly) every workload, with large factors overall.
    wins, total = 0, 0
    pard_drop_sum = nexus_drop_sum = 0.0
    pard_inv_sum = nexus_inv_sum = 0.0
    for a in APPS:
        for t in TRACES:
            pard = results[(a, t, "PARD")].summary
            nexus = results[(a, t, "Nexus")].summary
            clipper = results[(a, t, "Clipper++")].summary
            total += 1
            if (
                pard.drop_rate <= nexus.drop_rate
                and pard.drop_rate <= clipper.drop_rate
                and pard.invalid_rate <= nexus.invalid_rate
                and pard.invalid_rate <= clipper.invalid_rate
            ):
                wins += 1
            pard_drop_sum += pard.drop_rate
            nexus_drop_sum += nexus.drop_rate
            pard_inv_sum += pard.invalid_rate
            nexus_inv_sum += nexus.invalid_rate
    print(f"\nPARD dominates both baselines on {wins}/{total} workloads")
    drop_factor = nexus_drop_sum / max(pard_drop_sum, 1e-9)
    inv_factor = nexus_inv_sum / max(pard_inv_sum, 1e-9)
    print(f"aggregate drop-rate factor vs Nexus:    {drop_factor:.1f}x "
          f"(paper band 1.6x-16.7x)")
    print(f"aggregate invalid-rate factor vs Nexus: {inv_factor:.1f}x "
          f"(paper band 1.5x-61.9x)")
    assert wins >= total - 2
    assert drop_factor > 1.5
    assert inv_factor > 1.5
