"""Shared fixtures for the figure-reproduction benchmarks.

The heavyweight artifact is the 12-workload x 4-system sweep used by
Figures 8, 9 and 10; it is computed once per session and cached.

All benchmarks run scaled-down versions of the paper's runs (60-90 s
simulated traces, ~90% provisioned utilization) so the whole suite
finishes in minutes on one core; EXPERIMENTS.md records paper-vs-measured
for every figure.
"""

from __future__ import annotations

import pytest

from repro.experiments import SYSTEM_FACTORIES, run_experiment, standard_config
from repro.experiments.runner import ExperimentResult

BENCH_DURATION = 60.0
BENCH_SEED = 0
BENCH_UTIL = 0.9


def run_workload(app: str, trace: str, system: str, **overrides) -> ExperimentResult:
    """One (app, trace, system) run with the benchmark defaults."""
    overrides.setdefault("duration", BENCH_DURATION)
    overrides.setdefault("utilization", BENCH_UTIL)
    config = standard_config(app, trace, seed=BENCH_SEED, **overrides)
    return run_experiment(config, SYSTEM_FACTORIES[system](BENCH_SEED))


@pytest.fixture(scope="session")
def workload_sweep():
    """Lazy cache over the 12-workload x 4-system sweep."""
    cache: dict[tuple[str, str, str], ExperimentResult] = {}

    def get(app: str, trace: str, system: str) -> ExperimentResult:
        key = (app, trace, system)
        if key not in cache:
            cache[key] = run_workload(app, trace, system)
        return cache[key]

    return get


def fmt_pct(x: float) -> str:
    return f"{x * 100:6.2f}%"
