"""Shared fixtures for the figure-reproduction benchmarks.

The heavyweight artifact is the 12-workload x 4-system sweep used by
Figures 8, 9 and 10.  It now runs through the parallel sweep subsystem
(:mod:`repro.experiments.sweep`): figure tests prefetch their whole grid so
the cells fan out over a process pool, and completed cells land in an
on-disk cache keyed by a stable config fingerprint, so repeated benchmark
invocations skip everything already computed.

Environment knobs:

* ``REPRO_SWEEP_CACHE`` — ``0`` disables the on-disk cache, any other
  value is used as the cache directory (default: ``benchmarks/.sweep_cache``).
* ``REPRO_SWEEP_WORKERS`` — process-pool size (default: CPU count).

All benchmarks run scaled-down versions of the paper's runs (60-90 s
simulated traces, ~90% provisioned utilization) so the whole suite
finishes in minutes; EXPERIMENTS.md records paper-vs-measured for every
figure.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

import pytest

from repro.experiments import run_experiment, standard_config
from repro.experiments.runner import ExperimentResult
from repro.experiments.sweep import CellResult, SweepCell, run_sweep

BENCH_DURATION = 60.0
BENCH_SEED = 0
BENCH_UTIL = 0.9

WorkloadKey = tuple[str, str, str]  # (app, trace, system)


def run_workload(app: str, trace: str, system: str, **overrides) -> ExperimentResult:
    """One (app, trace, system) run with the benchmark defaults.

    Returns the *full* in-process result (live cluster included) for
    benchmarks that poke at cluster internals; grid-shaped figures should
    use the :func:`workload_sweep` fixture instead.
    """
    overrides.setdefault("duration", BENCH_DURATION)
    overrides.setdefault("utilization", BENCH_UTIL)
    config = standard_config(app, trace, seed=BENCH_SEED, **overrides)
    return run_experiment(config, system)


def _bench_cell(app: str, trace: str, system: str) -> SweepCell:
    config = standard_config(
        app, trace, seed=BENCH_SEED,
        duration=BENCH_DURATION, utilization=BENCH_UTIL,
    )
    return SweepCell(config=config, policy=system)


class WorkloadSweep:
    """Lazy, cached access to the benchmark workload grid.

    Calling ``sweep(app, trace, system)`` runs (or cache-loads) a single
    cell; ``sweep.prefetch(keys)`` runs every missing cell through the
    parallel sweep first, so figure tests pay one pool fan-out instead of
    N serial runs.
    """

    def __init__(self, cache_dir: str | None, workers: int | None) -> None:
        self.cache_dir = cache_dir
        self.workers = workers
        self._results: dict[WorkloadKey, CellResult] = {}

    def prefetch(self, keys: Iterable[WorkloadKey]) -> None:
        missing = [k for k in dict.fromkeys(keys) if k not in self._results]
        if not missing:
            return
        results = run_sweep(
            [_bench_cell(*key) for key in missing],
            workers=self.workers,
            cache_dir=self.cache_dir,
        )
        failures = []
        for key, result in zip(missing, results):
            if result.ok:
                self._results[key] = result  # keep paid-for work on failure
            else:
                failures.append((key, result.error))
        if failures:
            details = "\n\n".join(f"{key}:\n{err}" for key, err in failures)
            raise RuntimeError(
                f"{len(failures)}/{len(missing)} sweep cells failed:\n{details}"
            )

    def __call__(self, app: str, trace: str, system: str) -> CellResult:
        key = (app, trace, system)
        if key not in self._results:
            self.prefetch([key])
        return self._results[key]


@pytest.fixture(scope="session")
def workload_sweep() -> WorkloadSweep:
    """Parallel, disk-cached cache over the 12-workload x 4-system sweep."""
    env = os.environ.get("REPRO_SWEEP_CACHE", "").strip()
    if env == "0":
        cache_dir = None
    elif env:
        cache_dir = env
    else:
        cache_dir = str(Path(__file__).parent / ".sweep_cache")
    workers_env = os.environ.get("REPRO_SWEEP_WORKERS", "").strip()
    try:
        workers = int(workers_env) if workers_env else None
    except ValueError:
        raise pytest.UsageError(
            f"REPRO_SWEEP_WORKERS must be an integer, got {workers_env!r}"
        ) from None
    return WorkloadSweep(cache_dir=cache_dir, workers=workers)


def fmt_pct(x: float) -> str:
    return f"{x * 100:6.2f}%"
