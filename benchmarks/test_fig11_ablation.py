"""Figure 11 + Table 1: ablation study on lv-tweet.

(a) average drop rate and invalid rate of PARD against the eleven
    single-change ablations;
(b) percentage of drops at each module.

Paper headlines: PARD-back/sf/oc suffer 1.1x-3.6x higher drop rates and
2.1x-24x higher invalid rates; split-budget variants 2.6x-2.8x higher
drops; the lower/upper wait-bound extremes hurt in opposite directions;
arrival-order and fixed-priority variants drop 0.5x-2.2x more.
"""

from __future__ import annotations

from repro.experiments import run_experiment, standard_config
from repro.metrics import drops_per_module
from repro.policies.ablations import ABLATIONS

from .conftest import BENCH_DURATION, BENCH_SEED

ORDER = (
    "PARD",
    "PARD-back",
    "PARD-sf",
    "PARD-oc",
    "PARD-split",
    "PARD-WCL",
    "PARD-upper",
    "PARD-lower",
    "PARD-instant",
    "PARD-HBF",
    "PARD-LBF",
    "PARD-FCFS",
)


def test_fig11_ablations(benchmark):
    config = standard_config(
        "lv", "tweet", seed=BENCH_SEED, duration=BENCH_DURATION
    )

    def sweep():
        return {
            name: run_experiment(config, ABLATIONS[name](seed=BENCH_SEED))
            for name in ORDER
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nFigure 11a: drop rate / invalid rate per ablation (lv-tweet)")
    print(f"{'ablation':>14s} {'drop':>8s} {'invalid':>8s} {'goodput':>9s}")
    for name in ORDER:
        s = results[name].summary
        print(f"{name:>14s} {s.drop_rate:8.2%} {s.invalid_rate:8.2%} "
              f"{s.goodput:8.1f}/s")

    print("\nFigure 11b: drops at each module")
    for name in ORDER:
        res = results[name]
        shares = drops_per_module(res.collector, res.module_ids)
        row = " ".join(f"{shares[m]:6.1%}" for m in res.module_ids)
        print(f"{name:>14s} [{row}]")

    pard = results["PARD"].summary

    # Bi-directional estimation: backward-only must waste far more GPU time.
    assert results["PARD-back"].summary.invalid_rate > 1.5 * max(
        pard.invalid_rate, 1e-4
    )
    # PARD-back concentrates its drops late; PARD drops early.
    back_shares = drops_per_module(
        results["PARD-back"].collector, results["PARD-back"].module_ids
    )
    pard_shares = drops_per_module(
        results["PARD"].collector, results["PARD"].module_ids
    )
    mids = results["PARD"].module_ids
    early = mids[: len(mids) // 2]
    assert sum(pard_shares[m] for m in early) > sum(back_shares[m] for m in early)
    # The quantile sweet spot beats at least one of the two extremes on
    # goodput, and the extremes err in the documented directions.
    assert (
        pard.goodput >= results["PARD-lower"].summary.goodput - 1.0
        or pard.goodput >= results["PARD-upper"].summary.goodput - 1.0
    )
    assert (
        results["PARD-lower"].summary.invalid_rate
        >= results["PARD-upper"].summary.invalid_rate
    )
    # Adaptive priority beats arrival order and the LBF fixed mode.
    assert pard.drop_rate <= results["PARD-FCFS"].summary.drop_rate + 0.02
    assert pard.drop_rate <= results["PARD-LBF"].summary.drop_rate + 0.02
    # PARD must be at worst marginally behind the best ablation overall.
    best = max(r.summary.goodput for r in results.values())
    assert pard.goodput >= 0.95 * best
