"""Figure 9: maximum average drop rate across time-window sizes.

The paper shows PARD cutting transient drop rates by 41%-98% across all
timescales on all 12 workloads.
"""

from __future__ import annotations

from repro.experiments import APPS, TRACES
from repro.metrics import max_drop_rate

SYSTEMS = ("PARD", "Nexus", "Clipper++", "Naive")
WINDOWS = (2.0, 5.0, 10.0, 25.0)


def test_fig9_max_windowed_drop_rate(benchmark, workload_sweep):
    grid = [(a, t, s) for a in APPS for t in TRACES for s in SYSTEMS]

    def sweep():
        workload_sweep.prefetch(grid)
        out = {}
        for key in grid:
            res = workload_sweep(*key)
            out[key] = [max_drop_rate(res.collector, w) for w in WINDOWS]
        return out

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nFigure 9: max windowed drop rate (rows: window sizes)")
    pard_better = 0
    comparisons = 0
    for a in APPS:
        for t in TRACES:
            print(f"  {a}-{t}:")
            header = f"{'window':>10s}" + "".join(f"{s:>12s}" for s in SYSTEMS)
            print(header)
            for i, w in enumerate(WINDOWS):
                row = f"{w:9.0f}s"
                for s in SYSTEMS:
                    row += f"{rates[(a, t, s)][i]:12.1%}"
                print(row)
                comparisons += 1
                if rates[(a, t, "PARD")][i] <= rates[(a, t, "Nexus")][i]:
                    pard_better += 1
    print(f"\nPARD <= Nexus max drop rate in {pard_better}/{comparisons} cells")
    assert pard_better >= int(0.8 * comparisons)
