"""Figure 14: stress testing, SLO / lambda / window-size sensitivity.

(a) goodput vs input request rate with fixed instances — PARD must track
    the optimal goodput (min of rate and capacity) more closely than the
    reactive baselines, which collapse past saturation;
(b) average drop rate across SLO settings 200-600 ms;
(c) drop rate across the quantile lambda (optimum in [0.075, 0.15]);
(d) drop rate across the sliding-window size.
"""

from __future__ import annotations

from repro.core.policy import PardPolicy
from repro.experiments import (
    SYSTEM_FACTORIES,
    run_experiment,
    standard_config,
)
from repro.experiments.runner import ExperimentConfig
from repro.workload.generators import poisson_trace

from .conftest import BENCH_SEED

STRESS_WORKERS = {"m1": 2, "m2": 2, "m3": 2, "m4": 1, "m5": 2}


def _stress_config(rate: float, duration: float = 30.0) -> ExperimentConfig:
    return ExperimentConfig(
        app="lv",
        trace="tweet",  # ignored: custom_trace below
        custom_trace=poisson_trace(rate, duration, seed=BENCH_SEED),
        workers=dict(STRESS_WORKERS),
        seed=BENCH_SEED,
        duration=duration,
    )


def test_fig14a_stress(benchmark):
    # Capacity of the fixed pool is ~160 req/s at the bottleneck.
    rates = (100.0, 140.0, 180.0, 220.0, 260.0)
    systems = ("PARD", "Nexus", "Clipper++", "Naive")

    def sweep():
        out = {}
        for rate in rates:
            for s in systems:
                res = run_experiment(
                    _stress_config(rate), SYSTEM_FACTORIES[s](BENCH_SEED)
                )
                out[(rate, s)] = res.summary.goodput
        return out

    goodput = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nFigure 14a: goodput vs input rate (fixed instances)")
    print(f"{'rate':>6s}" + "".join(f"{s:>12s}" for s in systems)
          + f"{'optimal':>10s}")
    capacity = max(goodput[(r, "PARD")] for r in rates)
    for rate in rates:
        optimal = min(rate, capacity)
        row = f"{rate:6.0f}"
        for s in systems:
            row += f"{goodput[(rate, s)]:12.1f}"
        row += f"{optimal:10.1f}"
        print(row)

    # Past saturation PARD must stay closest to the optimal goodput.
    overloaded = [r for r in rates if r > capacity]
    for rate in overloaded:
        opt = min(rate, capacity)
        gap_pard = opt - goodput[(rate, "PARD")]
        gap_nexus = opt - goodput[(rate, "Nexus")]
        gap_naive = opt - goodput[(rate, "Naive")]
        assert gap_pard <= gap_nexus
        assert gap_pard <= gap_naive
    # Goodput must not collapse as load grows (Naive's failure mode).
    assert goodput[(rates[-1], "PARD")] >= 0.8 * capacity


def test_fig14b_slo_sensitivity(benchmark):
    slos = (0.400, 0.500, 0.600)
    systems = ("PARD", "Nexus", "Clipper++")
    # Hold the workload and worker pool fixed across SLO settings (they are
    # calibrated once, at the application's default 500 ms SLO); only the
    # latency objective — and hence every system's batch plan — varies.
    base = standard_config("lv", "tweet", seed=BENCH_SEED, duration=40.0)
    rate = base.resolve_base_rate()
    workers = base.resolve_workers()

    def sweep():
        out = {}
        for slo in slos:
            config = standard_config(
                "lv", "tweet", seed=BENCH_SEED, duration=40.0, slo=slo,
                utilization=None, base_rate=rate, workers=dict(workers),
                scaling=False,
            )
            for s in systems:
                res = run_experiment(config, SYSTEM_FACTORIES[s](BENCH_SEED))
                out[(slo, s)] = res.summary.drop_rate
        return out

    drops = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFigure 14b: average drop rate vs SLO (fixed workload)")
    print(f"{'SLO':>7s}" + "".join(f"{s:>12s}" for s in systems))
    for slo in slos:
        row = f"{slo * 1000:5.0f}ms"
        for s in systems:
            row += f"{drops[(slo, s)]:12.2%}"
        print(row)
    # PARD sustains the lowest drop rate at every SLO (paper: 1.9x-5.3x
    # lower; we allow a 10% relative margin for simulator noise).
    for slo in slos:
        assert drops[(slo, "PARD")] <= drops[(slo, "Nexus")] * 1.1
        assert drops[(slo, "PARD")] <= drops[(slo, "Clipper++")] * 1.1


def test_fig14c_lambda_sensitivity(benchmark):
    lams = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0)

    def sweep():
        config = standard_config("lv", "tweet", seed=BENCH_SEED, duration=40.0)
        return {
            lam: run_experiment(
                config, PardPolicy(lam=lam, samples=2000, seed=BENCH_SEED)
            ).summary.drop_rate
            for lam in lams
        }

    drops = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFigure 14c: drop rate vs quantile lambda")
    for lam in lams:
        print(f"  lambda={lam:5.2f}  drop={drops[lam]:7.2%}")
    # The paper's default lambda=0.1 must be competitive with the best
    # sampled lambda (their optimum lies in [0.075, 0.15]).
    best = min(drops.values())
    assert drops[0.1] <= best + 0.03


def test_fig14d_window_sensitivity(benchmark):
    windows = (1.0, 3.0, 5.0, 10.0)

    def sweep():
        out = {}
        for trace in ("wiki", "tweet", "azure"):
            for w in windows:
                config = standard_config(
                    "lv", trace, seed=BENCH_SEED, duration=40.0,
                    stats_window=w,
                )
                res = run_experiment(
                    config, PardPolicy(samples=2000, seed=BENCH_SEED)
                )
                out[(trace, w)] = res.summary.drop_rate
        return out

    drops = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFigure 14d: drop rate vs sliding-window size")
    print(f"{'window':>8s}" + "".join(f"{t:>10s}" for t in ("wiki", "tweet", "azure")))
    for w in windows:
        row = f"{w:7.0f}s"
        for trace in ("wiki", "tweet", "azure"):
            row += f"{drops[(trace, w)]:10.2%}"
        print(row)
    # The 5s default must sit close to each trace's own optimum (the paper
    # reports a 3.2%-6.3% relative gap).
    for trace in ("wiki", "tweet", "azure"):
        best = min(drops[(trace, w)] for w in windows)
        assert drops[(trace, 5.0)] <= best + 0.05
