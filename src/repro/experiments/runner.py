"""Experiment harness: one call from (app, trace, policy) to metrics.

Rates are expressed per-run rather than hard-coded so benches can scale the
paper's 64-GPU workloads down to what a CI box simulates in seconds while
keeping the load *regime* (load factor relative to provisioned capacity)
identical — that regime, not the absolute request rate, is what the
dropping policies react to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from functools import lru_cache, partial
from typing import Callable, Sequence

from ..metrics.analysis import Summary, merge_collectors, summarize
from ..metrics.collector import MetricsCollector
from ..metrics.goodput import GoodputReport, GoodputSpec, goodput_report
from ..pipeline.applications import Application, get_application
from ..pipeline.profiles import DEFAULT_PROFILES, ProfileRegistry
from ..policies.base import DropPolicy
from ..policies.registry import make_admission, make_policy
from ..policies.spec import PolicySpec
from ..simulation.batching import plan_batch_sizes, provision_workers
from ..simulation.cluster import Cluster
from ..simulation.engine import Simulator
from ..simulation.failures import FailureEvent, FailureInjector
from ..simulation.rng import RngStreams
from ..simulation.routing import PathRouter
from ..simulation.scaling import ReactiveScaler
from ..simulation.tenancy import SharedCluster, Tenant
from ..workload.generators import TRACES, get_trace
from ..workload.replay import ArrivalPump, replay
from ..workload.source import ArrivalSource
from ..workload.trace import Trace
from .scenario import (
    MultiScenario,
    Scenario,
    ScalingSpec,
    _thaw,
    freeze_trace_args,
)

PolicyFactory = Callable[[int], DropPolicy]


@lru_cache(maxsize=256)
def _trace_shape_factor(
    generator: Callable[..., Trace],
    trace: str,
    duration: float,
    seed: int,
    args: tuple = (),
) -> float:
    """Mean-rate-to-base-rate factor of a named trace, memoized.

    Measured on a cheap pilot trace built with the same generator ``args``
    as the real one — shape-changing args (a step trace's rate multipliers,
    a tweet burst override) would otherwise skew calibration badly.
    The generator *object* is part of the key so re-registering a new
    generator under an old name cannot serve a stale shape.  Calibrated
    configs consult the shape from ``resolve_workers``,
    ``resolve_base_rate`` *and* ``resolve_trace``; without memoization
    every call re-simulated the full-duration pilot.
    """
    kwargs = {k: _thaw(v) for k, v in args}
    pilot = generator(
        base_rate=50.0, duration=duration, seed=seed, name=trace, **kwargs
    )
    shape = pilot.mean_rate / 50.0
    if shape <= 0:
        # Report the trace by name and size only — never embed a trace
        # repr, which is unbounded for large materialized workloads.
        raise ValueError(
            f"trace {trace} produced no arrivals in the calibration "
            f"pilot ({len(pilot)} arrivals over {duration:g}s)"
        )
    return shape


@dataclass
class ExperimentConfig:
    """Everything needed to run one (app, trace, policy) combination."""

    app: str  # "tm" | "lv" | "gm" | "da" (or a custom Application)
    trace: str  # "wiki" | "tweet" | "azure" (or a custom Trace)
    base_rate: float = 60.0  # trace base rate (req/s)
    duration: float = 120.0  # trace duration (s)
    seed: int = 0
    workers: int | dict[str, int] | None = None  # explicit worker counts
    utilization: float | None = None  # calibrate base_rate to this load
    provision_rate: float | None = None  # workers sized for this rate
    provision_headroom: float = 1.0
    slo: float | None = None  # override the application SLO
    sync_interval: float = 1.0
    stats_window: float = 5.0
    drain: float = 5.0
    scaling: bool = False  # enable the reactive scaler with cold starts
    trace_args: tuple = ()  # frozen (key, value) generator kwargs
    trace_scale: float = 1.0  # post-generation thinning factor (<= 1)
    trace_seed: int | None = None  # pin the workload seed (default: seed)
    custom_app: Application | None = None
    custom_trace: Trace | ArrivalSource | None = None
    registry: ProfileRegistry = field(default_factory=lambda: DEFAULT_PROFILES)

    def __post_init__(self) -> None:
        # Normalize generator kwargs to hashable frozen pairs: the memoized
        # pilot-shape lookup keys on them, and users naturally pass dicts
        # or list-valued args (a step trace's rates).
        self.trace_args = freeze_trace_args(self.trace_args)

    def resolve_app(self) -> Application:
        app = self.custom_app or get_application(self.app)
        if self.slo is not None:
            app = Application(spec=app.spec, slo=self.slo)
        return app

    def resolve_trace(self) -> Trace | ArrivalSource:
        if self.custom_trace is not None:
            return self.custom_trace
        trace = get_trace(
            self.trace, base_rate=self.resolve_base_rate(),
            duration=self.duration, seed=self._trace_seed(),
            **{k: _thaw(v) for k, v in self.trace_args},
        )
        if self.trace_scale != 1.0:
            trace = trace.scaled(self.trace_scale)
        return trace

    def _trace_seed(self) -> int:
        return self.seed if self.trace_seed is None else self.trace_seed

    def resolve_workers(
        self, trace: Trace | ArrivalSource | None = None
    ) -> int | dict[str, int]:
        """Explicit worker counts, or a plan provisioned for the trace.

        ``trace`` lets callers that already built the (possibly composed)
        trace provision for its actual mean rate instead of regenerating
        the named base trace.
        """
        if self.workers is not None:
            return self.workers
        app = self.resolve_app()
        plan = plan_batch_sizes(app.spec, self.registry, app.slo)
        if self.utilization is not None:
            # Calibrated mode: the bottleneck module gets a two-worker pool
            # at the target utilization; every other module is provisioned
            # so its own utilization lands just below capacity too, the way
            # the paper's per-module scaling keeps all modules near their
            # rate (otherwise drops artificially concentrate at the single
            # bottleneck).
            mean_rate = self.resolve_base_rate() * self._trace_shape()
            out: dict[str, int] = {}
            for m in app.spec.modules:
                per_worker = self.registry.get(m.model).throughput(plan[m.id])
                need = mean_rate / (0.97 * per_worker)
                out[m.id] = max(1, math.ceil(need))
            return out
        if trace is None:
            trace = self.resolve_trace()
        rate = self.provision_rate or trace.mean_rate
        return provision_workers(
            app.spec, self.registry, plan, rate, headroom=self.provision_headroom
        )

    def resolve_base_rate(self) -> float:
        """Base rate, calibrated to ``utilization`` of capacity when set.

        The bottleneck module's aggregate throughput defines capacity; the
        trace's mean-rate-to-base-rate shape factor (measured on a cheap
        pilot trace) maps capacity to the generator's ``base_rate`` knob.
        """
        if self.utilization is None:
            return self.base_rate
        app = self.resolve_app()
        plan = plan_batch_sizes(app.spec, self.registry, app.slo)

        def count(module_id: str) -> int:
            # Explicit worker counts cap capacity; without any, calibration
            # assumes the two-worker bottleneck pool resolve_workers builds.
            if isinstance(self.workers, dict):
                return self.workers[module_id]
            if isinstance(self.workers, int):
                return self.workers
            return 2

        capacity = min(
            count(m.id) * self.registry.get(m.model).throughput(plan[m.id])
            for m in app.spec.modules
        )
        shape = self._trace_shape()
        return capacity * self.utilization / shape

    def _trace_shape(self) -> float:
        """Mean-rate-to-base-rate factor of the configured trace.

        Thinning scales the realized mean rate linearly, so it folds
        straight into the shape factor — calibration then targets the
        utilization of the trace actually replayed.
        """
        if self.custom_trace is not None:
            return 1.0
        generator = TRACES.get(self.trace)
        if generator is None:
            raise KeyError(
                f"unknown trace {self.trace!r}; known: {sorted(TRACES)}"
            )
        return self.trace_scale * _trace_shape_factor(
            generator, self.trace, self.duration, self._trace_seed(),
            self.trace_args,
        )


@dataclass
class ExperimentResult:
    """Run output: config, policy name, collector and summary."""

    config: ExperimentConfig
    policy_name: str
    collector: MetricsCollector
    summary: Summary
    cluster: Cluster
    trace: Trace | ArrivalSource
    failure_log: list[str] = field(default_factory=list)
    #: Structured fault timeline (the source of ``failure_log``'s rendered
    #: strings), exportable via ``repro.metrics.export.fault_table``.
    fault_records: list = field(default_factory=list)
    #: Goodput-under-constraints report; None unless the scenario (or
    #: caller) declared token-level SLO constraints.
    goodput: GoodputReport | None = None

    @property
    def module_ids(self) -> list[str]:
        return self.cluster.spec.module_ids


def build_cluster(
    config: ExperimentConfig,
    policy: DropPolicy,
    trace: Trace | ArrivalSource | None = None,
    lean: bool = False,
    goodput: GoodputSpec | None = None,
    router: PathRouter | None = None,
    resilience: dict | None = None,
) -> Cluster:
    """Construct the provisioned cluster for a config (no trace replayed).

    ``lean=True`` collects streaming summary counters only (no per-request
    records) — see :class:`~repro.metrics.collector.MetricsCollector`.
    ``goodput`` arms the collector's token-SLO counters; ``router``
    overrides static fan-out at DAG forks; ``resilience`` installs per-hop
    :class:`~repro.simulation.resilience.HopResilience` policies.
    """
    app = config.resolve_app()
    trace = trace or config.resolve_trace()
    plan = plan_batch_sizes(app.spec, config.registry, app.slo)
    workers = config.resolve_workers(trace)
    sim = Simulator()
    metrics = (
        MetricsCollector(lean=lean, goodput=goodput)
        if (lean or goodput is not None) else None
    )
    return Cluster(
        sim=sim,
        app=app,
        policy=policy,
        workers=workers,
        registry=config.registry,
        batch_plan=plan,
        metrics=metrics,
        rng=RngStreams(seed=config.seed),
        sync_interval=config.sync_interval,
        stats_window=config.stats_window,
        router=router,
        resilience=resilience,
    )


def run_experiment(
    config: ExperimentConfig,
    policy: DropPolicy | str | PolicySpec,
    failures: Sequence[FailureEvent] = (),
    scaling: ScalingSpec | None = None,
    trace: Trace | ArrivalSource | None = None,
    lean: bool = False,
    goodput: GoodputSpec | None = None,
    router: PathRouter | None = None,
    resilience: dict | None = None,
) -> ExperimentResult:
    """Replay the configured trace through a freshly provisioned cluster.

    ``policy`` may be a constructed :class:`DropPolicy`, a registered
    policy name or a :class:`~repro.policies.spec.PolicySpec`; the latter
    two are built seeded from ``config.seed`` — the forms sweep workers
    use, since plain data pickles and closures do not.  ``failures`` are
    armed before replay; ``scaling`` overrides the bare ``config.scaling``
    bool with a full :class:`ScalingSpec`; ``trace`` substitutes a
    pre-built trace (the scenario path's composed workload).  ``lean``
    keeps summary counters only (identical :class:`Summary`, no
    per-request records) — for sweeps and benchmarks that never read
    them.
    """
    if isinstance(policy, (str, PolicySpec)):
        policy = make_policy(policy, config.seed)
    if trace is None:
        trace = config.resolve_trace()
    cluster = build_cluster(
        config, policy, trace, lean=lean, goodput=goodput, router=router,
        resilience=resilience,
    )
    if scaling is None:
        scaling = ScalingSpec(enabled=config.scaling)
    if scaling.enabled:
        # Field-for-field forwarding: every ScalingSpec knob except the
        # enable flag is a ReactiveScaler constructor parameter.
        knobs = {f.name: getattr(scaling, f.name) for f in fields(scaling)
                 if f.name != "enabled"}
        ReactiveScaler(cluster, **knobs).start()
    injector = None
    if failures:
        injector = FailureInjector(cluster, events=list(failures))
        injector.schedule_all()
    replay(trace, cluster, drain=config.drain)
    return ExperimentResult(
        config=config,
        policy_name=policy.name,
        collector=cluster.metrics,
        summary=summarize(cluster.metrics, duration=trace.duration),
        cluster=cluster,
        trace=trace,
        failure_log=list(injector.log) if injector is not None else [],
        fault_records=list(injector.records) if injector is not None else [],
        goodput=goodput_report(cluster.metrics, duration=trace.duration),
    )


def scenario_config(scenario: Scenario) -> ExperimentConfig:
    """The :class:`ExperimentConfig` shim equivalent of a scenario.

    Scenarios are the declarative source of truth; the config is the
    resolved in-memory build plan the cluster machinery consumes.  Inline
    pipelines surface as ``custom_app`` here — but unlike user-supplied
    live objects they originate from plain data, so the scenario they came
    from still pickles and fingerprints.
    """
    app = scenario.build_application()
    return ExperimentConfig(
        app=scenario.app.name or app.name,
        trace=scenario.trace.name,
        base_rate=(
            scenario.trace.base_rate
            if scenario.trace.base_rate is not None else 60.0
        ),
        duration=scenario.trace.duration,
        seed=scenario.seed,
        workers=scenario.workers,
        utilization=scenario.utilization,
        provision_rate=scenario.provision_rate,
        provision_headroom=scenario.provision_headroom,
        slo=scenario.app.slo,
        sync_interval=scenario.sync_interval,
        stats_window=scenario.stats_window,
        drain=scenario.drain,
        scaling=scenario.scaling.enabled,
        trace_args=scenario.trace.args,
        trace_scale=scenario.trace.scale,
        trace_seed=scenario.trace.seed,
        custom_app=None if scenario.app.name is not None else app,
        registry=scenario.build_registry(),
    )


def run_scenario(scenario: Scenario, lean: bool = False) -> ExperimentResult:
    """Run one declarative scenario end to end.

    Calibration (``utilization``) measures the named base trace *with its
    generator args* — they are part of the declared workload; burst
    overlays and thinning then compose on top — matching the paper's
    framing, where the cluster is provisioned for the expected workload
    and the burst is the unpredictable event that exceeds it.
    ``lean`` collects summary counters only (no per-request records).
    """
    scenario.validate()
    config = scenario_config(scenario)
    if scenario.trace.is_lazy():
        # Lazy workloads (file-backed or stream=True) never materialize:
        # provisioning sees the base source through one counting pass and
        # replay pulls the composed source chunk by chunk.
        base: Trace | ArrivalSource = scenario.trace.build_source_base(
            config.resolve_base_rate(), default_seed=scenario.seed
        )
        trace: Trace | ArrivalSource = scenario.trace.overlay_source(
            base, default_seed=scenario.seed
        )
    else:
        # The shim carries the full trace declaration (name, args, scale,
        # seed), so the base workload comes from the same resolve_trace
        # path calibration measures; only the burst overlays are
        # scenario-level.
        base = config.resolve_trace()
        trace = scenario.trace.overlay(base, default_seed=scenario.seed)
    if (config.workers is None and config.utilization is None
            and config.provision_rate is None and base.mean_rate > 0):
        # Auto-provisioning sizes the cluster for the steady workload;
        # seeing the burst-inflated mean would de-fang the very overload
        # the scenario declares.
        config.provision_rate = base.mean_rate
    return run_experiment(
        config,
        scenario.policy,
        failures=scenario.failures,
        scaling=scenario.scaling,
        trace=trace,
        lean=lean,
        goodput=scenario.goodput,
        router=(
            None if scenario.router is None
            else scenario.router.build(scenario.seed)
        ),
        resilience=scenario.resilience_map(),
    )


@dataclass
class MultiResult:
    """Output of one shared-cluster run: per-app books plus the aggregate.

    ``summaries``/``collectors``/``traces`` are keyed by tenant label in
    declaration order; ``aggregate`` summarises every tenant's records
    together over the longest trace duration.
    """

    multi: MultiScenario
    summaries: dict[str, Summary]
    collectors: dict[str, MetricsCollector]
    aggregate: Summary
    cluster: SharedCluster
    traces: dict[str, Trace | ArrivalSource]
    failure_log: list[str] = field(default_factory=list)
    #: Structured fault timeline (the source of ``failure_log``).
    fault_records: list = field(default_factory=list)
    #: Per-app goodput-under-constraints reports, keyed like ``summaries``;
    #: tenants without declared constraints map to None.
    goodputs: dict[str, GoodputReport | None] = field(default_factory=dict)

    @property
    def pool_ids(self) -> list[str]:
        return self.cluster.pool_ids()


def _tenant_workload(
    scenario: Scenario, seed: int, weight: float
) -> "tuple[Trace | ArrivalSource, Trace | ArrivalSource]":
    """(base workload, composed workload) for one tenant.

    Mirrors :func:`run_scenario`'s trace path exactly — same generator,
    args, scale and overlay order — so a tenant served alone and the same
    tenant on an uncontended shared cluster replay the identical workload.
    ``weight`` scales the declared base rate; ``seed`` is the effective
    (shared-seed-shifted) tenant seed.  Lazy tenant traces (file-backed
    or ``stream=True``) come back as streaming sources.
    """
    config = scenario_config(scenario)
    config.seed = seed
    if weight != 1.0:
        config.base_rate = config.base_rate * weight
    if scenario.trace.is_lazy():
        base: Trace | ArrivalSource = scenario.trace.build_source_base(
            config.base_rate, default_seed=seed
        )
        return base, scenario.trace.overlay_source(base, default_seed=seed)
    base = config.resolve_trace()
    trace = scenario.trace.overlay(base, default_seed=seed)
    return base, trace


def _provision_pools(
    multi: MultiScenario,
    registry: ProfileRegistry,
    tenants: Sequence[Tenant],
    base_rates: dict[str, float],
) -> dict[str, int]:
    """Workers per pool sized for the aggregate steady (pre-burst) load.

    Every (tenant, module) member of a pool contributes its tenant's base
    mean rate — on a static DAG each request visits every hop — and the
    pool is provisioned for the sum at its (tightest-tenant) target batch,
    matching the single-app rule that bursts stay unprovisioned-for.
    ``tenants`` carry the already-resolved apps and batch plans.
    """
    from ..simulation.tenancy import assign_pools

    pools, _ = assign_pools([(t.name, t.app) for t in tenants])
    plans = {t.name: t.batch_plan for t in tenants}
    out: dict[str, int] = {}
    for key, pool in pools.items():
        batch = min(plans[tname][mid] for tname, mid in pool.members)
        rate = sum(base_rates[tname] for tname, _ in pool.members)
        per_worker = registry.get(pool.model).throughput(batch)
        need = rate * multi.provision_headroom / per_worker
        out[key] = max(1, math.ceil(need))
    return out


def run_multi_scenario(multi: MultiScenario, lean: bool = False) -> MultiResult:
    """Run one declarative shared-cluster scenario end to end.

    Each tenant's workload, policy and seed resolve exactly as in
    :func:`run_scenario`; the cluster layer is shared — pools assigned by
    model profile, one reactive scaler and failure schedule over the pools,
    per-app metrics collected on the tenant views.  ``lean`` keeps
    per-tenant summary counters only (no per-request records).
    """
    multi.validate()
    registry = multi.build_registry()
    tenants: list[Tenant] = []
    traces: dict[str, Trace | ArrivalSource] = {}
    base_rates: dict[str, float] = {}
    for tenant_spec in multi.tenants:
        s = tenant_spec.scenario
        label = tenant_spec.label()
        seed = multi.tenant_seed(tenant_spec)
        base, trace = _tenant_workload(s, seed, tenant_spec.weight)
        traces[label] = trace
        base_rates[label] = base.mean_rate
        # Resolve the app and its batch plan once here; provisioning and
        # SharedCluster consume them instead of re-deriving per stage.
        app = s.build_application()
        tenants.append(
            Tenant(
                name=label,
                app=app,
                policy=make_policy(s.policy, seed),
                metrics=MetricsCollector(lean=lean, goodput=s.goodput),
                router=None if s.router is None else s.router.build(seed),
                batch_plan=plan_batch_sizes(app.spec, registry, app.slo),
                quota=tenant_spec.quota,
            )
        )
    if multi.workers is not None:
        workers: int | dict[str, int] = multi.workers
    else:
        workers = _provision_pools(multi, registry, tenants, base_rates)
    admission = None
    if multi.admission is not None:
        # The fairness seam: constructed from plain data with the declared
        # tenant weights as its fair-share vector, bound to the cluster by
        # SharedCluster.__init__.
        admission = make_admission(
            multi.admission,
            {t.label(): t.weight for t in multi.tenants},
            seed=multi.seed,
        )
    sim = Simulator()
    cluster = SharedCluster(
        sim=sim,
        tenants=tenants,
        workers=workers,
        registry=registry,
        rng=RngStreams(seed=multi.seed),
        sync_interval=multi.sync_interval,
        stats_window=multi.stats_window,
        admission=admission,
    )
    if multi.scaling.enabled:
        knobs = {f.name: getattr(multi.scaling, f.name)
                 for f in fields(multi.scaling) if f.name != "enabled"}
        ReactiveScaler(cluster, **knobs).start()
    injector = None
    if multi.failures:
        injector = FailureInjector(cluster, events=list(multi.failures))
        injector.schedule_all()
    # One arrival lane per tenant, opened in declaration order: each lane
    # reserves its sequence-number block up front, so lazily pumping one
    # pending arrival per tenant reproduces the exact event ordering of
    # the old eager pre-scheduling loop (tenant-by-tenant, trace order).
    for tenant in tenants:
        ArrivalPump(
            traces[tenant.name],
            partial(cluster.submit_now, tenant.name),
            sim.open_lane(),
        ).prime()
    cluster.start_ticks()
    sim.run(until=multi.duration() + multi.drain)
    cluster.stop_ticks()
    sim.run()
    collectors = {t.name: t.metrics for t in tenants}
    summaries = {
        name: summarize(coll, duration=traces[name].duration)
        for name, coll in collectors.items()
    }
    goodputs = {
        name: goodput_report(coll, duration=traces[name].duration)
        for name, coll in collectors.items()
    }
    aggregate = summarize(merge_collectors(collectors),
                          duration=multi.duration())
    return MultiResult(
        multi=multi,
        summaries=summaries,
        collectors=collectors,
        aggregate=aggregate,
        cluster=cluster,
        traces=traces,
        failure_log=list(injector.log) if injector is not None else [],
        fault_records=list(injector.records) if injector is not None else [],
        goodputs=goodputs,
    )


def compare_policies(
    config: ExperimentConfig,
    policies: dict[str, PolicyFactory | str | PolicySpec],
) -> dict[str, ExperimentResult]:
    """Run the same workload under several policies (fresh cluster each).

    Values may be seed-taking factories, registered policy names or
    :class:`~repro.policies.spec.PolicySpec` configurations.
    """
    results: dict[str, ExperimentResult] = {}
    for label, factory in policies.items():
        policy = (
            factory if isinstance(factory, (str, PolicySpec))
            else factory(config.seed)
        )
        results[label] = run_experiment(config, policy)
    return results
