"""Experiment harness: one call from (app, trace, policy) to metrics.

Rates are expressed per-run rather than hard-coded so benches can scale the
paper's 64-GPU workloads down to what a CI box simulates in seconds while
keeping the load *regime* (load factor relative to provisioned capacity)
identical — that regime, not the absolute request rate, is what the
dropping policies react to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..metrics.analysis import Summary, summarize
from ..metrics.collector import MetricsCollector
from ..pipeline.applications import Application, get_application
from ..pipeline.profiles import DEFAULT_PROFILES, ProfileRegistry
from ..policies.base import DropPolicy
from ..policies.registry import make_policy
from ..simulation.batching import plan_batch_sizes, provision_workers
from ..simulation.cluster import Cluster
from ..simulation.engine import Simulator
from ..simulation.rng import RngStreams
from ..simulation.scaling import ReactiveScaler
from ..workload.generators import get_trace
from ..workload.replay import replay
from ..workload.trace import Trace

PolicyFactory = Callable[[int], DropPolicy]


@dataclass
class ExperimentConfig:
    """Everything needed to run one (app, trace, policy) combination."""

    app: str  # "tm" | "lv" | "gm" | "da" (or a custom Application)
    trace: str  # "wiki" | "tweet" | "azure" (or a custom Trace)
    base_rate: float = 60.0  # trace base rate (req/s)
    duration: float = 120.0  # trace duration (s)
    seed: int = 0
    workers: int | dict[str, int] | None = None  # explicit worker counts
    utilization: float | None = None  # calibrate base_rate to this load
    provision_rate: float | None = None  # workers sized for this rate
    provision_headroom: float = 1.0
    slo: float | None = None  # override the application SLO
    sync_interval: float = 1.0
    stats_window: float = 5.0
    drain: float = 5.0
    scaling: bool = False  # enable the reactive scaler with cold starts
    custom_app: Application | None = None
    custom_trace: Trace | None = None
    registry: ProfileRegistry = field(default_factory=lambda: DEFAULT_PROFILES)

    def resolve_app(self) -> Application:
        app = self.custom_app or get_application(self.app)
        if self.slo is not None:
            app = Application(spec=app.spec, slo=self.slo)
        return app

    def resolve_trace(self) -> Trace:
        if self.custom_trace is not None:
            return self.custom_trace
        return get_trace(
            self.trace, base_rate=self.resolve_base_rate(),
            duration=self.duration, seed=self.seed,
        )

    def resolve_workers(self) -> int | dict[str, int]:
        """Explicit worker counts, or a plan provisioned for the trace."""
        if self.workers is not None:
            return self.workers
        app = self.resolve_app()
        plan = plan_batch_sizes(app.spec, self.registry, app.slo)
        if self.utilization is not None:
            # Calibrated mode: the bottleneck module gets a two-worker pool
            # at the target utilization; every other module is provisioned
            # so its own utilization lands just below capacity too, the way
            # the paper's per-module scaling keeps all modules near their
            # rate (otherwise drops artificially concentrate at the single
            # bottleneck).
            mean_rate = self.resolve_base_rate() * self._trace_shape()
            out: dict[str, int] = {}
            for m in app.spec.modules:
                per_worker = self.registry.get(m.model).throughput(plan[m.id])
                need = mean_rate / (0.97 * per_worker)
                out[m.id] = max(1, int(need) + (0 if need == int(need) else 1))
            return out
        rate = self.provision_rate or self.resolve_trace().mean_rate
        return provision_workers(
            app.spec, self.registry, plan, rate, headroom=self.provision_headroom
        )

    def resolve_base_rate(self) -> float:
        """Base rate, calibrated to ``utilization`` of capacity when set.

        The bottleneck module's aggregate throughput defines capacity; the
        trace's mean-rate-to-base-rate shape factor (measured on a cheap
        pilot trace) maps capacity to the generator's ``base_rate`` knob.
        """
        if self.utilization is None:
            return self.base_rate
        app = self.resolve_app()
        plan = plan_batch_sizes(app.spec, self.registry, app.slo)
        workers = self.workers if isinstance(self.workers, dict) else None
        capacity = min(
            (workers[m.id] if workers else 2)
            * self.registry.get(m.model).throughput(plan[m.id])
            for m in app.spec.modules
        )
        shape = self._trace_shape()
        return capacity * self.utilization / shape

    def _trace_shape(self) -> float:
        """Mean-rate-to-base-rate factor of the configured trace."""
        if self.custom_trace is not None:
            return 1.0
        pilot = get_trace(
            self.trace, base_rate=50.0, duration=self.duration, seed=self.seed
        )
        shape = pilot.mean_rate / 50.0
        if shape <= 0:
            raise ValueError(f"trace {self.trace!r} produced no arrivals")
        return shape


@dataclass
class ExperimentResult:
    """Run output: config, policy name, collector and summary."""

    config: ExperimentConfig
    policy_name: str
    collector: MetricsCollector
    summary: Summary
    cluster: Cluster
    trace: Trace

    @property
    def module_ids(self) -> list[str]:
        return self.cluster.spec.module_ids


def build_cluster(
    config: ExperimentConfig,
    policy: DropPolicy,
    trace: Trace | None = None,
) -> Cluster:
    """Construct the provisioned cluster for a config (no trace replayed)."""
    app = config.resolve_app()
    trace = trace or config.resolve_trace()
    plan = plan_batch_sizes(app.spec, config.registry, app.slo)
    workers = config.resolve_workers()
    sim = Simulator()
    return Cluster(
        sim=sim,
        app=app,
        policy=policy,
        workers=workers,
        registry=config.registry,
        batch_plan=plan,
        rng=RngStreams(seed=config.seed),
        sync_interval=config.sync_interval,
        stats_window=config.stats_window,
    )


def run_experiment(
    config: ExperimentConfig, policy: DropPolicy | str
) -> ExperimentResult:
    """Replay the configured trace through a freshly provisioned cluster.

    ``policy`` may be a constructed :class:`DropPolicy` or a registered
    policy name, in which case it is built seeded from ``config.seed`` —
    the form sweep workers use, since names pickle and closures do not.
    """
    if isinstance(policy, str):
        policy = make_policy(policy, config.seed)
    trace = config.resolve_trace()
    cluster = build_cluster(config, policy, trace)
    if config.scaling:
        ReactiveScaler(cluster).start()
    replay(trace, cluster, drain=config.drain)
    return ExperimentResult(
        config=config,
        policy_name=policy.name,
        collector=cluster.metrics,
        summary=summarize(cluster.metrics, duration=trace.duration),
        cluster=cluster,
        trace=trace,
    )


def compare_policies(
    config: ExperimentConfig, policies: dict[str, PolicyFactory | str]
) -> dict[str, ExperimentResult]:
    """Run the same workload under several policies (fresh cluster each).

    Values may be seed-taking factories or registered policy names.
    """
    results: dict[str, ExperimentResult] = {}
    for label, factory in policies.items():
        policy = factory if isinstance(factory, str) else factory(config.seed)
        results[label] = run_experiment(config, policy)
    return results
