"""Experiment harness reproducing the paper's evaluation."""

from .configs import APPS, SYSTEM_FACTORIES, TRACES, all_workloads, standard_config
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    build_cluster,
    compare_policies,
    run_experiment,
)

__all__ = [
    "APPS",
    "ExperimentConfig",
    "ExperimentResult",
    "SYSTEM_FACTORIES",
    "TRACES",
    "all_workloads",
    "build_cluster",
    "compare_policies",
    "run_experiment",
    "standard_config",
]
