"""Experiment harness reproducing the paper's evaluation."""

from .configs import (
    APPS,
    SYSTEM_FACTORIES,
    TRACES,
    all_workloads,
    known_policies,
    make_policy,
    standard_config,
)
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    build_cluster,
    compare_policies,
    run_experiment,
)
from .sweep import (
    CellResult,
    SweepCell,
    SweepEvent,
    cell_fingerprint,
    execute_cell,
    run_sweep,
    summary_table,
    sweep_grid,
)

__all__ = [
    "APPS",
    "CellResult",
    "ExperimentConfig",
    "ExperimentResult",
    "SYSTEM_FACTORIES",
    "SweepCell",
    "SweepEvent",
    "TRACES",
    "all_workloads",
    "build_cluster",
    "cell_fingerprint",
    "compare_policies",
    "execute_cell",
    "known_policies",
    "make_policy",
    "run_experiment",
    "run_sweep",
    "standard_config",
    "summary_table",
    "sweep_grid",
]
