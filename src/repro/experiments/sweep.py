"""Parallel experiment sweeps with deterministic seeding and result caching.

The figure-reproduction benchmarks and the ``repro sweep`` CLI run grids of
``(app, trace, policy, seed)`` cells.  Each cell is an independent
simulation, so a sweep is embarrassingly parallel; this module fans cells
out over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
three properties the harness relies on:

* **Determinism** — a cell is fully described by ``(ExperimentConfig,
  policy name)``.  The policy is constructed *inside* the worker from its
  name, seeded with ``config.seed``, and every random stream in the
  simulator derives from that seed via :class:`~repro.simulation.rng.
  RngStreams`.  Summaries are therefore bitwise-identical whether a cell
  runs in-process, in a 2-worker pool or a 16-worker pool.
* **Caching** — completed cells are stored on disk under a stable
  fingerprint of the cell (config fields, profile registry contents,
  policy name and the package version).  Re-running a sweep skips every
  cell whose fingerprint is already cached.  Cells carrying custom
  application/trace objects have no stable textual identity and are simply
  never cached.
* **Failure isolation** — a worker exception is captured as a
  :class:`CellResult` with ``error`` set (full traceback text); the pool
  keeps draining the remaining cells rather than hanging or aborting the
  sweep.

Results come back *slim*: summary, metrics collector and module ids, not
the live cluster.  The cluster holds the event heap (closures — not
picklable) and everything the benchmarks consume is in the collector.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..metrics.analysis import Summary
from ..metrics.collector import MetricsCollector
from .configs import standard_config
from .runner import ExperimentConfig, run_experiment

#: Fingerprint schema version; bump when the cached payload shape changes.
_CACHE_SCHEMA = 1

_source_digest_cache: str | None = None


def _source_digest() -> str:
    """Digest of the installed ``repro`` sources.

    Folding this into every cell fingerprint means *any* code change —
    not just a version bump — invalidates cached results, so the figure
    benchmarks can never silently report numbers computed by old code.
    """
    global _source_digest_cache
    if _source_digest_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            h.update(str(path.relative_to(package_root)).encode("utf-8"))
            h.update(path.read_bytes())
        _source_digest_cache = h.hexdigest()
    return _source_digest_cache


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a config plus a registered policy name."""

    config: ExperimentConfig
    policy: str

    def label(self) -> str:
        c = self.config
        return f"{c.app}-{c.trace}-{self.policy}-s{c.seed}"


@dataclass
class CellResult:
    """Outcome of one cell: metrics on success, a traceback on failure."""

    cell: SweepCell
    policy_name: str
    summary: Summary | None
    collector: MetricsCollector | None
    module_ids: list[str]
    elapsed: float
    cached: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class SweepEvent:
    """Progress notification delivered to ``run_sweep``'s ``on_event``."""

    kind: str  # "start" | "cached" | "done" | "error"
    index: int  # position of the cell in the input sequence
    total: int
    cell: SweepCell
    elapsed: float = 0.0
    error: str | None = None


def sweep_grid(
    apps: Sequence[str],
    traces: Sequence[str],
    policies: Sequence[str],
    seeds: Sequence[int] = (0,),
    **config_overrides,
) -> list[SweepCell]:
    """The cross product of apps x traces x policies x seeds as cells.

    ``config_overrides`` are forwarded to :func:`standard_config`
    (``duration``, ``utilization``, ``slo``, ``scaling``, ...).
    """
    return [
        SweepCell(
            config=standard_config(app, trace, seed=seed, **config_overrides),
            policy=policy,
        )
        for app in apps
        for trace in traces
        for policy in policies
        for seed in seeds
    ]


def _registry_fingerprint(config: ExperimentConfig) -> list[list]:
    return [
        [p.name, p.base, p.per_item, p.max_batch]
        for name in config.registry.names()
        for p in [config.registry.get(name)]
    ]


def cell_fingerprint(cell: SweepCell) -> str | None:
    """Stable hex digest identifying a cell's result, or ``None``.

    ``None`` means the cell is not cacheable: custom application/trace
    objects have no stable textual identity, so their cells always run.
    """
    config = cell.config
    if config.custom_app is not None or config.custom_trace is not None:
        return None
    from .. import __version__  # deferred: repro/__init__ imports this module

    payload: dict = {"schema": _CACHE_SCHEMA, "version": __version__,
                     "source": _source_digest(), "policy": cell.policy}
    for f in fields(config):
        if f.name in ("custom_app", "custom_trace", "registry"):
            continue
        payload[f.name] = getattr(config, f.name)
    payload["registry"] = _registry_fingerprint(config)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepCache:
    """On-disk pickle store of :class:`CellResult` keyed by fingerprint.

    Entries live under a per-source-digest subdirectory.  A source edit
    changes every fingerprint, so entries written by older code can never
    hit again; grouping by digest lets :meth:`prune_stale` reclaim them
    instead of letting the directory grow without bound.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.base = Path(root)
        self.root = self.base / _source_digest()[:16]
        self.prune_stale()

    def prune_stale(self) -> None:
        """Drop subdirectories written by source trees other than ours."""
        if not self.base.is_dir():
            return
        for entry in self.base.iterdir():
            # Only touch dirs that look like our digest buckets; anything
            # else in the cache dir is not ours to delete.
            if (entry.is_dir() and entry != self.root
                    and len(entry.name) == 16
                    and all(c in "0123456789abcdef" for c in entry.name)):
                shutil.rmtree(entry, ignore_errors=True)

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.pkl"

    def load(self, fingerprint: str) -> CellResult | None:
        path = self._path(fingerprint)
        if not path.is_file():
            return None
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # A corrupt/truncated entry (killed run) must not poison the
            # sweep; drop it and recompute.
            path.unlink(missing_ok=True)
            return None
        if not isinstance(result, CellResult):
            path.unlink(missing_ok=True)
            return None
        result.cached = True
        return result

    def store(self, fingerprint: str, result: CellResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        # A per-writer temp name keeps concurrent sweeps sharing one cache
        # dir from interleaving writes; the rename is atomic vs readers.
        with tempfile.NamedTemporaryFile(
            dir=self.root, suffix=".tmp", delete=False
        ) as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp = Path(fh.name)
        tmp.replace(self._path(fingerprint))


def execute_cell(cell: SweepCell) -> CellResult:
    """Run one cell to completion, never raising.

    This is the worker entry point — module-level so it pickles — and also
    the serial path, so both executions share one code path and one seeding
    discipline.
    """
    t0 = time.perf_counter()
    try:
        result = run_experiment(cell.config, cell.policy)
        return CellResult(
            cell=cell,
            policy_name=result.policy_name,
            summary=result.summary,
            collector=result.collector,
            module_ids=list(result.module_ids),
            elapsed=time.perf_counter() - t0,
        )
    except Exception:
        return CellResult(
            cell=cell,
            policy_name=cell.policy,
            summary=None,
            collector=None,
            module_ids=[],
            elapsed=time.perf_counter() - t0,
            error=traceback.format_exc(),
        )


def _emit(on_event: Callable[[SweepEvent], None] | None, event: SweepEvent) -> None:
    if on_event is not None:
        on_event(event)


def _result_event(index: int, total: int, result: CellResult) -> SweepEvent:
    return SweepEvent(
        kind="done" if result.ok else "error",
        index=index,
        total=total,
        cell=result.cell,
        elapsed=result.elapsed,
        error=result.error,
    )


def run_sweep(
    cells: Iterable[SweepCell],
    workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    on_event: Callable[[SweepEvent], None] | None = None,
) -> list[CellResult]:
    """Execute every cell, in parallel when ``workers > 1``.

    Results are returned in input order.  ``workers=None`` uses the
    machine's CPU count (capped at the number of cells); ``workers<=1``
    runs serially in-process, which is also the reference path parallel
    runs must match bit-for-bit.  When ``cache_dir`` is set, cached cells
    are returned without running and fresh successes are stored back.
    """
    cells = list(cells)
    total = len(cells)
    if total == 0:
        return []
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, total))
    cache = SweepCache(cache_dir) if cache_dir is not None else None

    results: list[CellResult | None] = [None] * total
    fingerprints: list[str | None] = [None] * total
    pending: list[int] = []
    for i, cell in enumerate(cells):
        fingerprints[i] = cell_fingerprint(cell) if cache else None
        hit = cache.load(fingerprints[i]) if cache and fingerprints[i] else None
        if hit is not None:
            results[i] = hit
            _emit(on_event, SweepEvent("cached", i, total, cell))
        else:
            pending.append(i)

    if workers == 1 or len(pending) <= 1:
        for i in pending:
            _emit(on_event, SweepEvent("start", i, total, cells[i]))
            result = execute_cell(cells[i])
            results[i] = result
            _emit(on_event, _result_event(i, total, result))
            if cache and fingerprints[i] and result.ok:
                cache.store(fingerprints[i], result)
        return [r for r in results if r is not None]

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: dict[Future, int] = {}
        for i in pending:
            _emit(on_event, SweepEvent("start", i, total, cells[i]))
            futures[pool.submit(execute_cell, cells[i])] = i
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for fut in done:
                i = futures[fut]
                exc = fut.exception()
                if exc is not None:
                    # The worker itself never raises, so this is pool-level
                    # trouble (a killed worker, unpicklable payload).  Record
                    # it on the cell and keep draining the rest.
                    result = CellResult(
                        cell=cells[i],
                        policy_name=cells[i].policy,
                        summary=None,
                        collector=None,
                        module_ids=[],
                        elapsed=0.0,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    result = fut.result()
                results[i] = result
                _emit(on_event, _result_event(i, total, result))
                if cache and fingerprints[i] and result.ok:
                    cache.store(fingerprints[i], result)
    return [r for r in results if r is not None]


def summary_table(results: Sequence[CellResult], markdown: bool = False) -> str:
    """Render sweep results as an aligned text (or markdown) table."""
    header = ["cell", "status", "goodput/s", "drop", "invalid", "time"]
    rows: list[list[str]] = []
    for r in results:
        if r.ok and r.summary is not None:
            s = r.summary
            rows.append([
                r.cell.label(),
                "cached" if r.cached else "ok",
                f"{s.goodput:.1f}",
                f"{s.drop_rate:.2%}",
                f"{s.invalid_rate:.2%}",
                f"{r.elapsed:.1f}s",
            ])
        else:
            first_line = (r.error or "").strip().splitlines()[-1:] or ["?"]
            rows.append([r.cell.label(), "ERROR", "-", "-", "-", first_line[0][:40]])
    widths = [max(len(header[c]), *(len(row[c]) for row in rows))
              for c in range(len(header))] if rows else [len(h) for h in header]
    sep = " | " if markdown else "  "

    def fmt(row: list[str]) -> str:
        line = sep.join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        return f"| {line} |" if markdown else line

    lines = [fmt(header)]
    if markdown:
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
