"""Parallel experiment sweeps with deterministic seeding and result caching.

The figure-reproduction benchmarks and the ``repro sweep`` CLI run grids of
``(app, trace, policy, seed)`` cells.  Each cell is an independent
simulation, so a sweep is embarrassingly parallel; this module fans cells
out over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
three properties the harness relies on:

* **Determinism** — a cell is fully described by ``(ExperimentConfig,
  policy name)``.  The policy is constructed *inside* the worker from its
  name, seeded with ``config.seed``, and every random stream in the
  simulator derives from that seed via :class:`~repro.simulation.rng.
  RngStreams`.  Summaries are therefore bitwise-identical whether a cell
  runs in-process, in a 2-worker pool or a 16-worker pool.
* **Caching** — completed cells are stored on disk under a stable
  fingerprint of the cell (config fields, profile registry contents,
  policy name and the package version).  Re-running a sweep skips every
  cell whose fingerprint is already cached.  Cells carrying custom
  application/trace objects have no stable textual identity and are simply
  never cached.
* **Failure isolation** — a worker exception is captured as a
  :class:`CellResult` with ``error`` set (full traceback text); the pool
  keeps draining the remaining cells rather than hanging or aborting the
  sweep.

Results come back *slim*: summary, metrics collector and module ids, not
the live cluster.  The cluster holds the event heap (closures — not
picklable) and everything the benchmarks consume is in the collector.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..metrics.analysis import Summary
from ..metrics.collector import MetricsCollector
from ..metrics.goodput import GoodputReport, goodput_report
from .configs import standard_config
from .runner import (
    ExperimentConfig,
    run_experiment,
    run_multi_scenario,
    run_scenario,
)
from .scenario import MultiScenario, Scenario, _canonical

#: Fingerprint schema version; bump when the cached payload shape changes.
_CACHE_SCHEMA = 2

_source_digest_cache: str | None = None


def _source_digest() -> str:
    """Digest of the installed ``repro`` sources.

    Folding this into every cell fingerprint means *any* code change —
    not just a version bump — invalidates cached results, so the figure
    benchmarks can never silently report numbers computed by old code.
    """
    global _source_digest_cache
    if _source_digest_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            h.update(str(path.relative_to(package_root)).encode("utf-8"))
            h.update(path.read_bytes())
        _source_digest_cache = h.hexdigest()
    return _source_digest_cache


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work.

    A config plus a registered policy name (the classic form), a
    declarative :class:`~repro.experiments.scenario.Scenario` — which also
    covers custom pipelines, composed traces and failure schedules — or a
    shared-cluster :class:`~repro.experiments.scenario.MultiScenario`, all
    of it picklable into workers and fingerprintable into the cache.
    """

    config: ExperimentConfig | None = None
    policy: str = ""
    scenario: Scenario | None = None
    multi: MultiScenario | None = None
    #: Collect summary counters only (no per-request records).  The
    #: Summary is identical either way; lean results simply cannot serve
    #: record-level analyses, so lean cells cache under their own
    #: fingerprints.
    lean: bool = False

    def __post_init__(self) -> None:
        forms = sum(
            x is not None for x in (self.config, self.scenario, self.multi)
        )
        if forms != 1:
            raise ValueError(
                "a sweep cell needs exactly one of: config, scenario, multi"
            )
        if self.config is not None and not self.policy:
            raise ValueError("config cells need a policy name")
        if self.scenario is not None:
            label = self.scenario.policy.label()
            if self.policy and self.policy != label:
                # A divergent label would fingerprint (and cache) the cell
                # under a policy other than the one that actually runs.
                raise ValueError(
                    f"cell policy {self.policy!r} conflicts with scenario "
                    f"policy {label!r}"
                )
            object.__setattr__(self, "policy", label)
        if self.multi is not None:
            # One label covering every tenant's policy (dedup, stable order).
            joined = "+".join(dict.fromkeys(
                t.scenario.policy.label() for t in self.multi.tenants
            ))
            if self.policy and self.policy != joined:
                raise ValueError(
                    f"cell policy {self.policy!r} conflicts with tenant "
                    f"policies {joined!r}"
                )
            object.__setattr__(self, "policy", joined)

    def label(self) -> str:
        if self.scenario is not None:
            return self.scenario.label()
        if self.multi is not None:
            return self.multi.label()
        c = self.config
        return f"{c.app}-{c.trace}-{self.policy}-s{c.seed}"


@dataclass
class CellResult:
    """Outcome of one cell: metrics on success, a traceback on failure."""

    cell: SweepCell
    policy_name: str
    summary: Summary | None
    collector: MetricsCollector | None
    module_ids: list[str]
    elapsed: float
    cached: bool = False
    error: str | None = None
    #: Shared-cluster cells only: per-app summaries keyed by tenant label
    #: (``summary``/``collector`` then hold the aggregate across apps).
    per_app: dict[str, Summary] | None = None
    #: Goodput-under-constraints report; set only when the scenario
    #: declared token-level SLO constraints (aggregate for multi cells).
    goodput: GoodputReport | None = None
    #: Shared-cluster cells: per-app goodput reports for tenants that
    #: declared constraints.
    per_app_goodput: dict[str, GoodputReport] | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class SweepEvent:
    """Progress notification delivered to ``run_sweep``'s ``on_event``."""

    kind: str  # "start" | "cached" | "done" | "error"
    index: int  # position of the cell in the input sequence
    total: int
    cell: SweepCell
    elapsed: float = 0.0
    error: str | None = None


def sweep_grid(
    apps: Sequence[str],
    traces: Sequence[str],
    policies: Sequence[str],
    seeds: Sequence[int] = (0,),
    **config_overrides,
) -> list[SweepCell]:
    """The cross product of apps x traces x policies x seeds as cells.

    ``config_overrides`` are forwarded to :func:`standard_config`
    (``duration``, ``utilization``, ``slo``, ``scaling``, ...).
    """
    return [
        SweepCell(
            config=standard_config(app, trace, seed=seed, **config_overrides),
            policy=policy,
        )
        for app in apps
        for trace in traces
        for policy in policies
        for seed in seeds
    ]


def scenario_cells(
    scenarios: "Iterable[Scenario | MultiScenario]",
) -> list[SweepCell]:
    """Wrap declarative scenarios (either schema) as sweep cells."""
    return [
        SweepCell(multi=s) if isinstance(s, MultiScenario)
        else SweepCell(scenario=s)
        for s in scenarios
    ]


def _registry_fingerprint(config: ExperimentConfig) -> list[list]:
    return [
        [p.name, p.base, p.per_item, p.max_batch]
        for name in config.registry.names()
        for p in [config.registry.get(name)]
    ]


def _references_external_components(
    trace_name: str, app_name: str | None, policy: str
) -> bool:
    """True when the named components resolve outside the ``repro`` package.

    The cell fingerprint covers the cell spec and the ``repro`` sources —
    not third-party code.  A downstream-registered trace, application or
    policy could be edited without changing either, so caching those
    cells would silently serve stale results.
    """
    from ..pipeline.applications import APPLICATIONS
    from ..policies.ablations import ABLATIONS
    from ..policies.registry import SYSTEM_FACTORIES
    from ..workload.generators import TRACES

    factories = [TRACES.get(trace_name)]
    if app_name is not None:
        factories.append(APPLICATIONS.get(app_name))
    factories.append(SYSTEM_FACTORIES.get(policy) or ABLATIONS.get(policy))

    def external(factory) -> bool:
        module = getattr(factory, "__module__", "") or ""
        return module != "repro" and not module.startswith("repro.")

    return any(external(f) for f in factories if f is not None)


def cell_fingerprint(cell: SweepCell) -> str | None:
    """Stable hex digest identifying a cell's result, or ``None``.

    Scenario cells fingerprint whenever every referenced component lives
    in the ``repro`` package — the spec is plain data, including inline
    pipelines and composed traces.  ``None`` means not cacheable: config
    cells carrying ``custom_app``/``custom_trace`` live objects, and
    scenario cells resolving third-party registrations (whose code the
    fingerprint cannot see), always run.
    """
    from .. import __version__  # deferred: repro/__init__ imports this module

    payload: dict = {"schema": _CACHE_SCHEMA, "version": __version__,
                     "source": _source_digest(), "policy": cell.policy}
    if cell.lean:
        # Lean results hold no records; keep them apart from full results
        # so a record-consuming sweep never gets a lean cache hit.  Only
        # set when lean so pre-existing full-cell fingerprints survive.
        payload["lean"] = True
    if cell.multi is not None:
        for tenant in cell.multi.tenants:
            s = tenant.scenario
            if _references_external_components(s.trace.name, s.app.name,
                                               s.policy.name):
                return None
        payload["multi"] = cell.multi.fingerprint()
    elif cell.scenario is not None:
        s = cell.scenario
        if _references_external_components(s.trace.name, s.app.name,
                                           s.policy.name):
            return None
        # The scenario's own digest is already canonical over numeric
        # spelling (int vs float authoring); fold it in rather than the
        # raw dict.
        payload["scenario"] = s.fingerprint()
    else:
        config = cell.config
        if config.custom_app is not None or config.custom_trace is not None:
            return None
        if _references_external_components(config.trace, config.app,
                                           cell.policy):
            return None
        for f in fields(config):
            if f.name in ("custom_app", "custom_trace", "registry"):
                continue
            payload[f.name] = getattr(config, f.name)
        payload["registry"] = _registry_fingerprint(config)
    # Canonical over numeric spelling: equal cells authored with int vs
    # float fields (25 vs 25.0) must share one cache identity.
    blob = json.dumps(_canonical(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepCache:
    """On-disk pickle store of :class:`CellResult` keyed by fingerprint.

    Entries live under a per-source-digest subdirectory.  A source edit
    changes every fingerprint, so entries written by older code can never
    hit again.  Stale buckets are *not* reclaimed eagerly: two checkouts
    sharing one cache dir would otherwise evict each other's results on
    every branch switch.  Reclamation is deferred to :func:`prune_cache`'s
    size budget (``--max-cache-mb``), whose oldest-first eviction drops
    cold buckets once the cache actually outgrows its bound.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.base = Path(root)
        self.root = self.base / _source_digest()[:16]

    def prune_stale(self) -> None:
        """Drop subdirectories written by source trees other than ours.

        Kept for callers that want the old eager reclamation; the cache no
        longer runs this on construction (see the class docstring).
        """
        if not self.base.is_dir():
            return
        for entry in self.base.iterdir():
            # Only touch dirs that look like our digest buckets; anything
            # else in the cache dir is not ours to delete.
            if (entry.is_dir() and entry != self.root
                    and len(entry.name) == 16
                    and all(c in "0123456789abcdef" for c in entry.name)):
                shutil.rmtree(entry, ignore_errors=True)

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.pkl"

    def load(self, fingerprint: str) -> CellResult | None:
        path = self._path(fingerprint)
        if not path.is_file():
            return None
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # A corrupt/truncated entry (killed run) must not poison the
            # sweep; drop it and recompute.
            path.unlink(missing_ok=True)
            return None
        if not isinstance(result, CellResult):
            path.unlink(missing_ok=True)
            return None
        try:
            # Touch on hit so prune_cache's oldest-first eviction is a
            # true LRU: hot entries survive, never-reused ones go first.
            os.utime(path)
        except OSError:
            pass
        result.cached = True
        return result

    def store(self, fingerprint: str, result: CellResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        # A per-writer temp name keeps concurrent sweeps sharing one cache
        # dir from interleaving writes; the rename is atomic vs readers.
        with tempfile.NamedTemporaryFile(
            dir=self.root, suffix=".tmp", delete=False
        ) as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp = Path(fh.name)
        tmp.replace(self._path(fingerprint))


def prune_cache(cache_dir: str | os.PathLike, max_bytes: int) -> int:
    """Evict oldest cache entries until the cache fits in ``max_bytes``.

    Keeps ``.sweep_cache/`` from growing unboundedly across benchmark runs:
    entries are dropped oldest-first (by mtime) across all source-digest
    buckets, and emptied buckets are removed.  Returns the bytes freed.
    A missing directory is a no-op.
    """
    if max_bytes < 0:
        raise ValueError("max_bytes must be >= 0")
    base = Path(cache_dir)
    if not base.is_dir():
        return 0
    # Orphaned temp files from killed writers never become entries and
    # would otherwise escape the budget forever; a live writer's temp is
    # milliseconds old, so an age cutoff separates the two safely.
    cutoff = time.time() - 600
    for tmp in base.rglob("*.tmp"):
        try:
            if tmp.stat().st_mtime < cutoff:
                tmp.unlink(missing_ok=True)
        except OSError:
            continue
    entries = []
    for path in base.rglob("*.pkl"):
        try:
            stat = path.stat()
        except OSError:
            continue  # concurrently evicted by another sweep
        entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort()
    total = sum(size for _, size, _ in entries)
    freed = 0
    for _, size, path in entries:
        if total <= max_bytes:
            break
        path.unlink(missing_ok=True)
        total -= size
        freed += size
        parent = path.parent
        try:
            if parent != base and not any(parent.iterdir()):
                parent.rmdir()
        except OSError:
            pass  # a concurrent sweep refilled or removed the bucket
    return freed


def execute_cell(cell: SweepCell) -> CellResult:
    """Run one cell to completion, never raising.

    This is the worker entry point — module-level so it pickles — and also
    the serial path, so both executions share one code path and one seeding
    discipline.
    """
    t0 = time.perf_counter()
    try:
        if cell.multi is not None:
            multi = run_multi_scenario(cell.multi, lean=cell.lean)
            from ..metrics.analysis import merge_collectors

            merged = merge_collectors(multi.collectors)
            per_app_goodput = {
                name: report
                for name, report in multi.goodputs.items()
                if report is not None
            }
            return CellResult(
                cell=cell,
                policy_name=cell.policy,
                summary=multi.aggregate,
                collector=merged,
                module_ids=list(multi.pool_ids),
                elapsed=time.perf_counter() - t0,
                per_app=dict(multi.summaries),
                # The aggregate report exists only when every tenant
                # declares the same constraints (merge propagates the spec
                # iff unanimous).
                goodput=goodput_report(merged, duration=multi.multi.duration()),
                per_app_goodput=per_app_goodput or None,
            )
        if cell.scenario is not None:
            result = run_scenario(cell.scenario, lean=cell.lean)
        else:
            result = run_experiment(cell.config, cell.policy, lean=cell.lean)
        return CellResult(
            cell=cell,
            policy_name=result.policy_name,
            summary=result.summary,
            collector=result.collector,
            module_ids=list(result.module_ids),
            elapsed=time.perf_counter() - t0,
            goodput=result.goodput,
        )
    except Exception:
        return CellResult(
            cell=cell,
            policy_name=cell.policy,
            summary=None,
            collector=None,
            module_ids=[],
            elapsed=time.perf_counter() - t0,
            error=traceback.format_exc(),
        )


def _emit(on_event: Callable[[SweepEvent], None] | None, event: SweepEvent) -> None:
    if on_event is not None:
        on_event(event)


def _result_event(index: int, total: int, result: CellResult) -> SweepEvent:
    return SweepEvent(
        kind="done" if result.ok else "error",
        index=index,
        total=total,
        cell=result.cell,
        elapsed=result.elapsed,
        error=result.error,
    )


def run_sweep(
    cells: Iterable[SweepCell],
    workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    on_event: Callable[[SweepEvent], None] | None = None,
) -> list[CellResult]:
    """Execute every cell, in parallel when ``workers > 1``.

    Results are returned in input order.  ``workers=None`` uses the
    machine's CPU count (capped at the number of cells); ``workers<=1``
    runs serially in-process, which is also the reference path parallel
    runs must match bit-for-bit.  When ``cache_dir`` is set, cached cells
    are returned without running and fresh successes are stored back.
    """
    cells = list(cells)
    total = len(cells)
    if total == 0:
        return []
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, total))
    cache = SweepCache(cache_dir) if cache_dir is not None else None

    results: list[CellResult | None] = [None] * total
    fingerprints: list[str | None] = [None] * total
    pending: list[int] = []
    for i, cell in enumerate(cells):
        fingerprints[i] = cell_fingerprint(cell) if cache else None
        hit = cache.load(fingerprints[i]) if cache and fingerprints[i] else None
        if hit is None and cache is not None and cell.lean:
            # A cached *full* result satisfies a lean request (its summary
            # is identical and it merely carries extra records); only the
            # reverse direction must miss.
            from dataclasses import replace

            full_fp = cell_fingerprint(replace(cell, lean=False))
            hit = cache.load(full_fp) if full_fp else None
        if hit is not None:
            results[i] = hit
            _emit(on_event, SweepEvent("cached", i, total, cell))
        else:
            pending.append(i)

    if workers == 1 or len(pending) <= 1:
        for i in pending:
            _emit(on_event, SweepEvent("start", i, total, cells[i]))
            result = execute_cell(cells[i])
            results[i] = result
            _emit(on_event, _result_event(i, total, result))
            if cache and fingerprints[i] and result.ok:
                cache.store(fingerprints[i], result)
        return [r for r in results if r is not None]

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: dict[Future, int] = {}
        for i in pending:
            _emit(on_event, SweepEvent("start", i, total, cells[i]))
            futures[pool.submit(execute_cell, cells[i])] = i
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for fut in done:
                i = futures[fut]
                exc = fut.exception()
                if exc is not None:
                    # The worker itself never raises, so this is pool-level
                    # trouble (a killed worker, unpicklable payload).  Record
                    # it on the cell and keep draining the rest.
                    result = CellResult(
                        cell=cells[i],
                        policy_name=cells[i].policy,
                        summary=None,
                        collector=None,
                        module_ids=[],
                        elapsed=0.0,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    result = fut.result()
                results[i] = result
                _emit(on_event, _result_event(i, total, result))
                if cache and fingerprints[i] and result.ok:
                    cache.store(fingerprints[i], result)
    return [r for r in results if r is not None]


def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``i/N`` shard designator into a 1-based ``(i, n)`` pair."""
    head, sep, tail = text.partition("/")
    try:
        index, count = int(head), int(tail)
    except ValueError:
        index, count = 0, 0
    if not sep or count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"shard must be 'i/N' with 1 <= i <= N, got {text!r}"
        )
    return index, count


def shard_indices(total: int, shard: tuple[int, int]) -> list[int]:
    """Global cell indices owned by one shard of an ``(i, n)`` partition.

    Round-robin over the grid order (``k % n == i - 1``): neighbouring
    grid cells usually share cost structure (same app/policy, varying
    seed), so striping balances shards better than contiguous blocks.
    The partition is a pure function of ``(total, shard)`` — every shard
    computes the same split independently, with no coordination.
    """
    index, count = shard
    if not 1 <= index <= count:
        raise ValueError(f"shard index {index} outside 1..{count}")
    return list(range(index - 1, total, count))


def merge_summaries(texts: Iterable[str]) -> str:
    """Merge per-shard ``--save-summaries`` files back into the serial form.

    Each input must be a shard file (entries carry the global ``index``
    written by a sharded run).  The merged output sorts by index,
    validates the partition is complete and non-overlapping, strips the
    shard bookkeeping and re-serializes — producing *byte-identical*
    output to the same grid run serially with ``--save-summaries``.
    """
    entries: list[dict] = []
    for text in texts:
        part = json.loads(text)
        if not isinstance(part, list):
            raise ValueError("merge input is not a summaries file")
        for entry in part:
            if not isinstance(entry, dict):
                raise ValueError(
                    "merge input is not a summaries file: entries must be "
                    f"objects, got {type(entry).__name__}"
                )
            index = entry.get("index")
            if (index is None or isinstance(index, bool)
                    or not isinstance(index, int) or index < 0):
                raise ValueError(
                    "summary entry missing a non-negative integer 'index': "
                    "merge inputs must be shard files written by a "
                    "--shard run"
                )
            entries.append(entry)
    if not entries:
        raise ValueError("merge inputs contain no summary entries")
    entries.sort(key=lambda e: e["index"])
    indices = [e["index"] for e in entries]
    if indices != list(range(len(entries))):
        present = set(indices)
        missing = sorted(set(range(len(entries))) - present)
        dupes = sorted({i for i in indices if indices.count(i) > 1})
        raise ValueError(
            f"shard files do not form a complete partition: "
            f"missing cells {missing}, duplicated cells {dupes}"
        )
    for entry in entries:
        del entry["index"]
    return json.dumps(entries, indent=2, sort_keys=True) + "\n"


def summaries_payload(
    results: Sequence[CellResult],
    indices: Sequence[int] | None = None,
) -> list[dict]:
    """Deterministic JSON form of sweep results (no timings, no cache bits).

    Everything in the payload is a pure function of the cells, so two runs
    of the same grid — serial, 4-proc, cached or fresh — serialize
    byte-identically.  ``repro ... --save-summaries`` writes this for CI to
    diff across worker counts.  ``indices`` (a sharded run's global cell
    positions, parallel to ``results``) stamps each entry with the
    ``index`` key :func:`merge_summaries` reassembles on.
    """
    from dataclasses import asdict

    if indices is not None and len(indices) != len(results):
        raise ValueError(
            f"got {len(results)} results but {len(indices)} shard indices"
        )
    out: list[dict] = []
    for pos, r in enumerate(results):
        entry: dict = {"label": r.cell.label(), "policy": r.policy_name}
        if indices is not None:
            entry["index"] = int(indices[pos])
        if r.ok and r.summary is not None:
            entry["summary"] = asdict(r.summary)
            if r.per_app:
                entry["per_app"] = {
                    app: asdict(s) for app, s in r.per_app.items()
                }
            # Optional keys, present only when constraints were declared —
            # payloads of constraint-free sweeps are byte-identical to
            # those written before goodput existed.
            if r.goodput is not None:
                entry["goodput"] = r.goodput.to_dict()
            if r.per_app_goodput:
                entry["per_app_goodput"] = {
                    app: g.to_dict() for app, g in r.per_app_goodput.items()
                }
        else:
            entry["error"] = (r.error or "").strip().splitlines()[-1:] or ["?"]
        out.append(entry)
    return out


def summaries_text(
    results: Sequence[CellResult],
    indices: Sequence[int] | None = None,
) -> str:
    """The canonical on-disk serialization of :func:`summaries_payload`.

    Single-sourced so ``--save-summaries`` files, the committed golden
    fingerprints and ``repro bench``'s determinism check can never drift
    apart on formatting.  With ``indices`` this writes the shard form
    that :func:`merge_summaries` accepts.
    """
    payload = summaries_payload(results, indices=indices)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_scenario_cells(path: str | os.PathLike) -> list[SweepCell]:
    """Cells for every scenario a file declares (validated, in order).

    Auto-detects the schema like ``repro scenario run/sweep --file``: a
    single :class:`Scenario`, a :class:`MultiScenario` or a
    :class:`SweepSpec` whose axes are expanded here.
    """
    from .scenario import SweepSpec, load_scenario_file

    spec = load_scenario_file(path)
    bases = spec.expand() if isinstance(spec, SweepSpec) else [spec]
    for base in bases:
        base.validate()
    return scenario_cells(bases)


def summary_table(results: Sequence[CellResult], markdown: bool = False) -> str:
    """Render sweep results as an aligned text (or markdown) table."""
    header = ["cell", "status", "goodput/s", "drop", "invalid", "time"]
    rows: list[list[str]] = []
    for r in results:
        if r.ok and r.summary is not None:
            s = r.summary
            rows.append([
                r.cell.label(),
                "cached" if r.cached else "ok",
                f"{s.goodput:.1f}",
                f"{s.drop_rate:.2%}",
                f"{s.invalid_rate:.2%}",
                f"{r.elapsed:.1f}s",
            ])
            # Shared-cluster cells: one indented row per tenant app under
            # the aggregate, so sweeps surface the per-app breakdown too.
            for app, app_summary in (r.per_app or {}).items():
                rows.append([
                    f"  - {app}",
                    "app",
                    f"{app_summary.goodput:.1f}",
                    f"{app_summary.drop_rate:.2%}",
                    f"{app_summary.invalid_rate:.2%}",
                    "",
                ])
        else:
            first_line = (r.error or "").strip().splitlines()[-1:] or ["?"]
            rows.append([r.cell.label(), "ERROR", "-", "-", "-", first_line[0][:40]])
    widths = [max(len(header[c]), *(len(row[c]) for row in rows))
              for c in range(len(header))] if rows else [len(h) for h in header]
    sep = " | " if markdown else "  "

    def fmt(row: list[str]) -> str:
        line = sep.join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        return f"| {line} |" if markdown else line

    lines = [fmt(header)]
    if markdown:
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
