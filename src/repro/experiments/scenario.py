"""Declarative, serializable experiment scenarios.

A :class:`Scenario` is one frozen spec covering everything the paper's
evaluation varies: the workload (a *named* trace plus rate/burst overlays),
the application (a registered name or an inline custom pipeline with its
model profiles), the drop policy, worker provisioning, reactive-scaling
configuration and a schedule of
:class:`~repro.simulation.failures.FailureEvent`.

Everything is plain data: a scenario round-trips through
``Scenario.from_dict(s.to_dict())`` (and JSON files), pickles into sweep
worker processes, and fingerprints stably for the on-disk result cache —
including synthetic custom pipelines and composed traces, which the old
``custom_app``/``custom_trace`` live objects could do neither of.  This is
the deployment-description pattern production serving stacks (Clipper,
Nexus) use, applied to the experiment surface.

Resolution happens through the three name-keyed registries:
:func:`~repro.pipeline.applications.register_application`,
:func:`~repro.workload.generators.register_trace` and
:func:`~repro.policies.registry.register_policy`.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..metrics.goodput import GoodputSpec
from ..pipeline.applications import APPLICATIONS, Application, get_application
from ..pipeline.llm_profiles import profile_from_dict, profile_to_dict
from ..pipeline.profiles import DEFAULT_PROFILES, ModelProfile, ProfileRegistry
from ..pipeline.spec import ModuleSpec, PipelineSpec, chain
from ..policies.spec import PolicySpec
from ..simulation.failures import FailureEvent
from ..simulation.resilience import HopResilience
from ..simulation.routing import PathRouter, ProbabilisticRouter, StaticRouter
from ..workload.generators import TRACES, get_trace, stream_trace
from ..workload.source import ArrivalSource, FileSource
from ..workload.trace import Trace

__all__ = [
    "AppSpec",
    "BurstSpec",
    "GoodputSpec",
    "MultiScenario",
    "PolicySpec",
    "RouterSpec",
    "Scenario",
    "ScalingSpec",
    "SweepSpec",
    "TenantSpec",
    "TraceSpec",
    "load_scenario_file",
    "multi_scenario_grid",
    "scenario_axes",
    "scenario_from_dict",
    "scenario_grid",
]


def _freeze(value: Any) -> Any:
    """Recursively convert dicts/lists to sorted tuples (hashable, stable)."""
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for serialisation: tuples back to lists.

    Not an inverse for *nested* dicts (a frozen dict is indistinguishable
    from a list of pairs); :class:`TraceSpec` rejects those up front.
    """
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


def _contains_mapping(value: Any) -> bool:
    """True when a (possibly nested) value holds a dict anywhere."""
    if isinstance(value, dict):
        return True
    if isinstance(value, (list, tuple)):
        return any(_contains_mapping(v) for v in value)
    return False


def freeze_trace_args(args: Any) -> tuple:
    """Validate and freeze generator kwargs into hashable sorted pairs.

    Shared by :class:`TraceSpec` and ``ExperimentConfig`` so the two
    trace-declaration surfaces enforce one rule set.  Nested mappings are
    rejected: freezing would mangle them into pair-lists that
    :func:`_thaw` cannot tell apart from genuine nested lists.  Keys that
    collide with the fixed :func:`~repro.workload.generators.get_trace`
    keywords are rejected too — they would crash with a TypeError at
    generation time.
    """
    raw = dict(args)
    clashes = {"name", "base_rate", "duration", "seed"} & set(raw)
    if clashes:
        raise ValueError(
            "trace args may not override reserved generator keywords: "
            f"{sorted(clashes)}"
        )
    for key, value in raw.items():
        if _contains_mapping(value):
            raise ValueError(
                f"trace arg {key!r} must not contain nested mappings; "
                "use scalars and (nested) lists"
            )
    return _freeze(raw)


def _canonical(value: Any) -> Any:
    """Normalise numeric spelling for fingerprinting.

    ``Scenario(duration=8)`` and its JSON round-trip (``8.0``) compare
    equal, so they must hash equal too — otherwise a spec authored in
    Python and the same spec re-loaded from a file would miss each
    other's cache entries.  Bools are checked first (bool is an int
    subclass); every other int becomes a float.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return float(value)
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def _check_keys(data: dict, allowed: set[str], what: str) -> None:
    if not isinstance(data, dict):
        raise ValueError(
            f"{what} section must be a mapping, got {type(data).__name__}"
        )
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown {what} keys: {sorted(unknown)}")


def _check_provision_targets(
    workers: "int | dict[str, int] | None",
    failures: "tuple[FailureEvent, ...]",
    ids: set[str],
    noun: str,
    suffix: str = "",
) -> None:
    """Worker counts and failure events must reference real ``noun``s.

    Shared by :class:`Scenario` (``noun="module"``) and
    :class:`MultiScenario` (``noun="pool"``) at both construction (when
    the ids resolve early) and ``validate()``.
    """
    if isinstance(workers, dict):
        unknown = set(workers) - ids
        if unknown:
            raise ValueError(
                f"workers reference unknown {noun}s: {sorted(unknown)}"
                f"{suffix}"
            )
        missing = ids - set(workers)
        if missing:
            raise ValueError(
                f"workers must cover every {noun}; missing: {sorted(missing)}"
            )
        bad = sorted(k for k, v in workers.items() if v < 1)
        if bad:
            raise ValueError(f"workers must be >= 1; got less for: {bad}")
    elif workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    for event in failures:
        if event.module_id not in ids:
            raise ValueError(
                f"failure event at t={event.time} references unknown "
                f"{noun} {event.module_id!r}{suffix}"
            )


@dataclass(frozen=True)
class BurstSpec:
    """Rate overlay: multiply arrivals by ``factor`` over one window.

    Applied via :meth:`repro.workload.trace.Trace.overlay_burst`; with
    ``factor > 1`` this is the "workload burst" the paper motivates
    proactive dropping with, declared instead of hand-built.
    """

    start: float
    length: float
    factor: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("burst start must be >= 0")
        if self.length <= 0:
            raise ValueError("burst length must be > 0")
        if self.factor <= 0:
            raise ValueError("burst factor must be > 0")

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "length": self.length,
            "factor": self.factor,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BurstSpec":
        _check_keys(data, {"start", "length", "factor", "seed"}, "burst")
        return cls(
            start=float(data["start"]),
            length=float(data["length"]),
            factor=float(data["factor"]),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class TraceSpec:
    """A workload declared as a registered generator plus overlays.

    ``base_rate=None`` leaves the rate to the scenario's calibration
    (``utilization``) or the 60 req/s default; ``seed=None`` inherits the
    scenario seed.  ``args`` are extra generator keywords (e.g. tweet's
    ``burst_at``), ``scale`` thins the generated trace (<= 1) and
    ``bursts`` overlay rate multipliers — so a "composed" trace is data,
    not a live :class:`~repro.workload.trace.Trace` object.

    Two lazy forms extend the generator declaration:

    - ``path`` replays an on-disk arrival log (CSV or JSONL, see
      :class:`~repro.workload.source.FileSource`) instead of generating;
      ``digest`` optionally pins its sha256 so the spec stays frozen and
      cache-fingerprintable even though the workload lives outside the
      file.  File-backed traces take no ``base_rate`` or ``args`` — the
      file *is* the realization.  When ``name`` is left at its default it
      falls back to the file stem.
    - ``stream=True`` generates the named trace as a windowed streaming
      source (:func:`~repro.workload.generators.stream_trace`) — flat
      memory for arbitrarily long workloads, statistically equivalent to
      but a *different realization* than the eager generator.

    New keys are serialized only when set, so the fingerprint of every
    pre-existing generator spec is unchanged.
    """

    name: str = "tweet"
    duration: float = 120.0
    base_rate: float | None = None
    seed: int | None = None
    args: tuple = ()
    scale: float = 1.0
    bursts: tuple[BurstSpec, ...] = ()
    path: str | None = None
    digest: str | None = None
    stream: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("trace duration must be > 0")
        if self.base_rate is not None and self.base_rate <= 0:
            raise ValueError("trace base_rate must be > 0 (or null)")
        if not 0 < self.scale <= 1.0:
            raise ValueError("trace scale must be in (0, 1] (thinning only)")
        if self.digest is not None and self.path is None:
            raise ValueError("trace digest requires a file-backed path")
        if self.path is not None:
            if self.stream:
                raise ValueError(
                    "stream is implied by path; a file-backed trace "
                    "always replays lazily"
                )
            if self.base_rate is not None:
                raise ValueError(
                    "file-backed traces take no base_rate: the file fixes "
                    "the arrivals"
                )
            if dict(self.args):
                raise ValueError(
                    "file-backed traces take no generator args"
                )
            if self.name == "tweet":
                # Field default; a replayed log is better known by its
                # file stem than by the generator default name.
                object.__setattr__(self, "name", Path(self.path).stem)
            # The file also fixes the duration (like the arrivals): probe
            # the header so bursts validate and summaries normalize
            # against the replayed horizon, not the field default.  The
            # digest is deliberately not checked here — that happens once
            # at run time, not on every spec parse.
            probe = FileSource(self.path, name=self.name)
            object.__setattr__(self, "duration", probe.duration)
        object.__setattr__(self, "args", freeze_trace_args(self.args))
        object.__setattr__(
            self,
            "bursts",
            tuple(
                b if isinstance(b, BurstSpec) else BurstSpec.from_dict(b)
                for b in self.bursts
            ),
        )
        for burst in self.bursts:
            if burst.start >= self.duration:
                raise ValueError(
                    f"burst start {burst.start} outside trace duration "
                    f"{self.duration}"
                )

    def is_lazy(self) -> bool:
        """True when the workload replays as a streaming source."""
        return self.stream or self.path is not None

    def build_base(self, base_rate: float, default_seed: int = 0) -> Trace:
        """The declared steady workload: generator args + thinning.

        Bursts are deliberately excluded — they are the "unpredictable
        events" layered on top, and provisioning must not see them.
        File-backed traces materialize their stream here.
        """
        if self.path is not None:
            return self.build_source_base(
                base_rate, default_seed
            ).materialize(self.name)
        if self.name not in TRACES:
            raise KeyError(
                f"unknown trace {self.name!r}; known: {sorted(TRACES)}"
            )
        seed = self.seed if self.seed is not None else default_seed
        kwargs = {k: _thaw(v) for k, v in self.args}
        trace = get_trace(
            self.name, base_rate=base_rate, duration=self.duration,
            seed=seed, **kwargs,
        )
        if self.scale != 1.0:
            trace = trace.scaled(self.scale)
        return trace

    def build_source_base(
        self, base_rate: float, default_seed: int = 0
    ) -> ArrivalSource:
        """The steady workload as a lazy source (bursts excluded).

        The streaming counterpart of :meth:`build_base`: a file replay
        for ``path`` specs, a windowed :func:`~repro.workload.generators.
        stream_trace` otherwise, with the declared thinning composed on
        top as a streaming transform.
        """
        if self.path is not None:
            source: ArrivalSource = FileSource(
                self.path, name=self.name, duration=self.duration,
                digest=self.digest,
            )
        else:
            seed = self.seed if self.seed is not None else default_seed
            kwargs = {k: _thaw(v) for k, v in self.args}
            source = stream_trace(
                self.name, base_rate=base_rate, duration=self.duration,
                seed=seed, **kwargs,
            )
        if self.scale != 1.0:
            source = source.scaled(self.scale)
        return source

    def overlay(self, trace: Trace, default_seed: int = 0) -> Trace:
        """Apply the declared burst overlays to an already-built trace."""
        seed = self.seed if self.seed is not None else default_seed
        for burst in self.bursts:
            trace = trace.overlay_burst(
                burst.start, burst.length, burst.factor, seed=burst.seed + seed
            )
        return trace

    def overlay_source(
        self, source: ArrivalSource, default_seed: int = 0
    ) -> ArrivalSource:
        """Burst overlays as streaming transforms (byte-identical to the
        eager :meth:`overlay` on the same arrivals)."""
        seed = self.seed if self.seed is not None else default_seed
        for burst in self.bursts:
            source = source.overlay_burst(
                burst.start, burst.length, burst.factor, seed=burst.seed + seed
            )
        return source

    def build(self, base_rate: float, default_seed: int = 0) -> Trace:
        """Generate the composed trace at ``base_rate``."""
        return self.overlay(
            self.build_base(base_rate, default_seed), default_seed
        )

    def build_source(
        self, base_rate: float, default_seed: int = 0
    ) -> ArrivalSource:
        """The composed workload as a lazy source (overlays included)."""
        return self.overlay_source(
            self.build_source_base(base_rate, default_seed), default_seed
        )

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "duration": self.duration,
            "base_rate": self.base_rate,
            "seed": self.seed,
            "args": {k: _thaw(v) for k, v in self.args},
            "scale": self.scale,
            "bursts": [b.to_dict() for b in self.bursts],
        }
        # Emitted only when set: every pre-existing generator spec keeps
        # its serialized form — and therefore its cache fingerprint.
        if self.path is not None:
            out["path"] = self.path
        if self.digest is not None:
            out["digest"] = self.digest
        if self.stream:
            out["stream"] = True
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        _check_keys(
            data,
            {
                "name", "duration", "base_rate", "seed", "args", "scale",
                "bursts", "path", "digest", "stream",
            },
            "trace",
        )
        return cls(
            name=str(data.get("name", "tweet")),
            duration=float(data.get("duration", 120.0)),
            base_rate=(
                None if data.get("base_rate") is None
                else float(data["base_rate"])
            ),
            seed=None if data.get("seed") is None else int(data["seed"]),
            args=dict(data.get("args", {})).items(),
            scale=float(data.get("scale", 1.0)),
            bursts=tuple(
                BurstSpec.from_dict(b) for b in data.get("bursts", [])
            ),
            path=None if data.get("path") is None else str(data["path"]),
            digest=(
                None if data.get("digest") is None else str(data["digest"])
            ),
            stream=bool(data.get("stream", False)),
        )


@dataclass(frozen=True)
class AppSpec:
    """An application declared by registered name or as an inline pipeline.

    Inline pipelines give ``modules`` (ids, models, DAG edges) plus a
    required ``slo`` and any :class:`~repro.pipeline.profiles.ModelProfile`
    entries their models need beyond the defaults — the serializable form
    of what ``ExperimentConfig.custom_app`` used to carry as a live object.
    """

    name: str | None = None
    modules: tuple[ModuleSpec, ...] = ()
    pipeline: str = "custom"
    slo: float | None = None
    profiles: tuple[ModelProfile, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "modules",
            tuple(
                m if isinstance(m, ModuleSpec) else self._module_from_dict(m)
                for m in self.modules
            ),
        )
        object.__setattr__(
            self,
            "profiles",
            tuple(
                p if isinstance(p, ModelProfile) else profile_from_dict(p)
                for p in self.profiles
            ),
        )
        if (self.name is None) == (not self.modules):
            raise ValueError(
                "an app spec needs exactly one of: a registered name, or "
                "inline modules"
            )
        if self.modules and self.slo is None:
            raise ValueError("an inline pipeline requires an explicit slo")
        if self.slo is not None and self.slo <= 0:
            raise ValueError("slo must be > 0")

    @staticmethod
    def _module_from_dict(data: dict) -> ModuleSpec:
        _check_keys(data, {"id", "model", "pres", "subs"}, "module")
        return ModuleSpec(
            id=str(data["id"]),
            model=str(data["model"]),
            pres=tuple(str(p) for p in data.get("pres", ())),
            subs=tuple(str(s) for s in data.get("subs", ())),
        )

    @classmethod
    def chained(
        cls,
        models: Sequence[str],
        slo: float,
        pipeline: str = "custom",
        profiles: Sequence[ModelProfile] = (),
    ) -> "AppSpec":
        """Convenience: a linear pipeline from an ordered model list."""
        spec = chain(pipeline, list(models))
        return cls(
            modules=tuple(spec.modules), pipeline=pipeline, slo=slo,
            profiles=tuple(profiles),
        )

    def build(self) -> Application:
        """Resolve to a live :class:`Application`."""
        if self.name is not None:
            if self.name not in APPLICATIONS:
                raise KeyError(
                    f"unknown application {self.name!r}; "
                    f"known: {sorted(APPLICATIONS)}"
                )
            app = get_application(self.name)
            if self.slo is not None:
                app = Application(spec=app.spec, slo=self.slo)
            return app
        spec = PipelineSpec(name=self.pipeline, modules=list(self.modules))
        return Application(spec=spec, slo=self.slo)

    def build_registry(self) -> ProfileRegistry:
        """Default profiles with this app's extras layered on top."""
        if not self.profiles:
            return DEFAULT_PROFILES
        merged = {
            name: DEFAULT_PROFILES.get(name) for name in DEFAULT_PROFILES.names()
        }
        for profile in self.profiles:
            merged[profile.name] = profile
        return ProfileRegistry(list(merged.values()))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "pipeline": self.pipeline,
            "modules": [
                {
                    "id": m.id, "model": m.model,
                    "pres": list(m.pres), "subs": list(m.subs),
                }
                for m in self.modules
            ],
            "slo": self.slo,
            # Either profile flavour: plain fixed-duration dicts or "llm"
            # token-cost dicts (see repro.pipeline.llm_profiles).
            "profiles": [profile_to_dict(p) for p in self.profiles],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AppSpec":
        _check_keys(
            data,
            {"name", "pipeline", "modules", "chain", "slo", "profiles"},
            "app",
        )
        profiles = tuple(
            profile_from_dict(p) for p in data.get("profiles", [])
        )
        slo = None if data.get("slo") is None else float(data["slo"])
        if "chain" in data:
            if data.get("name") or data.get("modules"):
                raise ValueError(
                    "'chain' is exclusive with 'name' and 'modules'"
                )
            return cls.chained(
                [str(m) for m in data["chain"]], slo=slo,
                pipeline=str(data.get("pipeline", "custom")),
                profiles=profiles,
            )
        return cls(
            name=None if data.get("name") is None else str(data["name"]),
            modules=tuple(data.get("modules", ())),
            pipeline=str(data.get("pipeline", "custom")),
            slo=slo,
            profiles=profiles,
        )


@dataclass(frozen=True)
class ScalingSpec:
    """Reactive-scaler configuration (replaces the old bare bool knob)."""

    enabled: bool = False
    interval: float = 2.0
    cold_start: float = 8.0
    headroom: float = 1.1
    min_workers: int = 1
    max_workers: int = 16
    scale_in_patience: int = 4
    graceful_scale_in: bool = False

    def __post_init__(self) -> None:
        if self.interval <= 0:
            # interval=0 would flood the event queue with same-timestamp
            # ticks and hang the simulation.
            raise ValueError("scaling interval must be > 0")
        if self.cold_start < 0:
            raise ValueError("scaling cold_start must be >= 0")
        if self.headroom <= 0:
            raise ValueError("scaling headroom must be > 0")
        if self.min_workers < 1:
            raise ValueError("scaling min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("scaling max_workers must be >= min_workers")
        if self.scale_in_patience < 1:
            raise ValueError("scaling scale_in_patience must be >= 1")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ScalingSpec":
        allowed = {f.name for f in fields(cls)}
        _check_keys(data, allowed, "scaling")
        # Coerce like every sibling from_dict: JSON authors write `8`
        # where Python holds 8.0, and an uncoerced int would change the
        # fingerprint of an otherwise-equal scenario.
        bool_keys = {"enabled", "graceful_scale_in"}
        int_keys = {"min_workers", "max_workers", "scale_in_patience"}
        kwargs: dict = {}
        for key, value in data.items():
            if key in bool_keys:
                if not isinstance(value, bool):
                    raise ValueError(f"scaling {key} must be true/false")
                kwargs[key] = value
            elif key in int_keys:
                if int(value) != value:
                    raise ValueError(
                        f"scaling {key} must be an integer, got {value}"
                    )
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)


@dataclass(frozen=True)
class RouterSpec:
    """Declarative fork routing for DAG pipelines.

    ``kind="static"`` keeps the default fan-out-to-all semantics;
    ``kind="probabilistic"`` picks exactly one successor per request at
    every fork, weighted by ``weights`` (successor module id -> weight,
    unlisted successors default to 1.0).  ``seed=None`` inherits the
    scenario seed, so sweeping a scenario over seeds re-seeds its branch
    choices too.  This is the serializable form of
    :class:`~repro.simulation.routing.ProbabilisticRouter` — the paper's
    request-specific dynamic paths (agentic RAG's retrieve -> rerank |
    generate_direct split) declared as data.
    """

    kind: str = "static"
    weights: tuple = ()  # frozen (module id, weight) pairs
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("static", "probabilistic"):
            raise ValueError(
                f"router kind must be 'static' or 'probabilistic', "
                f"got {self.kind!r}"
            )
        raw = dict(self.weights)
        if raw and self.kind == "static":
            raise ValueError("a static router takes no weights")
        for key, value in raw.items():
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"router weight for {key!r} must be > 0, got {value}"
                )
        object.__setattr__(self, "weights", _freeze(raw))

    def build(self, default_seed: int = 0) -> PathRouter:
        """Resolve to a live :class:`~repro.simulation.routing.PathRouter`."""
        if self.kind == "static":
            return StaticRouter()
        seed = self.seed if self.seed is not None else default_seed
        weights = {str(k): float(v) for k, v in self.weights}
        return ProbabilisticRouter(weights or None, seed=seed)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "weights": {k: v for k, v in self.weights},
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RouterSpec":
        _check_keys(data, {"kind", "weights", "seed"}, "router")
        return cls(
            kind=str(data.get("kind", "static")),
            weights=tuple(dict(data.get("weights", {})).items()),
            seed=None if data.get("seed") is None else int(data["seed"]),
        )


@dataclass(frozen=True)
class Scenario:
    """One serializable spec from workload to failure injection.

    The unit of experiment declaration: runnable in-process via
    :func:`repro.experiments.runner.run_scenario`, shippable to sweep
    workers (it pickles), cacheable on disk (it fingerprints), and
    storable as JSON next to the figures it produces.
    """

    app: AppSpec = field(default_factory=lambda: AppSpec(name="lv"))
    trace: TraceSpec = field(default_factory=TraceSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    seed: int = 0
    workers: int | dict[str, int] | None = None
    utilization: float | None = None
    provision_rate: float | None = None
    provision_headroom: float = 1.0
    sync_interval: float = 1.0
    stats_window: float = 5.0
    drain: float = 5.0
    scaling: ScalingSpec = field(default_factory=ScalingSpec)
    failures: tuple[FailureEvent, ...] = ()
    name: str = ""
    #: Token-level SLO constraints (TTFT/TPOT/e2e); when any is declared
    #: the run also produces a :class:`~repro.metrics.goodput.GoodputReport`.
    goodput: GoodputSpec | None = None
    #: Fork routing (None = static fan-out-to-all).
    router: RouterSpec | None = None
    #: Per-hop resilience policies, as (module_id, HopResilience) pairs
    #: (dicts coerce).  Empty — the default — keeps every module on its
    #: resilience-free fast path and the serialized form key-free, so all
    #: pre-existing fingerprints are unchanged.
    resilience: tuple = ()

    def __post_init__(self) -> None:
        # Accept dict forms for the nested specs too, mirroring how
        # failures/bursts/modules coerce — Scenario(app={"name": "tm"})
        # is the natural Python transcription of the JSON shape.
        if isinstance(self.app, dict):
            object.__setattr__(self, "app", AppSpec.from_dict(self.app))
        if isinstance(self.trace, dict):
            object.__setattr__(self, "trace", TraceSpec.from_dict(self.trace))
        if not isinstance(self.policy, PolicySpec):
            # Bare names are the legacy spelling every pre-PolicySpec file
            # (and test) uses; mappings are the parameterized form.
            object.__setattr__(self, "policy", PolicySpec.coerce(self.policy))
        if isinstance(self.scaling, dict):
            object.__setattr__(
                self, "scaling", ScalingSpec.from_dict(self.scaling)
            )
        if isinstance(self.goodput, dict):
            object.__setattr__(
                self, "goodput", GoodputSpec.from_dict(self.goodput)
            )
        if isinstance(self.router, dict):
            object.__setattr__(
                self, "router", RouterSpec.from_dict(self.router)
            )
        if isinstance(self.workers, dict):
            for key, value in self.workers.items():
                if int(value) != value:
                    raise ValueError(
                        f"workers[{key!r}] must be an integer, got {value}"
                    )
            object.__setattr__(
                self,
                "workers",
                {str(k): int(v) for k, v in self.workers.items()},
            )
        elif self.workers is not None:
            if int(self.workers) != self.workers:
                raise ValueError(
                    f"workers must be an integer, got {self.workers}"
                )
            object.__setattr__(self, "workers", int(self.workers))
        if self.sync_interval <= 0:
            # A zero interval floods the event queue with same-timestamp
            # ticks and the simulation never advances.
            raise ValueError("sync_interval must be > 0")
        if self.stats_window <= 0:
            raise ValueError("stats_window must be > 0")
        if self.drain < 0:
            raise ValueError("drain must be >= 0")
        if self.utilization is not None and self.utilization <= 0:
            raise ValueError("utilization must be > 0 (or null)")
        if self.provision_rate is not None and self.provision_rate <= 0:
            raise ValueError("provision_rate must be > 0 (or null)")
        if self.provision_headroom <= 0:
            raise ValueError("provision_headroom must be > 0")
        object.__setattr__(
            self,
            "failures",
            tuple(
                e if isinstance(e, FailureEvent) else FailureEvent.from_dict(e)
                for e in self.failures
            ),
        )
        pairs = (
            self.resilience.items()
            if isinstance(self.resilience, dict)
            else self.resilience
        )
        object.__setattr__(
            self,
            "resilience",
            tuple(sorted(
                (
                    (
                        str(mid),
                        hop if isinstance(hop, HopResilience)
                        else HopResilience.from_dict(hop),
                    )
                    for mid, hop in pairs
                ),
                key=lambda pair: pair[0],
            )),
        )
        seen_hops = [mid for mid, _ in self.resilience]
        if len(set(seen_hops)) != len(seen_hops):
            raise ValueError("duplicate module id in resilience spec")
        # Fail fast on mistargeted failures/workers: a bad module id in a
        # hand-authored spec should raise here, not as a KeyError minutes
        # into a run.  Apps referencing a not-yet-registered name stay lazy
        # (validate() is the authoritative pass), and the app is only
        # resolved when there are targets to check — grid expansion builds
        # thousands of these.
        for event in self.failures:
            if event.time >= self.trace.duration:
                raise ValueError(
                    f"failure event at t={event.time} falls outside the "
                    f"trace duration {self.trace.duration}"
                )
        if self.failures or self.resilience or isinstance(self.workers, dict):
            module_ids = self._known_module_ids()
            if module_ids is not None:
                self._check_targets(module_ids)
        if not isinstance(self.workers, dict) and (
            self.workers is not None and self.workers < 1
        ):
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    def _known_module_ids(self) -> set[str] | None:
        """Module ids when resolvable without running (else ``None``).

        Inline pipelines carry their modules; named apps resolve iff the
        name is already registered.
        """
        if self.app.modules:
            return {m.id for m in self.app.modules}
        if self.app.name in APPLICATIONS:
            try:
                return set(self.app.build().spec.module_ids)
            except (KeyError, ValueError):
                return None
        return None

    def _check_targets(self, module_ids: set[str]) -> None:
        _check_provision_targets(
            self.workers, self.failures, module_ids, "module"
        )
        for event in self.failures:
            if event.dst is not None and event.dst not in module_ids:
                raise ValueError(
                    f"link fault targets unknown module {event.dst!r}"
                )
        for mid, hop in self.resilience:
            if mid not in module_ids:
                raise ValueError(
                    f"resilience spec targets unknown module {mid!r}"
                )
            if hop.fallback is not None and hop.fallback not in module_ids:
                raise ValueError(
                    f"resilience fallback for {mid!r} targets unknown "
                    f"module {hop.fallback!r}"
                )

    def label(self) -> str:
        """Short identifier used by sweep progress and result tables."""
        base = self.name or f"{self.app.name or self.app.pipeline}-{self.trace.name}"
        return f"{base}-{self.policy.label()}-s{self.seed}"

    def validate(self) -> "Scenario":
        """Resolve every registry reference now instead of at run time.

        The constructors validate structure; names (policy, trace,
        application, model profiles, module ids) are checked lazily so
        registration order stays flexible.  Callers that load
        user-authored files (the CLI) call this to surface a broken
        reference as one clean error up front.  Returns ``self``.
        """
        self.policy.validate()
        if self.utilization is not None and self.trace.base_rate is not None:
            raise ValueError(
                "utilization and trace base_rate are mutually exclusive: "
                "calibration would silently override the explicit rate"
            )
        if self.utilization is not None and self.provision_rate is not None:
            raise ValueError(
                "utilization and provision_rate are mutually exclusive: "
                "calibration sizes workers itself, so the explicit rate "
                "would be silently ignored"
            )
        if self.trace.path is not None:
            # File-backed workload: the name is a label, not a registry
            # key, and calibration has no generator to pilot against.
            if self.utilization is not None:
                raise ValueError(
                    "utilization calibration requires a generator trace; "
                    "a file-backed trace fixes its own arrivals — set "
                    "workers or provision_rate instead"
                )
        else:
            if self.trace.name not in TRACES:
                raise ValueError(
                    f"unknown trace {self.trace.name!r}; "
                    f"known: {sorted(TRACES)}"
                )
            generator = TRACES[self.trace.name]
            parameters = inspect.signature(generator).parameters
            if not any(
                p.kind is p.VAR_KEYWORD for p in parameters.values()
            ):
                unknown_args = (
                    {key for key, _ in self.trace.args} - set(parameters)
                )
                if unknown_args:
                    raise ValueError(
                        f"trace {self.trace.name!r} does not accept args: "
                        f"{sorted(unknown_args)}"
                    )
        try:
            app = self.build_application()
            registry = self.build_registry()
            for module in app.spec.modules:
                registry.get(module.model)
        except KeyError as exc:
            raise ValueError(str(exc).strip('"')) from None
        # Target checks may already have run at construction when the app
        # was resolvable then; this pass is authoritative (the app resolved
        # two lines up, so module ids are definitely known here).
        self._check_targets(set(app.spec.module_ids))
        for mid, hop in self.resilience:
            if hop.fallback is None:
                continue
            from ..simulation.resilience import descendants

            if hop.fallback in descendants(app.spec, mid):
                raise ValueError(
                    f"module {mid!r} cannot fall back to its downstream "
                    f"module {hop.fallback!r}; valid targets are off-path "
                    "branches (e.g. a router-skipped sibling)"
                )
        if self.router is not None:
            unknown = (
                {k for k, _ in self.router.weights} - set(app.spec.module_ids)
            )
            if unknown:
                raise ValueError(
                    f"router weights reference unknown modules: "
                    f"{sorted(unknown)}"
                )
        return self

    # -- resolution --------------------------------------------------------

    def build_application(self) -> Application:
        return self.app.build()

    def build_registry(self) -> ProfileRegistry:
        return self.app.build_registry()

    def build_trace(self, base_rate: float) -> Trace:
        return self.trace.build(base_rate, default_seed=self.seed)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "app": self.app.to_dict(),
            "trace": self.trace.to_dict(),
            # Compact: a param-less policy stays the legacy bare string, so
            # old files and old fingerprints survive the PolicySpec move.
            "policy": self.policy.to_compact(),
            "seed": self.seed,
            "workers": (
                dict(self.workers) if isinstance(self.workers, dict)
                else self.workers
            ),
            "utilization": self.utilization,
            "provision_rate": self.provision_rate,
            "provision_headroom": self.provision_headroom,
            "sync_interval": self.sync_interval,
            "stats_window": self.stats_window,
            "drain": self.drain,
            "scaling": self.scaling.to_dict(),
            "failures": [e.to_dict() for e in self.failures],
            "name": self.name,
            "goodput": None if self.goodput is None else self.goodput.to_dict(),
            "router": None if self.router is None else self.router.to_dict(),
        }
        if self.resilience:
            # Only-when-set (the TenantSpec.quota pattern): resilience-free
            # scenarios keep their pre-existing fingerprints byte-identical.
            out["resilience"] = {
                mid: hop.to_dict() for mid, hop in self.resilience
            }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        _check_keys(
            data,
            {
                "app", "trace", "policy", "seed", "workers", "utilization",
                "provision_rate", "provision_headroom", "sync_interval",
                "stats_window", "drain", "scaling", "failures", "name",
                "goodput", "router", "resilience",
            },
            "scenario",
        )
        # Both workers forms are normalized/validated by __post_init__.
        workers = data.get("workers")
        return cls(
            app=AppSpec.from_dict(data.get("app", {"name": "lv"})),
            trace=TraceSpec.from_dict(data.get("trace", {})),
            # A bare name (legacy) or a {"name", "params"} mapping; the
            # constructor coerces either into a PolicySpec.
            policy=PolicySpec.from_dict(data.get("policy", "PARD")),
            seed=int(data.get("seed", 0)),
            workers=workers,
            utilization=(
                None if data.get("utilization") is None
                else float(data["utilization"])
            ),
            provision_rate=(
                None if data.get("provision_rate") is None
                else float(data["provision_rate"])
            ),
            provision_headroom=float(data.get("provision_headroom", 1.0)),
            sync_interval=float(data.get("sync_interval", 1.0)),
            stats_window=float(data.get("stats_window", 5.0)),
            drain=float(data.get("drain", 5.0)),
            scaling=ScalingSpec.from_dict(data.get("scaling", {})),
            failures=tuple(
                FailureEvent.from_dict(e) for e in data.get("failures", [])
            ),
            name=str(data.get("name", "")),
            goodput=(
                None if data.get("goodput") is None
                else GoodputSpec.from_dict(data["goodput"])
            ),
            router=(
                None if data.get("router") is None
                else RouterSpec.from_dict(data["router"])
            ),
            resilience=data.get("resilience", ()),
        )

    def resilience_map(self) -> dict[str, HopResilience] | None:
        """Runtime form for :class:`Cluster` (``None`` = fast path)."""
        if not self.resilience:
            return None
        return dict(self.resilience)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "Scenario":
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def fingerprint(self) -> str:
        """Stable hex digest of the full spec (cache identity).

        Canonical over numeric spelling: equal scenarios fingerprint
        equally whether fields were authored as ints or floats, in Python
        or in JSON.
        """
        blob = json.dumps(_canonical(self.to_dict()), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TenantSpec:
    """One weighted tenant of a shared-cluster scenario.

    ``weight`` scales the tenant's trace rate, so a two-tenant spec with
    weights 2.0 and 1.0 declares a 2:1 traffic split without re-authoring
    either tenant's trace.  The wrapped :class:`Scenario` contributes the
    app, trace shape, policy and seed; cluster-level knobs (workers,
    scaling, failures, calibration) live on the enclosing
    :class:`MultiScenario` and are rejected on tenants.

    ``quota`` caps how many workers of a shared pool this tenant may
    dispatch to: an int applies to every pool the tenant is a member of,
    a ``{pool key: n}`` dict caps per pool (unlisted pools stay
    uncapped).  A quota larger than a pool is a no-op — it bounds the
    tenant, it does not reserve capacity.  This is the intra-pool
    isolation knob interference studies sweep.
    """

    scenario: Scenario
    weight: float = 1.0
    quota: int | dict[str, int] | None = None

    def __post_init__(self) -> None:
        if isinstance(self.scenario, dict):
            object.__setattr__(
                self, "scenario", Scenario.from_dict(self.scenario)
            )
        if self.weight <= 0:
            raise ValueError("tenant weight must be > 0")
        if isinstance(self.quota, dict):
            cleaned = {}
            for key, value in self.quota.items():
                if int(value) != value:
                    raise ValueError(
                        f"tenant quota[{key!r}] must be an integer, "
                        f"got {value}"
                    )
                if value < 1:
                    raise ValueError(
                        f"tenant quota[{key!r}] must be >= 1, got {value}"
                    )
                cleaned[str(key)] = int(value)
            if not cleaned:
                raise ValueError(
                    "a tenant quota mapping needs at least one pool entry"
                )
            object.__setattr__(self, "quota", cleaned)
        elif self.quota is not None:
            if int(self.quota) != self.quota:
                raise ValueError(
                    f"tenant quota must be an integer, got {self.quota}"
                )
            if self.quota < 1:
                raise ValueError(
                    f"tenant quota must be >= 1, got {self.quota}"
                )
            object.__setattr__(self, "quota", int(self.quota))

    def label(self) -> str:
        """The tenant's identity inside the shared cluster."""
        s = self.scenario
        return s.name or s.app.name or s.app.pipeline

    def to_dict(self) -> dict:
        out = {"weight": self.weight, "scenario": self.scenario.to_dict()}
        # Emitted only when set, so pre-quota specs keep their serialized
        # form — and therefore their cache fingerprints.
        if self.quota is not None:
            out["quota"] = (
                dict(self.quota) if isinstance(self.quota, dict)
                else self.quota
            )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        _check_keys(data, {"weight", "scenario", "quota"}, "tenant")
        if "scenario" not in data:
            raise ValueError("tenant entry missing required key 'scenario'")
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            weight=float(data.get("weight", 1.0)),
            quota=data.get("quota"),
        )


@dataclass(frozen=True)
class MultiScenario:
    """A shared cluster serving several weighted tenant scenarios.

    The multi-tenant unit of declaration: N tenants (each a full
    :class:`Scenario` minus the cluster-level knobs) contending for one
    set of shared, name-keyed worker pools (see
    :func:`repro.simulation.tenancy.assign_pools`).  ``workers`` and
    ``failures`` are keyed by *pool* id (normally the model name), and one
    :class:`ScalingSpec` governs every pool.  Like :class:`Scenario` it is
    plain data end to end: dict/JSON round-trips, pickles into sweep
    workers and fingerprints into the disk cache.
    """

    tenants: tuple[TenantSpec, ...] = ()
    workers: int | dict[str, int] | None = None  # keyed by pool id
    scaling: ScalingSpec = field(default_factory=ScalingSpec)
    failures: tuple[FailureEvent, ...] = ()  # module_id is a pool id
    provision_headroom: float = 1.0
    sync_interval: float = 1.0
    stats_window: float = 5.0
    drain: float = 5.0
    seed: int = 0
    name: str = ""
    #: Cross-app fairness policy on the admission seam (None = tenants'
    #: own policies only); resolved via the admission registry
    #: (:func:`repro.policies.registry.register_admission`).
    admission: PolicySpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "tenants",
            tuple(
                t if isinstance(t, TenantSpec) else TenantSpec.from_dict(t)
                for t in self.tenants
            ),
        )
        if not self.tenants:
            raise ValueError("a multi scenario needs at least one tenant")
        if isinstance(self.workers, dict):
            for key, value in self.workers.items():
                if int(value) != value:
                    raise ValueError(
                        f"workers[{key!r}] must be an integer, got {value}"
                    )
            object.__setattr__(
                self,
                "workers",
                {str(k): int(v) for k, v in self.workers.items()},
            )
        elif self.workers is not None:
            if int(self.workers) != self.workers:
                raise ValueError(
                    f"workers must be an integer, got {self.workers}"
                )
            object.__setattr__(self, "workers", int(self.workers))
        if isinstance(self.scaling, dict):
            object.__setattr__(
                self, "scaling", ScalingSpec.from_dict(self.scaling)
            )
        object.__setattr__(
            self,
            "failures",
            tuple(
                e if isinstance(e, FailureEvent) else FailureEvent.from_dict(e)
                for e in self.failures
            ),
        )
        if self.provision_headroom <= 0:
            raise ValueError("provision_headroom must be > 0")
        if self.sync_interval <= 0:
            raise ValueError("sync_interval must be > 0")
        if self.stats_window <= 0:
            raise ValueError("stats_window must be > 0")
        if self.drain < 0:
            raise ValueError("drain must be >= 0")
        if self.admission is not None and not isinstance(
            self.admission, PolicySpec
        ):
            object.__setattr__(
                self, "admission", PolicySpec.coerce(self.admission)
            )
        # Fail fast on structural mistakes (same contract as Scenario):
        # duplicate tenant labels, out-of-range failure times and —
        # whenever every tenant app resolves now — mistargeted pool
        # references.  Apps awaiting registration defer to validate().
        self._check_labels()
        duration = self.duration()
        for event in self.failures:
            if event.time >= duration:
                raise ValueError(
                    f"failure event at t={event.time} falls outside the "
                    f"longest trace duration {duration}"
                )
            if event.kind == "link":
                # Pool-keyed faults address capacity, not topology: edges
                # belong to per-tenant DAGs, so link cuts are
                # single-cluster only.
                raise ValueError(
                    "link faults are single-cluster only; shared-cluster "
                    "failures target pools (kill/degrade)"
                )
        if self.failures or isinstance(self.workers, dict):
            pools = self._known_pools()
            if pools is not None:
                self._check_pool_targets(pools)
        elif self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    def _check_labels(self) -> None:
        labels = [t.label() for t in self.tenants]
        dupes = sorted({x for x in labels if labels.count(x) > 1})
        if dupes:
            raise ValueError(
                f"tenant labels must be unique, got duplicates: {dupes}; "
                "give tenants distinct scenario names"
            )

    def _known_pools(self) -> "dict | None":
        """The pool layout when every tenant app resolves now, else None."""
        try:
            pools, _ = self.pool_layout()
        except (KeyError, ValueError):
            return None
        return pools

    def _check_pool_targets(self, pools: dict) -> None:
        _check_provision_targets(
            self.workers, self.failures, set(pools), "pool",
            suffix=f"; pools: {sorted(pools)}",
        )

    def label(self) -> str:
        base = self.name or "+".join(t.label() for t in self.tenants)
        return f"{base}-s{self.seed}"

    def tenant_names(self) -> list[str]:
        return [t.label() for t in self.tenants]

    def tenant_seed(self, tenant: TenantSpec) -> int:
        """Effective seed of one tenant: its own, shifted by the shared seed.

        Sweeping the multi scenario over seeds re-seeds every tenant
        together while preserving their declared offsets.
        """
        return tenant.scenario.seed + self.seed

    def duration(self) -> float:
        """Shared-cluster run length: the longest tenant trace."""
        return max(t.scenario.trace.duration for t in self.tenants)

    # -- resolution --------------------------------------------------------

    def pool_layout(self):
        """(pools by key, pool key by (tenant label, module id)).

        Resolves every tenant application; raises on broken references.
        """
        from ..simulation.tenancy import assign_pools

        return assign_pools(
            [(t.label(), t.scenario.build_application()) for t in self.tenants]
        )

    def build_registry(self) -> ProfileRegistry:
        """One registry for the whole cluster: defaults + every tenant's
        extras (conflicting redefinitions are rejected by validate())."""
        merged = {
            name: DEFAULT_PROFILES.get(name) for name in DEFAULT_PROFILES.names()
        }
        for tenant in self.tenants:
            for profile in tenant.scenario.app.profiles:
                merged[profile.name] = profile
        return ProfileRegistry(list(merged.values()))

    def validate(self) -> "MultiScenario":
        """Resolve every reference and cross-tenant constraint up front."""
        self._check_labels()
        for tenant in self.tenants:
            s = tenant.scenario
            where = f"tenant {tenant.label()!r}"
            if s.workers is not None:
                raise ValueError(
                    f"{where} sets workers; provisioning is cluster-level "
                    "on a shared cluster (set MultiScenario.workers)"
                )
            if s.scaling.enabled:
                raise ValueError(
                    f"{where} enables scaling; the shared cluster scales "
                    "pools (set MultiScenario.scaling)"
                )
            if s.failures:
                raise ValueError(
                    f"{where} declares failures; shared-cluster failures "
                    "are pool-keyed (set MultiScenario.failures)"
                )
            if s.resilience:
                raise ValueError(
                    f"{where} declares resilience; shared-cluster hops are "
                    "pool-backed and per-hop resilience is single-cluster "
                    "only"
                )
            if s.utilization is not None or s.provision_rate is not None:
                raise ValueError(
                    f"{where} sets utilization/provision_rate; calibration "
                    "is ambiguous across tenants — give the trace an "
                    "explicit base_rate instead"
                )
            s.validate()
        seen: dict[str, object] = {}
        for tenant in self.tenants:
            for profile in tenant.scenario.app.profiles:
                other = seen.get(profile.name)
                if other is not None and other != profile:
                    raise ValueError(
                        f"conflicting definitions of model profile "
                        f"{profile.name!r} across tenants"
                    )
                seen[profile.name] = profile
        if self.admission is not None:
            self.admission.validate(kind="admission")
        # Authoritative pool-target pass (construction already checked when
        # every app name was registered at that point).
        pools, by_member = self.pool_layout()
        self._check_pool_targets(pools)
        for tenant in self.tenants:
            if not isinstance(tenant.quota, dict):
                continue
            label = tenant.label()
            member_pools = {
                key for (tname, _), key in by_member.items() if tname == label
            }
            unknown = set(tenant.quota) - member_pools
            if unknown:
                raise ValueError(
                    f"tenant {label!r} quota references pools it is not a "
                    f"member of: {sorted(unknown)}; its pools: "
                    f"{sorted(member_pools)}"
                )
        return self

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "tenants": [t.to_dict() for t in self.tenants],
            "workers": (
                dict(self.workers) if isinstance(self.workers, dict)
                else self.workers
            ),
            "scaling": self.scaling.to_dict(),
            "failures": [e.to_dict() for e in self.failures],
            "provision_headroom": self.provision_headroom,
            "sync_interval": self.sync_interval,
            "stats_window": self.stats_window,
            "drain": self.drain,
            "seed": self.seed,
            "name": self.name,
            "admission": (
                None if self.admission is None else self.admission.to_compact()
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MultiScenario":
        _check_keys(
            data,
            {
                "tenants", "workers", "scaling", "failures",
                "provision_headroom", "sync_interval", "stats_window",
                "drain", "seed", "name", "admission",
            },
            "multi scenario",
        )
        return cls(
            tenants=tuple(
                TenantSpec.from_dict(t) for t in data.get("tenants", [])
            ),
            workers=data.get("workers"),
            scaling=ScalingSpec.from_dict(data.get("scaling", {})),
            failures=tuple(
                FailureEvent.from_dict(e) for e in data.get("failures", [])
            ),
            provision_headroom=float(data.get("provision_headroom", 1.0)),
            sync_interval=float(data.get("sync_interval", 1.0)),
            stats_window=float(data.get("stats_window", 5.0)),
            drain=float(data.get("drain", 5.0)),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
            admission=(
                None if data.get("admission") is None
                else PolicySpec.from_dict(data["admission"])
            ),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "MultiScenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "MultiScenario":
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def fingerprint(self) -> str:
        """Stable hex digest of the full spec (cache identity)."""
        blob = json.dumps(_canonical(self.to_dict()), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scenario_from_dict(data: dict) -> "Scenario | MultiScenario | SweepSpec":
    """Parse any scenario-file schema, auto-detected.

    A mapping with a ``base`` key is a :class:`SweepSpec` (a scenario plus
    sweep axes), one with a ``tenants`` key is a :class:`MultiScenario`,
    anything else is a single-app :class:`Scenario`.  The CLI and loaders
    use this so one ``--file`` flag serves all three shapes.
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"scenario file must hold a JSON object, got {type(data).__name__}"
        )
    if "base" in data or "axes" in data:
        return SweepSpec.from_dict(data)
    if "tenants" in data:
        return MultiScenario.from_dict(data)
    return Scenario.from_dict(data)


def load_scenario_file(path: str | Path) -> "Scenario | MultiScenario | SweepSpec":
    """Load a scenario file of any schema (see :func:`scenario_from_dict`)."""
    return scenario_from_dict(json.loads(Path(path).read_text()))


def _apply_axis(
    spec: "Scenario | MultiScenario", axis: str, value: Any
) -> "Scenario | MultiScenario":
    """One cell of a sweep grid: ``spec`` with ``axis`` set to ``value``.

    Axes address the spec by dotted path: a bare field name
    (``seed``, ``drain``, ``workers``), a nested section field
    (``trace.base_rate``, ``scaling.cold_start``), a whole policy
    (``policy``) or one policy parameter (``policy.lam``,
    ``admission.rate``).  On a :class:`MultiScenario`, policy and
    ``trace.*`` axes apply to *every* tenant — the grid compares
    configurations, not tenant mixes — while ``tenant.<label>.<rest>``
    addresses one tenant: its ``weight`` or ``quota``, or any
    single-scenario axis of its wrapped scenario
    (``tenant.burst.trace.base_rate``).
    """
    if isinstance(spec, MultiScenario):
        if axis == "policy" or axis.startswith(("policy.", "trace.")):
            return replace(spec, tenants=tuple(
                replace(t, scenario=_apply_axis(t.scenario, axis, value))
                for t in spec.tenants
            ))
        if axis.startswith("tenant."):
            _, _, tail = axis.partition(".")
            label, _, rest = tail.partition(".")
            if not label or not rest:
                raise ValueError(
                    f"tenant axis {axis!r} must be 'tenant.<label>.<field>'"
                )
            labels = [t.label() for t in spec.tenants]
            if label not in labels:
                raise ValueError(
                    f"axis {axis!r} references unknown tenant {label!r}; "
                    f"tenants: {labels}"
                )
            def _bump(t: TenantSpec) -> TenantSpec:
                if t.label() != label:
                    return t
                if rest in ("weight", "quota"):
                    return replace(t, **{rest: value})
                return replace(t, scenario=_apply_axis(t.scenario, rest, value))
            return replace(
                spec, tenants=tuple(_bump(t) for t in spec.tenants)
            )
        if axis == "admission":
            return replace(spec, admission=PolicySpec.coerce(value))
        if axis.startswith("admission."):
            if spec.admission is None:
                raise ValueError(
                    f"axis {axis!r} requires the base spec to declare an "
                    "admission policy"
                )
            param = axis.split(".", 1)[1]
            return replace(
                spec, admission=spec.admission.with_params(**{param: value})
            )
        if axis in {f.name for f in fields(spec)}:
            return replace(spec, **{axis: value})
        raise ValueError(f"unknown multi-scenario sweep axis {axis!r}")
    if axis == "policy":
        return replace(spec, policy=PolicySpec.coerce(value))
    if axis.startswith("policy."):
        param = axis.split(".", 1)[1]
        return replace(spec, policy=spec.policy.with_params(**{param: value}))
    head, _, rest = axis.partition(".")
    if head == "resilience" and rest:
        # resilience.<module>.<field>[.<subfield>] — e.g.
        # resilience.m1.timeout or resilience.m1.retry.max.  The module's
        # hop spec round-trips through its dict form so nested retry
        # fields stay one flat axis name.
        mid, _, path = rest.partition(".")
        if not mid or not path:
            raise ValueError(
                f"resilience axis {axis!r} must be "
                "'resilience.<module>.<field>'"
            )
        hops = dict(spec.resilience)
        if mid not in hops:
            raise ValueError(
                f"axis {axis!r} requires the base spec to declare "
                f"resilience for module {mid!r}"
            )
        data = hops[mid].to_dict()
        node, keys = data, path.split(".")
        for key in keys[:-1]:
            nxt = node.get(key)
            if not isinstance(nxt, dict):
                raise ValueError(f"unknown sweep axis {axis!r}")
            node = nxt
        node[keys[-1]] = value
        hops[mid] = HopResilience.from_dict(data)  # re-validates keys/ranges
        return replace(spec, resilience=tuple(sorted(hops.items())))
    if rest:
        if head not in ("trace", "app", "scaling", "goodput"):
            raise ValueError(f"unknown sweep axis {axis!r}")
        section = getattr(spec, head)
        if section is None:
            # goodput is optional on the base spec; a goodput.* axis
            # starts from an all-unconstrained spec.
            section = GoodputSpec()
        if rest not in {f.name for f in fields(section)}:
            raise ValueError(f"unknown sweep axis {axis!r}")
        return replace(spec, **{head: replace(section, **{rest: value})})
    if axis in {f.name for f in fields(spec)}:
        return replace(spec, **{axis: value})
    raise ValueError(f"unknown scenario sweep axis {axis!r}")


def scenario_axes(
    base: "Scenario | MultiScenario",
    axes: "Mapping[str, Sequence] | Iterable[tuple[str, Sequence]]",
) -> "list[Scenario | MultiScenario]":
    """Expand a base spec over a cross product of declared axes.

    The generalisation of :func:`scenario_grid` from (policies x seeds) to
    *any* point set in scenario space — including policy parameters, so a
    Figure-11-style ablation grid (``{"policy.lam": [0.05, 0.1, 0.3]}``)
    sweeps, caches and parallelises like any other axis.  Axes expand in
    declaration order with the last axis varying fastest; every produced
    spec re-runs full construction validation.
    """
    items = list(axes.items()) if isinstance(axes, Mapping) else list(axes)
    out: "list[Scenario | MultiScenario]" = [base]
    for axis, values in items:
        values = list(values)
        if not values:
            raise ValueError(f"sweep axis {axis!r} has no values")
        out = [_apply_axis(spec, str(axis), v) for spec in out for v in values]
    return out


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: one base spec plus named axes, as one file.

    The serializable form of :func:`scenario_axes` — ``repro scenario
    sweep --file`` auto-detects it (a top-level ``base`` key), so a whole
    ablation study travels as a single JSON document::

        {"name": "fig11",
         "base": {"app": {"name": "tm"}, "policy": "PARD", ...},
         "axes": {"policy.lam": [0.05, 0.1, 0.3], "seed": [0, 1]}}
    """

    base: "Scenario | MultiScenario"
    axes: tuple = ()  # ((axis, (value, ...)), ...) in declaration order
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.base, dict):
            object.__setattr__(self, "base", scenario_from_dict(self.base))
        if isinstance(self.base, SweepSpec):
            raise ValueError("sweep specs do not nest")
        raw = (
            self.axes.items() if isinstance(self.axes, Mapping) else self.axes
        )
        frozen: list[tuple[str, tuple]] = []
        for axis, values in raw:
            axis = str(axis)
            values = list(values)
            if not values:
                raise ValueError(f"sweep axis {axis!r} has no values")
            if axis in ("policy", "admission"):
                values = [PolicySpec.coerce(v) for v in values]
            else:
                bad = [v for v in values if isinstance(v, (dict, list, tuple))]
                if bad:
                    raise ValueError(
                        f"sweep axis {axis!r} values must be scalars"
                    )
            frozen.append((axis, tuple(values)))
        object.__setattr__(self, "axes", tuple(frozen))

    def expand(self) -> "list[Scenario | MultiScenario]":
        """The grid, in deterministic declaration order."""
        return scenario_axes(self.base, self.axes)

    def validate(self) -> "SweepSpec":
        """Validate the base and every expanded grid member up front."""
        for spec in self.expand():
            spec.validate()
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": {
                axis: [
                    v.to_compact() if isinstance(v, PolicySpec) else v
                    for v in values
                ]
                for axis, values in self.axes
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        _check_keys(data, {"base", "axes", "name"}, "sweep")
        if "base" not in data:
            raise ValueError("a sweep file requires a 'base' scenario")
        axes = data.get("axes", {})
        if not isinstance(axes, dict):
            raise ValueError("sweep 'axes' must be a mapping of axis -> values")
        return cls(
            base=scenario_from_dict(data["base"]),
            axes=tuple(axes.items()),
            name=str(data.get("name", "")),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))


def multi_scenario_grid(
    base: MultiScenario,
    policies: Iterable[str] | None = None,
    seeds: Iterable[int] | None = None,
) -> list[MultiScenario]:
    """Expand a multi scenario over policies x seeds.

    A policy applies to *every* tenant (the sweep axis compares systems,
    matching :func:`scenario_grid`); a seed replaces the shared seed, which
    shifts all tenants together via :meth:`MultiScenario.tenant_seed`.
    Empty or ``None`` axes fall back to the base values.
    """
    policy_list = list(policies) if policies is not None else []
    seed_list = list(seeds) if seeds is not None else []
    out: list[MultiScenario] = []
    for policy in (policy_list or [None]):
        tenants = base.tenants if policy is None else tuple(
            replace(t, scenario=replace(t.scenario, policy=policy))
            for t in base.tenants
        )
        for seed in (seed_list or [base.seed]):
            out.append(replace(base, tenants=tenants, seed=seed))
    return out


def scenario_grid(
    base: Scenario,
    policies: Iterable[str] | None = None,
    seeds: Iterable[int] | None = None,
) -> list[Scenario]:
    """Expand one scenario over policies x seeds (the sweep unit).

    Empty or ``None`` axes fall back to the base scenario's own value, so
    the grid is never silently empty.
    """
    # Materialize before testing emptiness: a generator is always truthy.
    policy_list = list(policies) if policies is not None else []
    seed_list = list(seeds) if seeds is not None else []
    return [
        replace(base, policy=policy, seed=seed)
        for policy in (policy_list or [base.policy])
        for seed in (seed_list or [base.seed])
    ]
