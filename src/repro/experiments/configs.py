"""Named experiment configurations matching the paper's evaluation.

The paper evaluates 12 workloads — the cross product of four applications
(lv, tm, gm, da) and three traces (wiki, tweet, azure) — on a 64-GPU
cluster at hundreds of requests/second.  ``standard_config`` scales this to
a simulation that runs in seconds while preserving the load regime: the
cluster is provisioned for roughly the trace's mean rate, so workload
swings push modules in and out of overload exactly as in the paper.
"""

from __future__ import annotations

from ..pipeline.applications import known_applications
from ..policies.registry import SYSTEM_FACTORIES, known_policies, make_policy
from ..workload.generators import known_traces
from .runner import ExperimentConfig

#: The paper's own evaluation grid (the cross product is its 12 workloads).
#: Registries may hold more — ``standard_config`` accepts anything
#: registered; these tuples stay the canonical paper sets.
APPS = ("lv", "tm", "gm", "da")
TRACES = ("wiki", "tweet", "azure")

__all__ = [
    "APPS",
    "SYSTEM_FACTORIES",
    "TRACES",
    "all_workloads",
    "known_policies",
    "make_policy",
    "standard_config",
]


def standard_config(
    app: str,
    trace: str,
    seed: int = 0,
    base_rate: float = 60.0,
    duration: float = 120.0,
    **overrides,
) -> ExperimentConfig:
    """The scaled-down equivalent of one of the paper's 12 workloads.

    Provisioning targets the mean trace rate, so bursts (tweet's 2x step,
    azure's spikes) genuinely exceed capacity — the regime where dropping
    policies differentiate.
    """
    if app not in known_applications():
        raise ValueError(
            f"unknown app {app!r}; expected one of {known_applications()}"
        )
    if trace not in known_traces():
        raise ValueError(
            f"unknown trace {trace!r}; expected one of {known_traces()}"
        )
    overrides.setdefault("utilization", 0.9)
    # The paper's testbed scales workers with the request rate (§5.1);
    # cold starts during bursts are part of the regime being reproduced.
    overrides.setdefault("scaling", True)
    return ExperimentConfig(
        app=app,
        trace=trace,
        seed=seed,
        base_rate=base_rate,
        duration=duration,
        **overrides,
    )


def all_workloads(
    seed: int = 0, base_rate: float = 60.0, duration: float = 120.0
) -> dict[tuple[str, str], ExperimentConfig]:
    """All 12 (app, trace) combinations of the paper's evaluation."""
    return {
        (app, trace): standard_config(
            app, trace, seed=seed, base_rate=base_rate, duration=duration
        )
        for app in APPS
        for trace in TRACES
    }
