"""Execute studies over the cached sweep machinery and export artifacts.

Every study compiles to :class:`~repro.experiments.sweep.SweepCell`s and
runs through :func:`~repro.experiments.sweep.run_sweep` — so studies
inherit the sweep subsystem's guarantees wholesale: bitwise-identical
results across worker counts, per-cell disk caching, failure isolation.
Artifact contents are a pure function of the study spec (cache/timing
bookkeeping stays out of the tables and lands on the
:class:`StudyResult` counters instead), so serial, parallel and
cache-warmed runs export byte-identical files.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..experiments.scenario import MultiScenario
from ..experiments.sweep import CellResult, SweepCell, run_sweep
from ..metrics.analysis import (
    dispatch_amplification,
    min_normalized_goodput,
    time_to_recover,
)
from ..metrics.export import Artifact, TableData
from ..policies.spec import PolicySpec
from .spec import CapacityStudy, ChaosStudy, InterferenceStudy

__all__ = ["StudyResult", "run_capacity_study", "run_chaos_study",
           "run_interference_study", "run_study"]


@dataclass
class StudyResult:
    """One study's exportable artifact plus run bookkeeping.

    ``cells_simulated``/``cells_cached`` count fresh vs cache-served
    sweep cells — reporting-only state that never enters the artifact.
    """

    study: "InterferenceStudy | CapacityStudy"
    artifact: Artifact
    cells_total: int
    cells_simulated: int
    cells_cached: int


def _checked(result: CellResult) -> CellResult:
    if not result.ok:
        tail = (result.error or "").strip().splitlines()[-1:] or ["?"]
        raise RuntimeError(
            f"study cell {result.cell.label()!r} failed: {tail[0]}"
        )
    return result


def _axis_cell(value) -> "str | int | float | bool | None":
    """Axis values as artifact cells (policy axes export their label)."""
    if isinstance(value, PolicySpec):
        return value.label()
    return value


def _good_fraction(result: CellResult, app: "str | None" = None) -> float:
    """The goodput fraction a study optimizes/reports for one cell.

    Declared token/e2e constraints win (``GoodputReport.good_fraction``);
    otherwise the SLO-based good share from the summary.  ``app`` narrows
    a shared-cluster cell to one tenant.
    """
    if app is not None:
        report = (result.per_app_goodput or {}).get(app)
        if report is not None:
            return report.good_fraction
        return result.per_app[app].mean_goodput_normalized
    if result.goodput is not None:
        return result.goodput.good_fraction
    return result.summary.mean_goodput_normalized


def run_interference_study(
    study: InterferenceStudy,
    workers: "int | None" = None,
    cache_dir: "str | os.PathLike | None" = ".sweep_cache",
    on_event=None,
) -> StudyResult:
    """Run the full interference grid and tabulate victim vs aggressor.

    One row per grid cell: the axis values, then the victim's goodput /
    goodput fraction / drop rate, the aggressor's goodput / drop rate and
    the cluster aggregate goodput.  Cells run lean (streaming counters
    only) — everything the table needs survives lean mode.
    """
    study.validate()
    points = study.expand()
    cells = [SweepCell(multi=spec, lean=True) for _, spec in points]
    results = run_sweep(cells, workers=workers, cache_dir=cache_dir,
                        on_event=on_event)
    axis_names = study.axis_names()
    rows = []
    for (vals, _), result in zip(points, results):
        _checked(result)
        victim = result.per_app[study.victim]
        aggressor = result.per_app[study.aggressor]
        rows.append((
            *(_axis_cell(vals[a]) for a in axis_names),
            victim.goodput,
            _good_fraction(result, study.victim),
            victim.drop_rate,
            aggressor.goodput,
            aggressor.drop_rate,
            result.summary.goodput,
        ))
    table = TableData(
        name="interference",
        columns=(*axis_names, "victim_goodput", "victim_good_fraction",
                 "victim_drop_rate", "aggressor_goodput",
                 "aggressor_drop_rate", "total_goodput"),
        rows=tuple(rows),
        formats=(*(None,) * len(axis_names),
                 ".2f", ".2%", ".2%", ".2f", ".2%", ".2f"),
    )
    artifact = Artifact(
        name=study.name or "interference",
        tables=(table,),
        meta={
            "study": study.kind,
            "name": study.name,
            "victim": study.victim,
            "aggressor": study.aggressor,
            "cells": len(cells),
            "base_fingerprint": study.base.fingerprint(),
        },
    )
    cached = sum(1 for r in results if r.cached)
    return StudyResult(
        study=study,
        artifact=artifact,
        cells_total=len(cells),
        cells_simulated=len(cells) - cached,
        cells_cached=cached,
    )


def run_capacity_study(
    study: CapacityStudy,
    workers: "int | None" = None,
    cache_dir: "str | os.PathLike | None" = ".sweep_cache",
    on_event=None,
) -> StudyResult:
    """Bisect worker counts per rate over the sweep cache.

    The goodput fraction is monotone non-decreasing in uniform worker
    count (more replicas never hurt), so a classic bisection finds the
    smallest satisfying count in ``O(log range)`` probes.  Each probe is
    one cached sweep cell — rerunning the study (or widening its rate
    list) re-simulates only the probes the cache has never seen.

    ``workers`` is accepted for CLI symmetry; probes are inherently
    sequential (each one decides the next), so it does not change the
    result — nor the artifact, which is cache/parallelism independent.
    """
    del workers  # probes are sequential; kept for a uniform call shape
    study.validate()
    probes: list[tuple] = []
    summary_rows: list[tuple] = []
    simulated = cached = 0

    def evaluate(rate: float, n: int) -> float:
        nonlocal simulated, cached
        spec = study.spec_at(rate, n)
        if isinstance(spec, MultiScenario):
            cell = SweepCell(multi=spec, lean=True)
        else:
            cell = SweepCell(scenario=spec, lean=True)
        result = _checked(run_sweep([cell], workers=1, cache_dir=cache_dir,
                                    on_event=on_event)[0])
        if result.cached:
            cached += 1
        else:
            simulated += 1
        fraction = _good_fraction(result)
        probes.append((rate, n, fraction, fraction >= study.target))
        return fraction

    for rate in study.rates:
        lo, hi = study.min_workers, study.max_workers
        best = evaluate(rate, hi)
        if best < study.target:
            # Even the ceiling misses the target: report unsatisfiable.
            summary_rows.append((rate, None, best, False))
            continue
        fraction = evaluate(rate, lo)
        if fraction >= study.target:
            summary_rows.append((rate, lo, fraction, True))
            continue
        at_hi = best
        while hi - lo > 1:
            mid = (lo + hi) // 2
            fraction = evaluate(rate, mid)
            if fraction >= study.target:
                hi, at_hi = mid, fraction
            else:
                lo = mid
        summary_rows.append((rate, hi, at_hi, True))

    capacity = TableData(
        name="capacity",
        columns=("rate", "required_workers", "good_fraction", "satisfiable"),
        rows=tuple(summary_rows),
        formats=(None, None, ".2%", None),
    )
    probe_table = TableData(
        name="probes",
        columns=("rate", "workers", "good_fraction", "meets_target"),
        rows=tuple(probes),
        formats=(None, None, ".2%", None),
    )
    artifact = Artifact(
        name=study.name or "capacity",
        tables=(capacity, probe_table),
        meta={
            "study": study.kind,
            "name": study.name,
            "target": study.target,
            "min_workers": study.min_workers,
            "max_workers": study.max_workers,
            "base_fingerprint": study.base.fingerprint(),
        },
    )
    return StudyResult(
        study=study,
        artifact=artifact,
        cells_total=simulated + cached,
        cells_simulated=simulated,
        cells_cached=cached,
    )


def run_chaos_study(
    study: ChaosStudy,
    workers: "int | None" = None,
    cache_dir: "str | os.PathLike | None" = ".sweep_cache",
    on_event=None,
) -> StudyResult:
    """Run the fault-schedule x resilience grid and tabulate availability.

    One row per cell: the axis values and fault seed, then the run's
    good fraction, the worst per-window good fraction, the
    time-to-recover windowed goodput to the study target after the first
    fault, the resilience action counters and the dispatch amplification
    factor.  Cells run *full* (not lean): the windowed availability
    columns need per-request records, which the sweep cache round-trips.
    """
    study.validate()
    points = study.expand()
    cells = [SweepCell(scenario=spec) for _, spec in points]
    results = run_sweep(cells, workers=workers, cache_dir=cache_dir,
                        on_event=on_event)
    axis_names = study.axis_names()
    rows = []
    for (vals, spec), result in zip(points, results):
        _checked(result)
        collector = result.collector
        first_fault = min(e.time for e in spec.failures)
        recover = time_to_recover(
            collector, after=first_fault, target=study.target,
            window=study.window,
        )
        rows.append((
            *(_axis_cell(vals[a]) for a in axis_names),
            _good_fraction(result),
            min_normalized_goodput(collector, study.window),
            None if recover is None else recover,
            collector.res_retries,
            collector.res_hedges,
            collector.res_timeouts,
            collector.res_fallbacks,
            dispatch_amplification(collector),
        ))
    table = TableData(
        name="chaos",
        columns=(*axis_names, "good_fraction", "min_window_good",
                 "recover_s", "retries", "hedges", "timeouts", "fallbacks",
                 "amplification"),
        rows=tuple(rows),
        formats=(*(None,) * len(axis_names),
                 ".2%", ".2%", ".2f", None, None, None, None, ".3f"),
    )
    artifact = Artifact(
        name=study.name or "chaos",
        tables=(table,),
        meta={
            "study": study.kind,
            "name": study.name,
            "faults": study.faults,
            "kinds": list(study.kinds),
            "window": study.window,
            "target": study.target,
            "cells": len(cells),
            "base_fingerprint": study.base.fingerprint(),
        },
    )
    cached = sum(1 for r in results if r.cached)
    return StudyResult(
        study=study,
        artifact=artifact,
        cells_total=len(cells),
        cells_simulated=len(cells) - cached,
        cells_cached=cached,
    )


def run_study(
    study: "InterferenceStudy | CapacityStudy | ChaosStudy",
    workers: "int | None" = None,
    cache_dir: "str | os.PathLike | None" = ".sweep_cache",
    on_event=None,
) -> StudyResult:
    """Dispatch one study to its runner by kind."""
    if isinstance(study, InterferenceStudy):
        return run_interference_study(study, workers=workers,
                                      cache_dir=cache_dir, on_event=on_event)
    if isinstance(study, CapacityStudy):
        return run_capacity_study(study, workers=workers,
                                  cache_dir=cache_dir, on_event=on_event)
    if isinstance(study, ChaosStudy):
        return run_chaos_study(study, workers=workers,
                               cache_dir=cache_dir, on_event=on_event)
    raise TypeError(f"not a study spec: {type(study).__name__}")
