"""Scenario timeline rendering: declared load vs failures vs goodput.

``repro scenario render`` answers "what did this spec *declare*, and what
actually happened?" in one windowed table: the declared rate envelope
(base rate x thinning x active burst factors, summed over tenants), the
failure schedule, and the measured arrival/goodput/drop series from one
run.  The table exports through :mod:`repro.metrics.export`, so the same
timeline renders as console text, markdown, CSV or a JSON artifact.
"""

from __future__ import annotations

import numpy as np

from ..experiments.runner import (
    run_multi_scenario,
    run_scenario,
    scenario_config,
)
from ..experiments.scenario import MultiScenario, Scenario
from ..metrics.analysis import merge_collectors
from ..metrics.export import Artifact, TableData

__all__ = ["render_timeline"]


def _declared_rate(scenario: Scenario, weight: float, t: float) -> float:
    """The declared arrival intensity of one tenant at time ``t``.

    Base rate (calibrated when the spec asks for it) x weight x thinning,
    multiplied by every burst overlay active at ``t``.  Zero past the
    trace's declared end.  File-backed traces have no declared envelope —
    the file *is* the realization — so they contribute only their bursts
    over a NaN base, which we report as 0 (the measured arrival column
    carries the information instead).
    """
    trace = scenario.trace
    if t >= trace.duration:
        return 0.0
    if trace.path is not None:
        return 0.0
    rate = scenario_config(scenario).resolve_base_rate() * weight * trace.scale
    for burst in trace.bursts:
        if burst.start <= t < burst.start + burst.length:
            rate *= burst.factor
    return rate


def render_timeline(
    spec: "Scenario | MultiScenario", window: float = 1.0
) -> Artifact:
    """Run ``spec`` once and tabulate its timeline in ``window``-s bins.

    Columns per window: the declared rate envelope, the measured arrival
    rate, the measured goodput (SLO-met completions / s), the good and
    dropped fractions of the window's arrivals, and any failure events
    scheduled inside the window (``pool@t-n``, comma-joined).
    """
    if window <= 0:
        raise ValueError("window must be > 0")
    if isinstance(spec, MultiScenario):
        result = run_multi_scenario(spec)
        collector = merge_collectors(result.collectors)
        duration = spec.duration()
        failures = spec.failures
        tenant_rates = [
            (t.scenario, t.weight) for t in spec.tenants
        ]
        name = spec.name or "+".join(spec.tenant_names())
    elif isinstance(spec, Scenario):
        result = run_scenario(spec)
        collector = result.collector
        duration = spec.trace.duration
        failures = spec.failures
        tenant_rates = [(spec, 1.0)]
        name = spec.name or spec.app.name or spec.app.pipeline
    else:
        raise TypeError(
            "render_timeline takes a Scenario or MultiScenario, got "
            f"{type(spec).__name__}"
        )

    edges = np.arange(0.0, duration + window, window)
    records = collector.records
    sent = np.array([r.sent_at for r in records])
    good = np.array([r.met_slo for r in records], dtype=bool)
    dropped = np.array([r.counts_as_dropped for r in records], dtype=bool)
    if len(records):
        arrivals, _ = np.histogram(sent, bins=edges)
        goods, _ = np.histogram(sent[good], bins=edges)
        drops, _ = np.histogram(sent[dropped], bins=edges)
    else:
        zero = np.zeros(len(edges) - 1, dtype=int)
        arrivals = goods = drops = zero

    rows = []
    for i, start in enumerate(edges[:-1]):
        start = float(start)
        mid = start + window / 2
        declared = sum(
            _declared_rate(s, w, mid) for s, w in tenant_rates
        )
        n = int(arrivals[i])
        events = ", ".join(
            f"{e.module_id}@{e.time:g}-{e.workers}"
            for e in failures
            if start <= e.time < start + window
        )
        rows.append((
            start,
            declared,
            n / window,
            int(goods[i]) / window,
            (int(goods[i]) / n) if n else None,
            (int(drops[i]) / n) if n else None,
            events,
        ))
    table = TableData(
        name="timeline",
        columns=("t", "declared_rate", "arrival_rate", "goodput",
                 "good_fraction", "drop_fraction", "failures"),
        rows=tuple(rows),
        formats=(".1f", ".2f", ".2f", ".2f", ".2%", ".2%", None),
    )
    return Artifact(
        name=name or "timeline",
        tables=(table,),
        meta={
            "window": window,
            "duration": duration,
            "fingerprint": spec.fingerprint(),
        },
    )
