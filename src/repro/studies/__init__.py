"""Declarative studies: interference grids, capacity planning, timelines.

The paper-deliverable layer: one frozen study spec in, one byte-stable
console/CSV/JSON artifact out, with every simulation routed through the
cached sweep machinery (see :mod:`repro.experiments.sweep`).
"""

from .render import render_timeline
from .runner import (
    StudyResult,
    run_capacity_study,
    run_chaos_study,
    run_interference_study,
    run_study,
)
from .spec import (
    CapacityStudy,
    ChaosStudy,
    InterferenceStudy,
    load_study_file,
    study_from_dict,
)

__all__ = [
    "CapacityStudy",
    "ChaosStudy",
    "InterferenceStudy",
    "StudyResult",
    "load_study_file",
    "render_timeline",
    "run_capacity_study",
    "run_chaos_study",
    "run_interference_study",
    "run_study",
    "study_from_dict",
]
