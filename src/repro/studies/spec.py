"""Declarative study specs: interference grids and capacity planning.

A *study* is the paper-deliverable layer above scenarios and sweeps: one
frozen, JSON-round-tripping spec that names the question ("how much does
an aggressor tenant hurt the victim's goodput?", "how many replicas hold
the SLO at X req/s?") and compiles down to the existing cached sweep
machinery.  Study files are auto-detected by their top-level ``study``
key, so they coexist with scenario/sweep files under one loader
convention.

Two kinds:

* :class:`InterferenceStudy` — a victim/aggressor pair on a shared
  cluster (:class:`~repro.experiments.scenario.MultiScenario`), swept
  over aggressor load (``loads`` sets the aggressor tenant's
  ``trace.base_rate``) crossed with any extra configuration axes
  (``admission.rate``, ``admission.slack``, ``tenant.<label>.quota``, …
  — the same dotted-path axis language as
  :func:`~repro.experiments.scenario.scenario_axes`).
* :class:`CapacityStudy` — bisects over uniform worker counts to find
  the smallest provisioning whose goodput fraction meets ``target`` at
  each offered rate.  Every probe is one sweep cell, so the search runs
  over the on-disk :class:`~repro.experiments.sweep.SweepCache` and
  re-planning never re-simulates a cached cell.
* :class:`ChaosStudy` — seeded random fault schedules (worker kills,
  link cuts, degraded workers) injected into a single-cluster base
  scenario, crossed with resilience-policy axes
  (``resilience.<module>.timeout``, ``resilience.<module>.retry.max``,
  …).  Each schedule is a pure function of its fault seed, so the whole
  artifact — availability, time-to-recover, retry/hedge amplification —
  is reproducible from the spec alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..experiments.scenario import (
    MultiScenario,
    Scenario,
    _apply_axis,
    _check_keys,
    scenario_from_dict,
)
from ..policies.spec import PolicySpec
from ..simulation.failures import FAULT_KINDS, FailureEvent
from ..simulation.rng import RngStreams

__all__ = [
    "CapacityStudy",
    "ChaosStudy",
    "InterferenceStudy",
    "load_study_file",
    "study_from_dict",
]


def _freeze_axes(raw) -> tuple:
    """Normalize an axes mapping into ``((axis, (values, ...)), ...)``.

    The same discipline as :class:`~repro.experiments.scenario.SweepSpec`:
    non-empty value lists, scalars only — except the policy-valued axes,
    whose values coerce to :class:`~repro.policies.spec.PolicySpec`.
    """
    items = raw.items() if isinstance(raw, dict) else raw
    frozen: list[tuple[str, tuple]] = []
    for axis, values in items:
        axis = str(axis)
        values = list(values)
        if not values:
            raise ValueError(f"study axis {axis!r} has no values")
        if axis in ("policy", "admission"):
            values = [PolicySpec.coerce(v) for v in values]
        else:
            bad = [v for v in values if isinstance(v, (dict, list, tuple))]
            if bad:
                raise ValueError(f"study axis {axis!r} values must be scalars")
        frozen.append((axis, tuple(values)))
    return tuple(frozen)


def _thaw_axes(axes: tuple) -> dict:
    return {
        axis: [
            v.to_compact() if isinstance(v, PolicySpec) else v
            for v in values
        ]
        for axis, values in axes
    }


def _positive_floats(values, what: str) -> tuple[float, ...]:
    out = tuple(float(v) for v in values)
    if not out:
        raise ValueError(f"a study needs at least one {what}")
    bad = [v for v in out if v <= 0]
    if bad:
        raise ValueError(f"{what} values must be > 0, got {bad}")
    return out


@dataclass(frozen=True)
class InterferenceStudy:
    """Victim goodput vs aggressor load on one shared cluster.

    The grid is ``axes`` (declaration order, extra configuration knobs)
    crossed with ``loads`` (varying fastest): each cell is the base
    :class:`MultiScenario` with the aggressor tenant's ``trace.base_rate``
    replaced by one load value.  Per-tenant worker quotas belong in the
    base spec (``TenantSpec.quota``) or on a ``tenant.<label>.quota``
    axis.
    """

    kind = "interference"

    base: MultiScenario
    victim: str
    aggressor: str
    loads: tuple[float, ...] = ()
    axes: tuple = ()
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.base, dict):
            object.__setattr__(
                self, "base", MultiScenario.from_dict(self.base)
            )
        if not isinstance(self.base, MultiScenario):
            raise ValueError(
                "an interference study needs a multi-tenant base scenario "
                "(a 'tenants' spec)"
            )
        object.__setattr__(
            self, "loads", _positive_floats(self.loads, "aggressor load")
        )
        object.__setattr__(self, "axes", _freeze_axes(self.axes))
        labels = self.base.tenant_names()
        for role, label in (("victim", self.victim),
                            ("aggressor", self.aggressor)):
            if label not in labels:
                raise ValueError(
                    f"{role} {label!r} is not a tenant of the base scenario; "
                    f"tenants: {labels}"
                )
        if self.victim == self.aggressor:
            raise ValueError("victim and aggressor must be distinct tenants")

    def axis_names(self) -> list[str]:
        """Grid column names in expansion order (loads vary fastest)."""
        return [axis for axis, _ in self.axes] + ["aggressor_rate"]

    def expand(self) -> list[tuple[dict, MultiScenario]]:
        """The grid as ``(axis values, concrete spec)`` pairs, in order."""
        points: list[tuple[dict, MultiScenario]] = [({}, self.base)]
        load_axis = f"tenant.{self.aggressor}.trace.base_rate"
        for axis, values in (*self.axes,
                             (load_axis, self.loads)):
            column = "aggressor_rate" if axis == load_axis else axis
            points = [
                ({**vals, column: v}, _apply_axis(spec, axis, v))
                for vals, spec in points
                for v in values
            ]
        return points

    def validate(self) -> "InterferenceStudy":
        """Resolve every reference in every grid member up front."""
        for _, spec in self.expand():
            spec.validate()
        return self

    def to_dict(self) -> dict:
        return {
            "study": self.kind,
            "name": self.name,
            "victim": self.victim,
            "aggressor": self.aggressor,
            "loads": list(self.loads),
            "axes": _thaw_axes(self.axes),
            "base": self.base.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InterferenceStudy":
        _check_keys(
            data,
            {"study", "name", "victim", "aggressor", "loads", "axes", "base"},
            "interference study",
        )
        for key in ("victim", "aggressor", "base"):
            if key not in data:
                raise ValueError(
                    f"interference study missing required key {key!r}"
                )
        return cls(
            base=MultiScenario.from_dict(data["base"]),
            victim=str(data["victim"]),
            aggressor=str(data["aggressor"]),
            loads=tuple(data.get("loads", ())),
            axes=tuple(dict(data.get("axes", {})).items()),
            name=str(data.get("name", "")),
        )


@dataclass(frozen=True)
class CapacityStudy:
    """How many workers hold the goodput target at each offered rate?

    For every rate in ``rates`` the planner sets each tenant's (or the
    single app's) ``trace.base_rate`` to that rate and searches uniform
    worker counts in ``[min_workers, max_workers]`` for the smallest one
    whose goodput fraction reaches ``target``.  The goodput fraction is
    the declared-constraints ``good_fraction`` when the spec carries a
    :class:`~repro.metrics.goodput.GoodputSpec`, else the SLO-based
    ``good / total`` share from the run summary.
    """

    kind = "capacity"

    base: "Scenario | MultiScenario"
    rates: tuple[float, ...] = ()
    target: float = 0.95
    min_workers: int = 1
    max_workers: int = 16
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.base, dict):
            object.__setattr__(
                self, "base", scenario_from_dict(self.base)
            )
        if not isinstance(self.base, (Scenario, MultiScenario)):
            raise ValueError(
                "a capacity study needs a scenario or multi-scenario base"
            )
        object.__setattr__(
            self, "rates", _positive_floats(self.rates, "offered rate")
        )
        if not 0 < self.target <= 1:
            raise ValueError(f"target must be in (0, 1], got {self.target}")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        scenarios = (
            [t.scenario for t in self.base.tenants]
            if isinstance(self.base, MultiScenario) else [self.base]
        )
        for s in scenarios:
            if s.trace.path is not None:
                raise ValueError(
                    "capacity studies need generator traces: a file-backed "
                    "trace fixes its own arrival rate"
                )
            if s.utilization is not None or s.provision_rate is not None:
                raise ValueError(
                    "capacity studies size workers themselves; drop "
                    "utilization/provision_rate from the base scenario"
                )

    def spec_at(
        self, rate: float, workers: int
    ) -> "Scenario | MultiScenario":
        """One probe: the base at ``rate`` req/s with uniform ``workers``."""
        from dataclasses import replace

        spec = _apply_axis(self.base, "trace.base_rate", rate)
        return replace(spec, workers=int(workers))

    def validate(self) -> "CapacityStudy":
        """Resolve references on one representative probe per rate."""
        for rate in self.rates:
            self.spec_at(rate, self.min_workers).validate()
        return self

    def to_dict(self) -> dict:
        return {
            "study": self.kind,
            "name": self.name,
            "rates": list(self.rates),
            "target": self.target,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "base": self.base.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CapacityStudy":
        _check_keys(
            data,
            {"study", "name", "rates", "target", "min_workers",
             "max_workers", "base"},
            "capacity study",
        )
        if "base" not in data:
            raise ValueError("capacity study missing required key 'base'")
        return cls(
            base=scenario_from_dict(data["base"]),
            rates=tuple(data.get("rates", ())),
            target=float(data.get("target", 0.95)),
            min_workers=int(data.get("min_workers", 1)),
            max_workers=int(data.get("max_workers", 16)),
            name=str(data.get("name", "")),
        )


@dataclass(frozen=True)
class ChaosStudy:
    """Availability under seeded random fault schedules x resilience axes.

    Each cell replaces the base scenario's ``failures`` with a schedule
    drawn from one fault seed: ``faults`` events with kinds from
    ``kinds``, injection times uniform in ``start`` (fractions of the
    trace duration), outage lengths uniform in ``downtime`` seconds and
    degrade slowdowns uniform in ``factor``.  Link cuts pick a random
    DAG edge (apps without edges fall back to a kill).  Schedules are
    drawn from a named :class:`~repro.simulation.rng.RngStreams` stream,
    so they are a pure, platform-stable function of the seed — the study
    artifact depends on nothing but this spec.

    ``axes`` crosses the schedules with configuration knobs — typically
    the dotted resilience axes (``resilience.<module>.timeout``,
    ``resilience.<module>.retry.max``) over a base that declares
    :class:`~repro.simulation.resilience.HopResilience` hops.
    ``window``/``target`` parameterize the availability columns: the
    per-window good fraction and the time for windowed goodput to climb
    back to ``target`` after the first fault.
    """

    kind = "chaos"

    base: Scenario
    seeds: tuple[int, ...] = (0,)
    faults: int = 2
    kinds: tuple[str, ...] = FAULT_KINDS
    start: tuple[float, float] = (0.2, 0.6)
    downtime: tuple[float, float] = (1.0, 5.0)
    factor: tuple[float, float] = (1.5, 3.0)
    window: float = 1.0
    target: float = 0.9
    axes: tuple = ()
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.base, dict):
            object.__setattr__(self, "base", Scenario.from_dict(self.base))
        if not isinstance(self.base, Scenario):
            raise ValueError(
                "a chaos study needs a single-cluster scenario base "
                "(link faults have no shared-cluster form)"
            )
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ValueError("a chaos study needs at least one fault seed")
        object.__setattr__(self, "seeds", seeds)
        if self.faults < 1:
            raise ValueError("faults must be >= 1")
        kinds = tuple(str(k) for k in self.kinds)
        bad = sorted(set(kinds) - set(FAULT_KINDS))
        if not kinds or bad:
            raise ValueError(
                f"kinds must be a non-empty subset of {FAULT_KINDS}, "
                f"got {list(self.kinds)}"
            )
        object.__setattr__(self, "kinds", kinds)
        for attr in ("start", "downtime", "factor"):
            pair = tuple(float(v) for v in getattr(self, attr))
            if len(pair) != 2 or pair[0] > pair[1]:
                raise ValueError(
                    f"{attr} must be a (lo, hi) pair with lo <= hi"
                )
            object.__setattr__(self, attr, pair)
        if not (0.0 <= self.start[0] and self.start[1] < 1.0):
            raise ValueError(
                "start must lie in [0, 1): fractions of the trace duration"
            )
        if self.downtime[0] <= 0:
            raise ValueError("downtime values must be > 0")
        if self.factor[0] <= 1.0:
            raise ValueError("factor values must be > 1 (a slowdown)")
        if self.window <= 0:
            raise ValueError("window must be > 0")
        if not 0 < self.target <= 1:
            raise ValueError(f"target must be in (0, 1], got {self.target}")
        object.__setattr__(self, "axes", _freeze_axes(self.axes))

    def schedule(self, seed: int) -> tuple[FailureEvent, ...]:
        """The fault schedule for one seed — pure and platform-stable."""
        app = self.base.build_application()
        modules = list(app.spec.module_ids)
        edges = [
            (m.id, sub) for m in app.spec.modules for sub in m.subs
        ]
        rng = RngStreams(seed=int(seed)).stream("chaos")
        duration = self.base.trace.duration
        events = []
        for _ in range(self.faults):
            kind = self.kinds[int(rng.integers(len(self.kinds)))]
            if kind == "link" and not edges:
                kind = "kill"  # single-module app: no edge to cut
            time = round(float(rng.uniform(*self.start)) * duration, 6)
            downtime = round(float(rng.uniform(*self.downtime)), 6)
            if kind == "link":
                src, dst = edges[int(rng.integers(len(edges)))]
                events.append(FailureEvent(
                    time=time, module_id=src, kind="link", dst=dst,
                    downtime=downtime,
                ))
            elif kind == "degrade":
                mid = modules[int(rng.integers(len(modules)))]
                events.append(FailureEvent(
                    time=time, module_id=mid, kind="degrade",
                    downtime=downtime,
                    factor=round(float(rng.uniform(*self.factor)), 6),
                ))
            else:
                mid = modules[int(rng.integers(len(modules)))]
                events.append(FailureEvent(
                    time=time, module_id=mid, downtime=downtime,
                ))
        return tuple(events)

    def axis_names(self) -> list[str]:
        """Grid column names in expansion order (seeds vary fastest)."""
        return [axis for axis, _ in self.axes] + ["fault_seed"]

    def expand(self) -> list[tuple[dict, Scenario]]:
        """The grid as ``(axis values, concrete spec)`` pairs, in order."""
        from dataclasses import replace

        points: list[tuple[dict, Scenario]] = [({}, self.base)]
        for axis, values in self.axes:
            points = [
                ({**vals, axis: v}, _apply_axis(spec, axis, v))
                for vals, spec in points
                for v in values
            ]
        return [
            (
                {**vals, "fault_seed": seed},
                replace(spec, failures=self.schedule(seed)),
            )
            for vals, spec in points
            for seed in self.seeds
        ]

    def validate(self) -> "ChaosStudy":
        """Resolve every reference in every grid member up front."""
        for _, spec in self.expand():
            spec.validate()
        return self

    def to_dict(self) -> dict:
        return {
            "study": self.kind,
            "name": self.name,
            "seeds": list(self.seeds),
            "faults": self.faults,
            "kinds": list(self.kinds),
            "start": list(self.start),
            "downtime": list(self.downtime),
            "factor": list(self.factor),
            "window": self.window,
            "target": self.target,
            "axes": _thaw_axes(self.axes),
            "base": self.base.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosStudy":
        _check_keys(
            data,
            {"study", "name", "seeds", "faults", "kinds", "start",
             "downtime", "factor", "window", "target", "axes", "base"},
            "chaos study",
        )
        if "base" not in data:
            raise ValueError("chaos study missing required key 'base'")
        return cls(
            base=Scenario.from_dict(data["base"]),
            seeds=tuple(data.get("seeds", (0,))),
            faults=int(data.get("faults", 2)),
            kinds=tuple(data.get("kinds", FAULT_KINDS)),
            start=tuple(data.get("start", (0.2, 0.6))),
            downtime=tuple(data.get("downtime", (1.0, 5.0))),
            factor=tuple(data.get("factor", (1.5, 3.0))),
            window=float(data.get("window", 1.0)),
            target=float(data.get("target", 0.9)),
            axes=tuple(dict(data.get("axes", {})).items()),
            name=str(data.get("name", "")),
        )


_STUDY_KINDS = {
    "interference": InterferenceStudy,
    "capacity": CapacityStudy,
    "chaos": ChaosStudy,
}


def study_from_dict(data: Any) -> "InterferenceStudy | CapacityStudy":
    """Parse a study file body, dispatched on its ``study`` kind key."""
    if not isinstance(data, dict):
        raise ValueError(
            f"study file must hold a JSON object, got {type(data).__name__}"
        )
    kind = data.get("study")
    if kind not in _STUDY_KINDS:
        raise ValueError(
            f"unknown study kind {kind!r}; expected one of "
            f"{sorted(_STUDY_KINDS)}"
        )
    return _STUDY_KINDS[kind].from_dict(data)


def load_study_file(path: "str | Path") -> "InterferenceStudy | CapacityStudy":
    """Load and parse one study JSON file."""
    return study_from_dict(json.loads(Path(path).read_text()))
