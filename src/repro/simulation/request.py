"""Request model and per-module lifecycle bookkeeping.

A request's life at one module follows Figure 5 of the paper::

    t_s ----------> t_r ---------> t_b ----------> t_e -----------> t_end
    sent            received       put into a      batch execution  batch done
    by client       by module      forming batch   starts

which decomposes the module latency into queueing delay ``Q = t_b - t_r``,
batch wait ``W = t_e - t_b`` and execution duration ``D = t_end - t_e``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

_rid_counter = itertools.count()


class RequestStatus(enum.Enum):
    """Terminal / non-terminal states of a request."""

    IN_FLIGHT = "in_flight"
    COMPLETED = "completed"  # finished the pipeline (may still violate SLO)
    DROPPED = "dropped"  # explicitly dropped by a policy


class DropReason(enum.Enum):
    """Why a policy dropped a request (recorded for the metrics layer)."""

    ESTIMATED_VIOLATION = "estimated_violation"  # proactive: L-hat > SLO
    ALREADY_EXPIRED = "already_expired"  # reactive: deadline already passed
    BUDGET_EXCEEDED = "budget_exceeded"  # per-module split budget exceeded
    ADMISSION_CONTROL = "admission_control"  # overload-control throttling
    SIBLING_DROPPED = "sibling_dropped"  # DAG: another branch was dropped
    TIMEOUT = "timeout"  # per-hop resilience budget exhausted


@dataclass(slots=True)
class ModuleVisit:
    """Timestamps and accounting for one request at one module."""

    module_id: str
    t_received: float
    t_batched: float | None = None  # drawn from queue into a forming batch
    t_exec_start: float | None = None  # batch execution actually began
    t_exec_end: float | None = None  # batch execution finished
    batch_size: int = 0
    worker_id: int = -1
    gpu_time: float = 0.0  # this request's share of the batch GPU time
    # Token-level modules (LLMWorker) only; 0 = not sampled yet.  Sticky
    # across failure re-dispatch: the lengths are part of the request's
    # identity, not of one execution attempt.
    prompt_tokens: int = 0
    output_tokens: int = 0  # sampled target output length

    @property
    def queueing_delay(self) -> float:
        """Q_k: time spent in the request queue before batching."""
        if self.t_batched is None:
            raise ValueError("request was never batched at this module")
        return self.t_batched - self.t_received

    @property
    def batch_wait(self) -> float:
        """W_k: time between joining a forming batch and execution start."""
        if self.t_batched is None or self.t_exec_start is None:
            raise ValueError("request never started execution at this module")
        return self.t_exec_start - self.t_batched

    @property
    def execution(self) -> float:
        """D_k: batch execution duration."""
        if self.t_exec_start is None or self.t_exec_end is None:
            raise ValueError("request never finished execution at this module")
        return self.t_exec_end - self.t_exec_start


@dataclass(slots=True)
class Request:
    """One client request flowing through the pipeline.

    For DAG pipelines a single :class:`Request` object is shared by all
    branches; the owning :class:`~repro.simulation.cluster.RequestFlow`
    tracks the token flow (tokens arrived and expected per join, exits
    still live) keyed by ``rid``, so the request itself stays lean.
    ``visits`` doubles as the token trail: :meth:`begin_visit` rejects a
    second arrival at the same module, which is how a join double-fire —
    impossible under token-flow accounting — would surface loudly.
    Slotted: requests are the highest-churn objects in the simulator and
    their fields are read on every queue/batch/drop decision.
    """

    sent_at: float
    slo: float
    rid: int = field(default_factory=lambda: next(_rid_counter))
    app: str = ""  # owning application (set by multi-tenant clusters)
    status: RequestStatus = RequestStatus.IN_FLIGHT
    finished_at: float | None = None
    visits: dict[str, ModuleVisit] = field(default_factory=dict)
    dropped_at_module: str | None = None
    drop_reason: DropReason | None = None
    dropped_at_time: float | None = None
    # Client-observed token stream (token-level modules only).  first_
    # token_at is the earliest token of the whole pipeline (TTFT input);
    # tokens_out counts every streamed token, including ones produced by
    # an execution attempt a failure later aborted.
    first_token_at: float | None = None
    last_token_at: float | None = None
    tokens_out: int = 0

    @property
    def deadline(self) -> float:
        """Absolute wall-clock deadline ``t_s + SLO``."""
        return self.sent_at + self.slo

    def remaining_budget(self, now: float) -> float:
        """Latency budget left at ``now`` (negative once expired)."""
        return self.deadline - now

    @property
    def elapsed(self) -> float:
        """End-to-end latency; only valid for completed requests."""
        if self.finished_at is None:
            raise ValueError(f"request {self.rid} has not finished")
        return self.finished_at - self.sent_at

    @property
    def met_slo(self) -> bool:
        """True iff the request completed within its latency objective."""
        return (
            self.status is RequestStatus.COMPLETED
            and self.finished_at is not None
            and self.finished_at - self.sent_at <= self.slo
        )

    @property
    def gpu_time(self) -> float:
        """Total GPU time attributed to this request across all modules."""
        return sum(v.gpu_time for v in self.visits.values())

    def visit(self, module_id: str) -> ModuleVisit:
        """The :class:`ModuleVisit` for ``module_id`` (KeyError if absent)."""
        return self.visits[module_id]

    def begin_visit(self, module_id: str, now: float) -> ModuleVisit:
        """Record arrival at a module and return the fresh visit record."""
        if module_id in self.visits:
            raise ValueError(
                f"request {self.rid} already visited module {module_id!r}"
            )
        v = ModuleVisit(module_id=module_id, t_received=now)
        self.visits[module_id] = v
        return v

    def mark_dropped(self, module_id: str, reason: DropReason, now: float) -> None:
        """Transition to DROPPED (idempotent for DAG sibling branches)."""
        if self.status is RequestStatus.DROPPED:
            return
        if self.status is RequestStatus.COMPLETED:
            raise ValueError(f"request {self.rid} already completed")
        self.status = RequestStatus.DROPPED
        self.dropped_at_module = module_id
        self.drop_reason = reason
        self.dropped_at_time = now
        self.finished_at = now

    def mark_completed(self, now: float) -> None:
        """Transition to COMPLETED when the last module finishes."""
        if self.status is not RequestStatus.IN_FLIGHT:
            raise ValueError(f"request {self.rid} is {self.status}")
        self.status = RequestStatus.COMPLETED
        self.finished_at = now
