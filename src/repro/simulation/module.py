"""Module: one pipeline stage — a controller plus a pool of workers.

Each module serves a specific DNN model with the assigned computation
resources (paper footnote 1).  The controller side (dispatching, runtime
statistics, load factor) lives here; the data-plane batching lives in
:mod:`repro.simulation.worker`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..interfaces import DropPolicy
from ..pipeline.llm_profiles import LLMProfile
from ..pipeline.profiles import ModelProfile
from ..pipeline.spec import ModuleSpec
from .dispatcher import Dispatcher, LeastLoadedDispatcher
from .llm import LLMWorker
from .request import Request, RequestStatus
from .stats import ModuleStats
from .worker import Worker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import Cluster


class Module:
    """One stage of the inference pipeline."""

    def __init__(
        self,
        cluster: "Cluster",
        spec: ModuleSpec,
        profile: ModelProfile,
        target_batch: int,
        n_workers: int,
        dispatcher: Dispatcher | None = None,
        stats_window: float = 5.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"module {spec.id!r} needs at least one worker")
        if target_batch < 1:
            raise ValueError(f"module {spec.id!r}: target batch must be >= 1")
        self.cluster = cluster
        self.sim = cluster.sim
        self.spec = spec
        self.profile = profile
        self.target_batch = min(target_batch, profile.max_batch)
        self.dispatcher = dispatcher or LeastLoadedDispatcher()
        self.stats = ModuleStats(window=stats_window)
        self._next_worker_id = 0
        self._effective_cache: tuple[float, int, float] = (-1.0, 0, 0.0)
        self._parked: list[Request] = []  # arrivals during a total outage
        # False only when no worker can be draining, letting receive()
        # skip the per-request candidate scan (the common case: draining
        # only ever starts in drain_worker).  Recomputed lazily once a
        # drain has been requested.
        self._maybe_draining = False
        # Per-app worker quota (app name -> max dispatchable workers).
        # Installed by SharedCluster on shared pools whose tenants declare
        # quotas; None (the default everywhere else) keeps receive() on
        # its quota-free path.
        self._quota_of: dict[str, int] | None = None
        # Per-hop resilience config (HopResilience), installed by the
        # cluster when the scenario declares one for this module; None —
        # the default — keeps receive() and the worker draw loop on their
        # resilience-free fast paths.
        self._resilience = None
        # Admission hook, resolved once: most policies inherit the base
        # no-op on_admit, in which case receive() skips the call outright.
        policy = cluster.policy
        self._admit_hook = (
            policy.on_admit
            if type(policy).on_admit is not DropPolicy.on_admit
            else None
        )
        self.workers: list[Worker] = []
        for _ in range(n_workers):
            self._add_worker()

    @property
    def policy(self):
        return self.cluster.policy

    # -- capacity -----------------------------------------------------------

    def _add_worker(self) -> Worker:
        # The single worker-factory seam: token-level profiles get the
        # continuous-batching engine, everything else the batch worker.
        cls = LLMWorker if isinstance(self.profile, LLMProfile) else Worker
        worker = cls(self, self._next_worker_id)
        self._next_worker_id += 1
        self.workers.append(worker)
        return worker

    def add_worker(self) -> Worker:
        """Scale out by one worker (used by the scaling engine).

        Requests parked during a total outage are re-dispatched as soon as
        capacity returns.
        """
        worker = self._add_worker()
        if self._parked:
            parked, self._parked = self._parked, []
            for request in parked:
                if request.status is RequestStatus.IN_FLIGHT:
                    self.dispatcher.pick(self.workers).enqueue(request)
        return worker

    def park(self, request: Request) -> None:
        """Hold a request while the module has no live workers."""
        self._parked.append(request)

    def remove_worker(self) -> bool:
        """Scale in by removing one *idle* worker; False if none is idle.

        Never removes the last worker.
        """
        if len(self.workers) <= 1:
            return False
        for i, w in enumerate(self.workers):
            if w.idle and not w.draining:
                del self.workers[i]
                return True
        return False

    def drain_worker(self) -> bool:
        """Gracefully retire one worker: stop dispatching new requests to
        it and remove it once its queue and GPU are empty.

        Prefers an idle worker (removed immediately); else marks the
        least-loaded non-draining worker.  Never drains the last active
        worker.  Returns False when nothing could be drained.
        """
        if self.remove_worker():
            return True
        active = [w for w in self.workers if not w.draining]
        if len(active) <= 1:
            return False
        victim = min(active, key=lambda w: (w.load, w.worker_id))
        victim.draining = True  # the setter flags self._maybe_draining
        return True

    def reap(self, worker: Worker) -> None:
        """Remove a drained worker once it has gone idle."""
        if worker in self.workers and worker.draining and worker.idle:
            self.workers.remove(worker)

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def planned_duration(self) -> float:
        """d_k: profiled execution duration at the planned batch size."""
        return self.profile.duration(self.target_batch)

    def effective_batch(self, now: float) -> int:
        """Recently observed average batch size (falls back to the target).

        This is the "current batch size" the paper's State Planner
        synchronises: under light load actual batches run smaller than the
        planned maximum, and estimating d_k at the planned size would
        overstate both the current and downstream execution durations.
        Cached for 0.5 s — the paper refreshes it on sync ticks.  The
        profiled duration at that size is cached alongside it (it is a
        pure function of the batch size, and the pair is consulted once
        per drawn request).
        """
        cached_at, cached, _ = self._effective_cache
        if now - cached_at < 0.5 and cached > 0:
            return cached
        avg = self.stats.avg_batch_size(now, default=float(self.target_batch))
        value = max(1, min(self.target_batch, round(avg)))
        self._effective_cache = (now, value, self.profile.duration(value))
        return value

    def effective_duration(self, now: float) -> float:
        """d_k at the recently observed batch size."""
        cached_at, cached, duration = self._effective_cache
        if now - cached_at < 0.5 and cached > 0:
            return duration
        self.effective_batch(now)
        return self._effective_cache[2]

    def throughput(self) -> float:
        """T_m: module throughput at the planned batch size (req/s)."""
        return self.n_workers * self.profile.throughput(self.target_batch)

    def load_factor(self, now: float) -> float:
        """mu = T_in / T_m: >1 means the module is under-provisioned."""
        t_m = self.throughput()
        if t_m <= 0:
            return float("inf")
        return self.stats.input_rate(now) / t_m

    def queue_length(self) -> int:
        """Total queued (not yet batched) requests across workers."""
        return sum(len(w.queue) for w in self.workers)

    # -- request flow -------------------------------------------------------

    def receive(self, request: Request) -> None:
        """Accept a request arriving at this module (step 4 in Figure 4)."""
        if request.status is not RequestStatus.IN_FLIGHT:
            return  # dropped in transit (DAG sibling with network delay)
        now = self.sim.now
        request.begin_visit(self.spec.id, now)
        self.stats.arrivals.record(now)
        if self._admit_hook is not None:
            reason = self._admit_hook(request, self, now)
            if reason is not None:
                self.stats.record_drop()
                self.cluster.drop(request, self.spec.id, reason)
                return
        if self._resilience is not None:
            # Arm the hop's watchdog/hedge timers before dispatch; they
            # fire as plain heap events and no-op lazily if stale.
            self.cluster.resilience.arm(request, self)
        workers = self.workers
        if self._quota_of is not None:
            # A quota confines the app to a prefix of the pool: its
            # requests only ever dispatch to (and queue at) the first q
            # workers, so a noisy tenant cannot occupy the whole pool.
            q = self._quota_of.get(request.app)
            if q is not None and q < len(workers):
                workers = workers[:q]
        if not self._maybe_draining:
            # Fast path: no drain has been requested, every worker is a
            # candidate — skip the per-request filtering allocation.
            if not workers:
                self.park(request)  # total outage: wait for recovery
                return
            self.dispatcher.pick(workers).enqueue(request)
            return
        candidates = [w for w in workers if not w.draining]
        if len(candidates) == len(workers) and workers is self.workers:
            # Only a full-pool scan may clear the flag: a quota slice
            # proves nothing about the workers it cut off.
            self._maybe_draining = False  # every drainer has been reaped
        if not candidates:
            if not workers:
                self.park(request)  # total outage: wait for recovery
                return
            candidates = workers  # everything draining: least harm
        worker = self.dispatcher.pick(candidates)
        worker.enqueue(request)
