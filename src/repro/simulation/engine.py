"""Deterministic discrete-event simulation engine.

The engine is the substrate that replaces the paper's 64-GPU testbed: every
component (workers, controllers, the scaling engine, state synchronisation)
runs as callbacks scheduled on a single simulated clock.  Events with equal
timestamps fire in scheduling order, which makes every run reproducible for
a given seed and configuration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A minimal, deterministic event loop.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled ones excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Scheduling in the past raises ``ValueError`` — the engine never
        rewinds the clock.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time:.6f}s before now={self._now:.6f}s"
            )
        event = _Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` is passed, or
        ``max_events`` have been executed in this call."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and nxt.time > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
