"""Deterministic discrete-event simulation engine.

The engine is the substrate that replaces the paper's 64-GPU testbed: every
component (workers, controllers, the scaling engine, state synchronisation)
runs as callbacks scheduled on a single simulated clock.  Events with equal
timestamps fire in scheduling order, which makes every run reproducible for
a given seed and configuration.

The heap holds plain ``(time, seq, handle)`` tuples: ``seq`` is unique, so
tuple comparison never reaches the handle and ordering costs two native
comparisons instead of a generated dataclass ``__lt__`` — the single
hottest comparison site in the simulator.  Cancellation is lazy (the handle
is flagged and skipped at pop time), but the heap compacts itself whenever
tombstones outnumber live events, so a workload that schedules and cancels
heavily (timeout guards, rescheduled ticks) cannot grow the heap — or the
``run(until=...)`` head-walk — without bound.

Arrival *lanes* (:meth:`Simulator.open_lane`) carry streamed request
arrivals: a lane reserves a contiguous block of sequence numbers when it
is opened, so events scheduled on it later — one pending arrival at a
time — occupy exactly the tie-breaking position that eagerly
pre-scheduling the whole trace at open time would have given them: after
everything scheduled before the lane opened, before everything scheduled
after, lanes in opening order, and within a lane in scheduling order.
That makes lazy streaming byte-identical to the old eager replay.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: Compaction floor: below this heap size the tombstone scan is too cheap
#: to be worth rebuilding over.
_COMPACT_MIN = 64


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        sim: "Simulator",
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self._sim = sim
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.callback is not None:
            # Still queued: count the tombstone and let the simulator
            # decide whether the heap is worth compacting.
            self._sim._note_cancelled()


class ArrivalLane:
    """Streaming lane returned by :meth:`Simulator.open_lane`.

    The lane reserves ``_SPAN`` sequence numbers up front, so an event
    scheduled on it *later* still sorts exactly where eager
    pre-scheduling at open time would have placed it relative to every
    other event — that equivalence is what keeps lazy arrival streaming
    byte-identical to materialized replay.  Lane times must be
    nondecreasing (the lane streams a sorted arrival source), which also
    means the one-pending-event discipline never rewinds the clock.
    """

    __slots__ = ("_sim", "_base", "_k", "_last")

    #: Sequence numbers reserved per lane; bounds arrivals per lane.
    _SPAN = 2**44

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._base = sim._seq
        sim._seq = self._base + self._SPAN
        self._k = 0
        self._last = -float("inf")

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at ``time`` in this lane's slot."""
        if time < self._sim._now:
            raise ValueError(
                f"cannot schedule event at {time:.6f}s before "
                f"now={self._sim._now:.6f}s"
            )
        if time < self._last:
            raise ValueError(
                f"lane times must be nondecreasing: {time!r} after "
                f"{self._last!r} (is the arrival source sorted?)"
            )
        self._last = time
        if self._k >= self._SPAN:  # pragma: no cover - 2**44 arrivals
            raise OverflowError("arrival lane exhausted")
        seq = self._base + self._k
        self._k += 1
        handle = EventHandle(self._sim, time, seq, callback, args)
        heapq.heappush(self._sim._heap, (time, seq, handle))
        return handle


class Simulator:
    """A minimal, deterministic event loop.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0  # tombstones still sitting in the heap

    def open_lane(self) -> ArrivalLane:
        """Open a streaming arrival lane (see :class:`ArrivalLane`)."""
        return ArrivalLane(self)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled ones excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued (cancelled ones excluded)."""
        return len(self._heap) - self._cancelled

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Scheduling in the past raises ``ValueError`` — the engine never
        rewinds the clock.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time:.6f}s before now={self._now:.6f}s"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(self, time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, *args)

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > _COMPACT_MIN
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (O(live); heap order kept
        by the (time, seq) keys, so firing order is unchanged)."""
        live = []
        for entry in self._heap:
            handle = entry[2]
            if handle.cancelled:
                handle.callback = None  # release the closure early
                handle.args = ()
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._cancelled = 0

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        heap = self._heap
        while heap:
            _, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                self._cancelled -= 1
                handle.callback = None
                handle.args = ()
                continue
            callback, args = handle.callback, handle.args
            handle.callback = None  # fired: a later cancel() is a no-op
            handle.args = ()
            self._now = handle.time
            self._processed += 1
            callback(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` is passed, or
        ``max_events`` have been executed in this call.

        The dispatch is inlined rather than delegating to :meth:`step` —
        one Python frame per event is measurable at millions of events.
        """
        executed = 0
        heappop = heapq.heappop
        heap = self._heap
        while heap:
            if max_events is not None and executed >= max_events:
                return
            nxt = heap[0]
            handle = nxt[2]
            if handle.cancelled:
                heappop(heap)
                self._cancelled -= 1
                handle.callback = None
                handle.args = ()
                continue
            if until is not None and nxt[0] > until:
                self._now = until
                return
            heappop(heap)
            callback, args = handle.callback, handle.args
            handle.callback = None  # fired: a later cancel() is a no-op
            handle.args = ()
            self._now = nxt[0]
            self._processed += 1
            callback(*args)
            executed += 1
            heap = self._heap  # a compaction may have swapped the list
        if until is not None and until > self._now:
            self._now = until
