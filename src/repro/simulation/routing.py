"""Path selection for DAG pipelines.

Static DAG pipelines fan a request out to *every* successor at a fork and
merge at joins.  Recent pipelines (paper §5.2, "request-specific dynamic
paths") instead choose a branch per request based on intermediate results —
e.g. the adapted ``da`` application sends each request down either the pose
branch or the face branch, probabilistically.  This module provides the
router seam the cluster uses at every fork.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from .request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .module import Module


class PathRouter(abc.ABC):
    """Chooses which successors a request is forwarded to at a fork."""

    @abc.abstractmethod
    def select(
        self, request: Request, module: "Module", subs: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Non-empty subset of ``subs`` the request should take."""


class StaticRouter(PathRouter):
    """Default fan-out-to-all semantics (the paper's static DAG)."""

    def select(self, request, module, subs):
        return subs


class ProbabilisticRouter(PathRouter):
    """Pick exactly one successor per request, with given weights.

    Models the paper's dynamic-path variant of ``da`` where each request
    probabilistically takes either the pose or the face branch.
    """

    def __init__(
        self,
        weights: dict[str, float] | None = None,
        seed: int = 0,
    ) -> None:
        self.weights = weights
        self._rng = np.random.default_rng(seed)

    def select(self, request, module, subs):
        if len(subs) <= 1:
            return subs
        if self.weights:
            w = np.array([self.weights.get(s, 1.0) for s in subs], dtype=float)
        else:
            w = np.ones(len(subs))
        total = w.sum()
        if total <= 0:
            raise ValueError("path weights must sum to a positive value")
        idx = self._rng.choice(len(subs), p=w / total)
        return (subs[idx],)


class ResultDependentRouter(PathRouter):
    """Route by a caller-supplied function of the request.

    The hook receives the request and the candidate successors and returns
    the chosen subset — the general form of content-dependent routing
    (e.g. "only run face recognition when a face was detected").
    """

    def __init__(self, chooser) -> None:
        self._chooser = chooser

    def select(self, request, module, subs):
        chosen = tuple(self._chooser(request, subs))
        if not chosen:
            raise ValueError("router must choose at least one successor")
        unknown = set(chosen) - set(subs)
        if unknown:
            raise ValueError(f"router chose non-successor modules {unknown}")
        return chosen
