"""Reactive resource scaling with cold starts.

The paper (§2, §5.1) notes that systems scale workers with the request rate,
but cold starts mean capacity cannot appear instantly during bursts — which
is precisely when request dropping becomes necessary.  This engine
reproduces that dynamic: scale-out decisions take ``cold_start`` seconds to
materialise; scale-in only removes idle workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .cluster import Cluster


@dataclass
class ScalingEvent:
    """One scaling action, recorded for analysis."""

    time: float
    module_id: str
    kind: str  # "scale_out_requested" | "scale_out_done" | "scale_in"
    workers_after: int


@dataclass
class ReactiveScaler:
    """Adjusts workers per module from the measured input rate.

    Desired workers = ceil(rate * headroom / per-worker throughput), clamped
    to [min_workers, max_workers].  Scale-out requests become live workers
    only after ``cold_start`` seconds.
    """

    cluster: Cluster
    interval: float = 2.0
    cold_start: float = 8.0
    headroom: float = 1.1
    min_workers: int = 1
    max_workers: int = 16
    scale_in_patience: int = 4  # consecutive low ticks before scaling in
    graceful_scale_in: bool = False  # drain busy workers instead of waiting
    events: list[ScalingEvent] = field(default_factory=list)
    _pending: dict[str, int] = field(default_factory=dict)
    _low_ticks: dict[str, int] = field(default_factory=dict)
    _started: bool = False
    _stopped: bool = False

    def start(self) -> None:
        """Begin the periodic scaling loop (idempotent)."""
        if self._started:
            return
        self._started = True
        self.cluster.register_periodic(self)
        self.cluster.sim.schedule_after(self.interval, self._tick)

    def stop(self) -> None:
        """Stop rescheduling ticks (lets the event queue drain)."""
        self._stopped = True

    def _desired(self, module_id: str, now: float) -> int:
        module = self.cluster.modules[module_id]
        per_worker = module.profile.throughput(module.target_batch)
        rate = module.stats.input_rate(now)
        want = math.ceil(rate * self.headroom / per_worker) if rate > 0 else 0
        return max(self.min_workers, min(self.max_workers, want))

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.cluster.sim.now
        for module_id, module in self.cluster.modules.items():
            desired = self._desired(module_id, now)
            pending = self._pending.get(module_id, 0)
            have = module.n_workers + pending
            if desired > have:
                self._low_ticks[module_id] = 0
                for i in range(desired - have):
                    self._pending[module_id] = self._pending.get(module_id, 0) + 1
                    # workers_after counts live + pending workers once this
                    # request lands: have+1, have+2, ... — not the stale
                    # pre-loop count repeated.
                    self.events.append(
                        ScalingEvent(
                            now, module_id, "scale_out_requested", have + i + 1
                        )
                    )
                    self.cluster.sim.schedule_after(
                        self.cold_start, self._finish_scale_out, module_id
                    )
            elif desired < module.n_workers:
                # Scale in only after sustained low demand — eager scale-in
                # followed by a burst pays the cold start twice.
                low = self._low_ticks.get(module_id, 0) + 1
                self._low_ticks[module_id] = low
                if low >= self.scale_in_patience:
                    shrunk = (
                        module.drain_worker()
                        if self.graceful_scale_in
                        else module.remove_worker()
                    )
                    if shrunk:
                        self.events.append(
                            ScalingEvent(now, module_id, "scale_in", module.n_workers)
                        )
                    self._low_ticks[module_id] = 0
            else:
                self._low_ticks[module_id] = 0
        self.cluster.sim.schedule_after(self.interval, self._tick)

    def _finish_scale_out(self, module_id: str) -> None:
        if self._stopped:
            # stop_ticks() ran while this cold start was pending: the run
            # is draining and a worker materialising now would serve
            # requests the metrics have already closed the books on.
            return
        module = self.cluster.modules[module_id]
        self._pending[module_id] = max(0, self._pending.get(module_id, 0) - 1)
        if module.n_workers < self.max_workers:
            module.add_worker()
            self.events.append(
                ScalingEvent(
                    self.cluster.sim.now,
                    module_id,
                    "scale_out_done",
                    module.n_workers,
                )
            )
