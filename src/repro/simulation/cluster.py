"""Cluster: wires a pipeline spec into modules and routes requests.

Handles the full request lifecycle across the DAG: entry dispatch, hop-by-hop
forwarding, fork (a module with several successors sends the request to all
of them), join (a module with several predecessors waits for every branch),
drops (including DAG sibling invalidation) and completion.

The lifecycle itself lives in :class:`RequestFlow` so the single-application
:class:`Cluster` and the multi-tenant views in
:mod:`repro.simulation.tenancy` share one implementation of fork/join
accounting — per-tenant routing over shared worker pools only overrides how
a data-plane module maps back to a position in the pipeline DAG
(:meth:`RequestFlow.hop_id`).
"""

from __future__ import annotations

from collections import defaultdict

from ..metrics.collector import MetricsCollector
from ..pipeline.applications import Application
from ..pipeline.profiles import DEFAULT_PROFILES, ProfileRegistry
from ..interfaces import DropPolicy
from .batching import plan_batch_sizes
from .engine import Simulator
from .module import Module
from .request import DropReason, Request, RequestStatus
from .rng import RngStreams
from .routing import PathRouter, StaticRouter


class RequestFlow:
    """Request lifecycle over one pipeline DAG.

    Mixin consumed by :class:`Cluster` (modules are exclusively its own)
    and :class:`repro.simulation.tenancy.TenantView` (modules are shared
    pools).  Expects the host to provide ``sim``, ``spec``, ``slo``,
    ``metrics``, ``router``, ``hop_delay``, ``modules`` (DAG module id ->
    data-plane :class:`Module`) and ``entry_id``, and to call
    :meth:`_init_flow_state` before the first request.
    """

    def _init_flow_state(self) -> None:
        # Join bookkeeping for DAG pipelines: request id -> module id ->
        # count of branch deliveries received so far.  ``_join_needed``
        # overrides the default in-degree requirement for requests routed
        # down a subset of branches (dynamic paths).
        self._join_counts: dict[int, dict[str, int]] = defaultdict(dict)
        self._join_needed: dict[int, dict[str, int]] = defaultdict(dict)
        # Observed branch choices at forks: (module, successor) -> count.
        # Feeds the request-path prediction extension (§5.2 future work).
        self.branch_counts: dict[tuple[str, str], int] = defaultdict(int)
        # Per-hop DAG neighbourhood, flattened out of the spec: consulted
        # once per module completion / delivery on the request hot path.
        spec = self.spec
        self._successors = {mid: spec.successors(mid) for mid in spec.module_ids}
        self._pred_count = {
            mid: len(spec.predecessors(mid)) for mid in spec.module_ids
        }

    # -- hop translation ---------------------------------------------------

    def hop_id(self, module: Module) -> str:
        """The DAG position a data-plane module represents for this flow.

        For a dedicated cluster the module *is* the DAG node.  Tenant views
        over shared pools override this to translate a pool back to the
        tenant's own module id; policies must use it (rather than
        ``module.spec.id``) whenever they key spec-derived structures by
        the module a request is at.
        """
        return module.spec.id

    def is_entry_module(self, module: Module) -> bool:
        """True when ``module`` serves this flow's pipeline entry."""
        return self.hop_id(module) == self.entry_id

    # -- request lifecycle -------------------------------------------------

    def submit(self, request: Request) -> None:
        """Inject a client request at the pipeline entry."""
        self.metrics.record_submitted()
        self.modules[self.entry_id].receive(request)

    def submit_at(self, t: float, slo: float | None = None) -> Request:
        """Schedule a request to be sent at simulation time ``t``."""
        request = Request(sent_at=t, slo=self.slo if slo is None else slo)
        self.sim.schedule(t, self.submit, request)
        return request

    def on_module_done(self, request: Request, module: Module) -> None:
        """A worker finished executing ``request`` at ``module``."""
        if request.status is RequestStatus.DROPPED:
            # A sibling DAG branch dropped the request while this branch was
            # executing; the GPU time is already attributed and will count
            # as invalid.  Do not forward further.
            return
        subs = self._successors[self.hop_id(module)]
        if not subs:
            request.mark_completed(self.sim.now)
            self._forget(request)
            self.metrics.record_request(request)
            return
        chosen = subs
        if len(subs) > 1:
            chosen = tuple(self.router.select(request, module, subs))
            for s in chosen:
                self.branch_counts[(self.hop_id(module), s)] += 1
            self._record_branch_choice(request, chosen)
        for sub in chosen:
            self._deliver(request, sub)

    def _record_branch_choice(
        self, request: Request, chosen: tuple[str, ...]
    ) -> None:
        """Adjust join requirements for a request passing a fork.

        For every join module reachable from the chosen branches, the one
        token that was flowing through this fork is replaced by one token
        per chosen branch whose paths lead there.  Accumulating this way
        (rather than overwriting) keeps nested forks correct: when two
        sequential forks both feed the same join, each fork substitutes
        only its own token's contribution, so the final requirement is the
        total number of branch deliveries actually en route.  The static
        router reproduces the default in-degree requirement.

        The per-branch join contributions come from the spec's precomputed
        ``joins_reached`` table — the old per-request scan over every
        module id (with an ``nx.descendants`` traversal each) sat directly
        on the fork hot path.
        """
        spec = self.spec
        counts: dict[str, int] = {}
        for s in chosen:
            for mid in spec.joins_reached(s):
                counts[mid] = counts.get(mid, 0) + 1
        if not counts:
            return
        needed = self._join_needed[request.rid]
        for mid, cnt in counts.items():
            # The token passing this fork counted as one pending delivery
            # toward ``mid``; it now fans out into ``cnt``.
            needed[mid] = needed.get(mid, 1) - 1 + cnt

    def _deliver(self, request: Request, module_id: str) -> None:
        """Deliver to a successor, honouring join semantics at merges."""
        n_preds = self._pred_count[module_id]
        if n_preds > 1:
            counts = self._join_counts[request.rid]
            arrived = counts.get(module_id, 0) + 1
            counts[module_id] = arrived
            needed = self._join_needed.get(request.rid, {}).get(
                module_id, n_preds
            )
            if arrived < needed:
                return  # wait for the remaining branches
            del counts[module_id]
        if self.hop_delay > 0:
            self.sim.schedule_after(
                self.hop_delay, self.modules[module_id].receive, request
            )
        else:
            self.modules[module_id].receive(request)

    def drop(self, request: Request, module_id: str, reason: DropReason) -> None:
        """Drop a request at ``module_id`` (idempotent for DAG siblings)."""
        if request.status is RequestStatus.DROPPED:
            return
        request.mark_dropped(module_id, reason, self.sim.now)
        self._forget(request)
        self.metrics.record_request(request)

    def _forget(self, request: Request) -> None:
        self._join_counts.pop(request.rid, None)
        self._join_needed.pop(request.rid, None)

    def branch_probability(self, module_id: str, successor: str) -> float:
        """Observed probability that a request at a fork takes ``successor``.

        Laplace-smoothed over the fork's successors; 1.0 for non-forks.
        Used by the path-prediction extension of the State Planner.
        """
        subs = self.spec.successors(module_id)
        if len(subs) <= 1:
            return 1.0
        counts = {s: self.branch_counts.get((module_id, s), 0) for s in subs}
        total = sum(counts.values()) + len(subs)
        return (counts.get(successor, 0) + 1) / total

    # -- introspection -----------------------------------------------------

    def module_list(self) -> list[Module]:
        """Modules in declaration order (M1..MN for chains)."""
        return [self.modules[mid] for mid in self.spec.module_ids]

    def total_queue_length(self) -> int:
        return sum(m.queue_length() for m in self.modules.values())


class Cluster(RequestFlow):
    """A simulated serving cluster for one pipeline application."""

    def __init__(
        self,
        sim: Simulator,
        app: Application,
        policy: DropPolicy,
        workers: int | dict[str, int],
        registry: ProfileRegistry | None = None,
        batch_plan: dict[str, int] | None = None,
        metrics: MetricsCollector | None = None,
        rng: RngStreams | None = None,
        sync_interval: float = 1.0,
        stats_window: float = 5.0,
        router: PathRouter | None = None,
        hop_delay: float = 0.0,
    ) -> None:
        if hop_delay < 0:
            raise ValueError("hop_delay must be >= 0")
        self.sim = sim
        self.app = app
        self.spec = app.spec
        self.slo = app.slo
        self.policy = policy
        self.registry = registry or DEFAULT_PROFILES
        # `metrics or ...` would discard a supplied *empty* collector
        # (len() == 0 makes it falsy) — compare against None explicitly.
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.rng = rng or RngStreams(seed=0)
        self.sync_interval = sync_interval
        self.router = router or StaticRouter()
        self.hop_delay = hop_delay

        entries = self.spec.entry_ids
        if len(entries) != 1:
            raise ValueError(
                f"pipeline {self.spec.name!r} must have exactly one entry module"
            )
        self.entry_id = entries[0]

        plan = batch_plan or plan_batch_sizes(self.spec, self.registry, self.slo)
        self.modules: dict[str, Module] = {}
        for mspec in self.spec.modules:
            if isinstance(workers, dict):
                n = workers[mspec.id]
            else:
                n = workers
            self.modules[mspec.id] = Module(
                cluster=self,
                spec=mspec,
                profile=self.registry.get(mspec.model),
                target_batch=plan[mspec.id],
                n_workers=n,
                stats_window=stats_window,
            )

        self._init_flow_state()
        self._tick_started = False
        self._tick_handle = None
        self._periodics: list = []  # controllers with a stop() method

        self.policy.bind(self)

    # -- periodic control plane ----------------------------------------------

    def start_ticks(self) -> None:
        """Begin the periodic state-synchronisation loop (idempotent)."""
        if self._tick_started:
            return
        self._tick_started = True
        self._tick_handle = self.sim.schedule_after(self.sync_interval, self._tick)

    def _tick(self) -> None:
        self.policy.on_tick(self.sim.now)
        self._tick_handle = self.sim.schedule_after(self.sync_interval, self._tick)

    def register_periodic(self, controller) -> None:
        """Track a periodic controller (e.g. a scaler) to stop at drain."""
        self._periodics.append(controller)

    def stop_ticks(self) -> None:
        """Cancel periodic ticks so the event queue can drain."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self._tick_started = False
        for controller in self._periodics:
            controller.stop()
