"""Cluster: wires a pipeline spec into modules and routes requests.

Handles the full request lifecycle across the DAG: entry dispatch, hop-by-hop
forwarding, fork (a module with several successors splits the request's token
across the chosen branches), join (a module with several predecessors merges
the tokens it will ever receive), drops (including DAG sibling invalidation)
and completion (every live exit finished).

The lifecycle itself lives in :class:`RequestFlow` so the single-application
:class:`Cluster` and the multi-tenant views in
:mod:`repro.simulation.tenancy` share one implementation of fork/join
accounting — per-tenant routing over shared worker pools only overrides how
a data-plane module maps back to a position in the pipeline DAG
(:meth:`RequestFlow.hop_id`).
"""

from __future__ import annotations

from collections import defaultdict

from ..metrics.collector import MetricsCollector
from ..pipeline.applications import Application
from ..pipeline.profiles import DEFAULT_PROFILES, ProfileRegistry
from ..interfaces import DropPolicy
from .batching import plan_batch_sizes
from .engine import Simulator
from .module import Module
from .request import DropReason, Request, RequestStatus
from .rng import RngStreams
from .routing import PathRouter, StaticRouter


class RequestFlow:
    """Request lifecycle over one pipeline DAG, with token-flow joins.

    Mixin consumed by :class:`Cluster` (modules are exclusively its own)
    and :class:`repro.simulation.tenancy.TenantView` (modules are shared
    pools).  Expects the host to provide ``sim``, ``spec``, ``slo``,
    ``metrics``, ``router``, ``hop_delay``, ``modules`` (DAG module id ->
    data-plane :class:`Module`) and ``entry_id``, and to call
    :meth:`_init_flow_state` before the first request.

    Join accounting follows the token-flow model (see
    :mod:`repro.pipeline.spec`): a request carries one token per active
    branch, a fork splits its token across the chosen successors, and a
    join fires when every token it will ever receive has arrived.  Under
    full fan-out that demand is the join's in-degree; when a router picks
    a subset of branches, the spec's precomputed per-(fork, branch)
    :class:`~repro.pipeline.spec.KillPlan` says exactly how much demand
    each surviving join loses — no per-request graph walks, and a token
    that re-merges at an early join is never double-counted at later ones.
    """

    def _init_flow_state(self) -> None:
        # Token bookkeeping for DAG pipelines, keyed by request id and
        # populated lazily (chains never touch it):
        # ``_join_arrived``  join id -> tokens received so far;
        # ``_join_expected`` join id -> tokens the join will ever receive
        #                    (present only once a kill plan lowered it
        #                    below the in-degree default);
        # ``_exit_expected`` exits still due to execute (multi-exit DAGs).
        self._join_arrived: dict[int, dict[str, int]] = defaultdict(dict)
        self._join_expected: dict[int, dict[str, int]] = {}
        self._exit_expected: dict[int, int] = {}
        # Fault/resilience state, armed lazily so fault-free flows keep a
        # single is-None check on the hot path:
        # ``_severed``  (src, dst) -> handoffs parked while the link is
        #               partitioned (set by the FailureInjector, replayed
        #               on heal);
        # ``_fallback_origin`` rid -> (fallback module, origin module):
        #               the request executes the origin's hop on the
        #               fallback's workers, and completion is translated
        #               back to the origin for routing.
        self._severed: dict[tuple[str, str], list[Request]] | None = None
        self._fallback_origin: dict[int, tuple[str, str]] | None = None
        # Observed branch choices at forks: (module, successor) -> count.
        # Feeds the request-path prediction extension (§5.2 future work).
        self.branch_counts: dict[tuple[str, str], int] = defaultdict(int)
        # Per-hop DAG neighbourhood, flattened out of the spec: consulted
        # once per module completion / delivery on the request hot path.
        spec = self.spec
        self._successors = {mid: spec.successors(mid) for mid in spec.module_ids}
        self._pred_count = {
            mid: len(spec.predecessors(mid)) for mid in spec.module_ids
        }
        self._n_exits = spec.exit_count

    # -- hop translation ---------------------------------------------------

    def hop_id(self, module: Module) -> str:
        """The DAG position a data-plane module represents for this flow.

        For a dedicated cluster the module *is* the DAG node.  Tenant views
        over shared pools override this to translate a pool back to the
        tenant's own module id; policies must use it (rather than
        ``module.spec.id``) whenever they key spec-derived structures by
        the module a request is at.
        """
        return module.spec.id

    def is_entry_module(self, module: Module) -> bool:
        """True when ``module`` serves this flow's pipeline entry."""
        return self.hop_id(module) == self.entry_id

    # -- request lifecycle -------------------------------------------------

    def submit(self, request: Request) -> None:
        """Inject a client request at the pipeline entry."""
        self.metrics.record_submitted()
        self.modules[self.entry_id].receive(request)

    def submit_at(self, t: float, slo: float | None = None) -> Request:
        """Schedule a request to be sent at simulation time ``t``."""
        request = Request(sent_at=t, slo=self.slo if slo is None else slo)
        self.sim.schedule(t, self.submit, request)
        return request

    def submit_now(self, t: float, slo: float | None = None) -> Request:
        """Create and inject a request arriving at time ``t`` immediately.

        The streaming-replay entry point: the arrival pump calls this
        from inside its lane event, so the request object only exists
        once its send time is reached — unlike :meth:`submit_at`, which
        allocates the request up front.
        """
        request = Request(sent_at=t, slo=self.slo if slo is None else slo)
        self.submit(request)
        return request

    def on_module_done(self, request: Request, module: Module) -> None:
        """A worker finished executing ``request`` at ``module``."""
        if request.status is RequestStatus.DROPPED:
            # A sibling DAG branch dropped the request while this branch was
            # executing; the GPU time is already attributed and will count
            # as invalid.  Do not forward further.
            return
        hop = self.hop_id(module)
        if self._fallback_origin is not None:
            origin = self._fallback_origin.get(request.rid)
            if origin is not None and origin[0] == hop:
                # The hop executed on its fallback's workers; route the
                # completion as if the origin module had finished.
                del self._fallback_origin[request.rid]
                hop = origin[1]
        subs = self._successors[hop]
        if not subs:
            self._finish_exit(request)
            return
        chosen = subs
        if len(subs) > 1:
            chosen = tuple(self.router.select(request, module, subs))
            for s in chosen:
                self.branch_counts[(hop, s)] += 1
            if chosen is not subs and chosen != subs:
                if len(chosen) > 1 and len(set(chosen)) != len(chosen):
                    raise ValueError(
                        f"router chose duplicate successors {chosen} at "
                        f"fork {hop!r}"
                    )
                self._record_branch_choice(request, hop, subs, chosen)
        severed = self._severed
        if severed is None:
            for sub in chosen:
                self._deliver(request, sub)
            return
        for sub in chosen:
            parked = severed.get((hop, sub))
            if parked is not None:
                parked.append(request)  # partitioned: replayed on heal
            else:
                self._deliver(request, sub)

    def _record_branch_choice(
        self,
        request: Request,
        fork_id: str,
        subs: tuple[str, ...],
        chosen: tuple[str, ...],
    ) -> None:
        """A fork routed ``request`` down a strict subset of its branches.

        Token-flow accounting: the token at the fork splits into one token
        per *chosen* successor, so every unchosen edge stops carrying a
        token.  The spec's precomputed per-(fork, branch)
        :class:`~repro.pipeline.spec.KillPlan` translates each dead edge
        into exit/join demand adjustments; overlapping choices by several
        forks compose through the per-request counters, with joins whose
        demand reaches zero propagating their own death plans.
        """
        spec = self.spec
        for s in subs:
            if s not in chosen:
                self._apply_kill_plan(request, spec.edge_kill_plan(fork_id, s))

    def _apply_kill_plan(self, request: Request, plan) -> None:
        """Apply one spec-level kill plan to this request's token state."""
        if plan.dead_exits:
            self._retire_exits(request, plan.dead_exits)
        for join_id, delta in plan.join_deltas:
            self._kill_join_edges(request, join_id, delta)

    def _retire_exits(self, request: Request, n: int) -> None:
        remaining = self._exit_expected.get(request.rid, self._n_exits) - n
        if remaining <= 0:
            # Impossible by construction: every chosen branch leads to a
            # still-pending exit, so at least one exit stays live.
            raise RuntimeError(
                f"request {request.rid}: token flow retired every exit"
            )
        self._exit_expected[request.rid] = remaining

    def _kill_join_edges(self, request: Request, join_id: str, k: int) -> None:
        """``k`` incoming edges of ``join_id`` will never carry a token."""
        rid = request.rid
        expected_map = self._join_expected.setdefault(rid, {})
        expected = expected_map.get(join_id, self._pred_count[join_id]) - k
        expected_map[join_id] = expected
        arrived_map = self._join_arrived.get(rid)
        arrived = arrived_map.get(join_id, 0) if arrived_map else 0
        if expected < arrived or expected < 0:
            raise RuntimeError(
                f"request {rid}: join {join_id!r} expects {expected} tokens "
                f"but already received {arrived}"
            )
        if expected == 0:
            # The join will never execute: it merges no tokens, and its
            # own outgoing edges go quiet.  Propagate.
            if not self._successors[join_id]:
                self._retire_exits(request, 1)
            self._apply_kill_plan(request, self.spec.death_plan(join_id))
        elif arrived == expected:
            # Every token still en route has already arrived — the fork
            # choice released the join.  Fire it now.
            del arrived_map[join_id]
            self._forward(request, join_id)

    def _deliver(self, request: Request, module_id: str) -> None:
        """Deliver one token to a successor, merging at joins."""
        n_preds = self._pred_count[module_id]
        if n_preds > 1:
            counts = self._join_arrived[request.rid]
            arrived = counts.get(module_id, 0) + 1
            expected_map = self._join_expected.get(request.rid)
            expected = (
                expected_map.get(module_id, n_preds)
                if expected_map
                else n_preds
            )
            if arrived < expected:
                counts[module_id] = arrived
                return  # wait for the remaining tokens
            counts.pop(module_id, None)
        self._forward(request, module_id)

    def _forward(self, request: Request, module_id: str) -> None:
        if self.hop_delay > 0:
            self.sim.schedule_after(
                self.hop_delay, self.modules[module_id].receive, request
            )
        else:
            self.modules[module_id].receive(request)

    def _finish_exit(self, request: Request) -> None:
        """A token reached an exit; complete once every live exit has."""
        if self._n_exits > 1:
            rid = request.rid
            remaining = self._exit_expected.get(rid, self._n_exits) - 1
            if remaining > 0:
                self._exit_expected[rid] = remaining
                return
        request.mark_completed(self.sim.now)
        self._forget(request)
        self.metrics.record_request(request)

    def drop(self, request: Request, module_id: str, reason: DropReason) -> None:
        """Drop a request at ``module_id`` (idempotent for DAG siblings)."""
        if request.status is RequestStatus.DROPPED:
            return
        request.mark_dropped(module_id, reason, self.sim.now)
        self._forget(request)
        self.metrics.record_request(request)

    def _forget(self, request: Request) -> None:
        self._join_arrived.pop(request.rid, None)
        self._join_expected.pop(request.rid, None)
        self._exit_expected.pop(request.rid, None)
        if self._fallback_origin is not None:
            self._fallback_origin.pop(request.rid, None)

    def branch_probability(self, module_id: str, successor: str) -> float:
        """Observed probability that a request at a fork takes ``successor``.

        Laplace-smoothed over the fork's successors; 1.0 for non-forks.
        Used by the path-prediction extension of the State Planner.
        """
        subs = self.spec.successors(module_id)
        if len(subs) <= 1:
            return 1.0
        counts = {s: self.branch_counts.get((module_id, s), 0) for s in subs}
        total = sum(counts.values()) + len(subs)
        return (counts.get(successor, 0) + 1) / total

    # -- introspection -----------------------------------------------------

    def module_list(self) -> list[Module]:
        """Modules in declaration order (M1..MN for chains)."""
        return [self.modules[mid] for mid in self.spec.module_ids]

    def total_queue_length(self) -> int:
        return sum(m.queue_length() for m in self.modules.values())


class Cluster(RequestFlow):
    """A simulated serving cluster for one pipeline application."""

    def __init__(
        self,
        sim: Simulator,
        app: Application,
        policy: DropPolicy,
        workers: int | dict[str, int],
        registry: ProfileRegistry | None = None,
        batch_plan: dict[str, int] | None = None,
        metrics: MetricsCollector | None = None,
        rng: RngStreams | None = None,
        sync_interval: float = 1.0,
        stats_window: float = 5.0,
        router: PathRouter | None = None,
        hop_delay: float = 0.0,
        resilience: dict | None = None,
    ) -> None:
        if hop_delay < 0:
            raise ValueError("hop_delay must be >= 0")
        self.sim = sim
        self.app = app
        self.spec = app.spec
        self.slo = app.slo
        self.policy = policy
        self.registry = registry or DEFAULT_PROFILES
        # `metrics or ...` would discard a supplied *empty* collector
        # (len() == 0 makes it falsy) — compare against None explicitly.
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.rng = rng or RngStreams(seed=0)
        self.sync_interval = sync_interval
        self.router = router or StaticRouter()
        self.hop_delay = hop_delay

        entries = self.spec.entry_ids
        if len(entries) != 1:
            raise ValueError(
                f"pipeline {self.spec.name!r} must have exactly one entry module"
            )
        self.entry_id = entries[0]

        plan = batch_plan or plan_batch_sizes(self.spec, self.registry, self.slo)
        self.modules: dict[str, Module] = {}
        for mspec in self.spec.modules:
            if isinstance(workers, dict):
                n = workers[mspec.id]
            else:
                n = workers
            self.modules[mspec.id] = Module(
                cluster=self,
                spec=mspec,
                profile=self.registry.get(mspec.model),
                target_batch=plan[mspec.id],
                n_workers=n,
                stats_window=stats_window,
            )

        # Per-hop resilience (module id -> HopResilience): resolved once
        # into a manager; unconfigured clusters keep every fast path.
        self.resilience = None
        if resilience:
            from .resilience import HopResilience, ResilienceManager

            hops = {
                mid: hop if isinstance(hop, HopResilience)
                else HopResilience.from_dict(hop)
                for mid, hop in resilience.items()
            }
            self.resilience = ResilienceManager(self, hops)
            for mid, hop in hops.items():
                self.modules[mid]._resilience = hop

        self._init_flow_state()
        self._tick_started = False
        self._tick_handle = None
        self._periodics: list = []  # controllers with a stop() method

        self.policy.bind(self)

    # -- periodic control plane ----------------------------------------------

    def start_ticks(self) -> None:
        """Begin the periodic state-synchronisation loop (idempotent)."""
        if self._tick_started:
            return
        self._tick_started = True
        self._tick_handle = self.sim.schedule_after(self.sync_interval, self._tick)

    def _tick(self) -> None:
        self.policy.on_tick(self.sim.now)
        self._tick_handle = self.sim.schedule_after(self.sync_interval, self._tick)

    def register_periodic(self, controller) -> None:
        """Track a periodic controller (e.g. a scaler) to stop at drain."""
        self._periodics.append(controller)

    def stop_ticks(self) -> None:
        """Cancel periodic ticks so the event queue can drain."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self._tick_started = False
        for controller in self._periodics:
            controller.stop()
