"""Multi-tenant serving: several pipeline applications on one cluster.

A :class:`SharedCluster` hosts N applications over shared, name-keyed
worker pools.  Modules from different apps that use the same model profile
share a pool — their requests queue, batch and execute together on the same
workers, so every policy observes the *aggregate* load — while each app
keeps its own SLO, drop policy, router, token-flow join accounting and
:class:`~repro.metrics.collector.MetricsCollector`.

Three pieces make that work:

* **Pool assignment** (:func:`assign_pools`) — deterministically maps every
  (app, module) to a pool key.  The first module of an app using model
  ``X`` maps to pool ``X``; later modules of the *same app* reusing the
  model get a qualified key ``X:<module id>`` (they are distinct DAG hops
  and a request may be queued at both concurrently, so they cannot share
  request-visit identity).  Apps share a pool whenever their keys collide.
* **Tenant views** (:class:`TenantView`) — one per app, carrying the app's
  spec/SLO/metrics and the pool mapping.  The view inherits the full
  fork/join request lifecycle from
  :class:`~repro.simulation.cluster.RequestFlow`; only
  :meth:`~TenantView.hop_id` differs, translating a shared pool back to
  the tenant's own DAG position.
* **The admission seam** (:class:`SharedPolicy`) — the single policy object
  the data plane sees.  It demultiplexes every decision to the owning
  tenant's policy, after an optional cross-app ``admission`` hook that
  observes the pool's aggregate state — the place fairness/throttling
  policies that must see *all* tenants plug in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..interfaces import DropPolicy, RequestQueue
from ..metrics.collector import MetricsCollector
from ..pipeline.applications import Application
from ..pipeline.profiles import DEFAULT_PROFILES, ProfileRegistry
from ..pipeline.spec import ModuleSpec
from .batching import plan_batch_sizes
from .cluster import RequestFlow
from .engine import Simulator
from .module import Module
from .request import DropReason, Request
from .rng import RngStreams
from .routing import PathRouter, StaticRouter

__all__ = ["PoolSpec", "SharedCluster", "SharedPolicy", "Tenant", "TenantView",
           "assign_pools"]

#: Cross-app admission hook: (request, pool module, now) -> drop reason.
AdmissionHook = Callable[[Request, Module, float], "DropReason | None"]


@dataclass
class Tenant:
    """One application hosted on a shared cluster.

    ``quota`` caps how many workers of a shared pool this tenant's
    requests may dispatch to: an int applies to every pool the tenant is
    a member of, a ``{pool key: n}`` dict caps per pool.
    """

    name: str
    app: Application
    policy: DropPolicy
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    router: PathRouter | None = None
    batch_plan: dict[str, int] | None = None  # module id -> target batch
    quota: int | dict[str, int] | None = None


@dataclass(frozen=True)
class PoolSpec:
    """One shared worker pool: a model served for one or more tenants."""

    key: str
    model: str
    members: tuple[tuple[str, str], ...]  # (tenant name, module id) pairs


def assign_pools(
    apps: Sequence[tuple[str, Application]],
) -> tuple[dict[str, PoolSpec], dict[tuple[str, str], str]]:
    """Deterministic (tenant, module) -> pool assignment.

    Takes ``(tenant name, application)`` pairs and returns ``(pools by
    key, pool key by (tenant name, module id))``.  Pool order follows
    first use across the tenant list, so the layout is stable for
    fingerprinting and cross-process determinism.
    """
    members: dict[str, list[tuple[str, str]]] = {}
    models: dict[str, str] = {}
    by_member: dict[tuple[str, str], str] = {}
    for tname, app in apps:
        first_use: dict[str, str] = {}  # model -> module id within this app
        for m in app.spec.modules:
            if m.model not in first_use:
                first_use[m.model] = m.id
                key = m.model
            else:
                # A second hop of the same app reusing the model: a request
                # can occupy both hops, so this hop needs its own visit
                # identity (and therefore its own pool key).
                key = f"{m.model}:{m.id}"
            if key in models and models[key] != m.model:  # pragma: no cover
                raise ValueError(
                    f"pool key {key!r} maps to both {models[key]!r} and "
                    f"{m.model!r}"
                )
            models[key] = m.model
            members.setdefault(key, []).append((tname, m.id))
            by_member[(tname, m.id)] = key
    pools = {
        key: PoolSpec(key=key, model=models[key], members=tuple(mem))
        for key, mem in members.items()
    }
    return pools, by_member


class TenantView(RequestFlow):
    """One tenant's routing surface over the shared pools.

    Implements the cluster interface per-tenant policies are bound to:
    ``spec``/``slo``/``registry`` are the tenant's own, ``modules`` maps the
    tenant's module ids onto the *shared* pool modules (so policy state
    like the PARD planner reads aggregate pool load), and the inherited
    :class:`~repro.simulation.cluster.RequestFlow` methods give it the same
    token-flow fork/join semantics as a dedicated cluster: per-tenant token
    counters over the tenant's own DAG, translated back from pool ids via
    :meth:`hop_id`, so a shared pool never mixes two tenants' join demand.
    """

    def __init__(
        self,
        shared: "SharedCluster",
        tenant: Tenant,
        pool_of: dict[str, str],  # tenant module id -> pool key
    ) -> None:
        self.shared = shared
        self.name = tenant.name
        self.sim = shared.sim
        self.app = tenant.app
        self.spec = tenant.app.spec
        self.slo = tenant.app.slo
        self.policy = tenant.policy
        self.registry = shared.registry
        self.metrics = tenant.metrics
        self.rng = shared.rng
        self.router = tenant.router or StaticRouter()
        self.hop_delay = shared.hop_delay
        entries = self.spec.entry_ids
        if len(entries) != 1:
            raise ValueError(
                f"pipeline {self.spec.name!r} must have exactly one entry module"
            )
        self.entry_id = entries[0]
        self.modules = {
            mid: shared.pools[key] for mid, key in pool_of.items()
        }
        self._mid_of_pool = {key: mid for mid, key in pool_of.items()}
        self._init_flow_state()

    def hop_id(self, module: Module) -> str:
        """Translate a shared pool back to this tenant's DAG position."""
        return self._mid_of_pool[module.spec.id]

    def submit(self, request: Request) -> None:
        request.app = self.name
        super().submit(request)


class SharedPolicy(DropPolicy):
    """The admission seam: one data-plane policy, demultiplexed per tenant.

    Pool modules and workers consult a single bound policy; this object
    routes every decision to the policy of the request's owning app.  The
    optional ``admission`` hook runs first on every module entry with the
    shared pool in hand — aggregate queue lengths, input rates and worker
    state across *all* tenants — which is where cross-app drop/fairness
    policies belong.
    """

    name = "shared"

    def __init__(
        self,
        shared: "SharedCluster",
        admission: AdmissionHook | None = None,
    ) -> None:
        super().__init__()
        self.shared = shared
        self.admission = admission

    def _tenant_policy(self, request: Request) -> DropPolicy:
        return self.shared.tenants[request.app].policy

    def make_queue(self, module: Module) -> RequestQueue:
        # Queue discipline is a pool-level property (one queue per worker,
        # shared by every tenant's requests): the pool's first tenant picks.
        return self.shared.queue_owner(module).policy.make_queue(module)

    def on_admit(self, request: Request, module: Module, now: float):
        if self.admission is not None:
            reason = self.admission(request, module, now)
            if reason is not None:
                return reason
        return self._tenant_policy(request).on_admit(request, module, now)

    def should_drop(self, ctx):
        return self._tenant_policy(ctx.request).should_drop(ctx)

    def on_tick(self, now: float) -> None:
        for view in self.shared.views.values():
            view.policy.on_tick(now)


class SharedCluster:
    """A simulated cluster serving several pipeline applications at once.

    The counterpart of :class:`~repro.simulation.cluster.Cluster` for the
    shared setting: worker pools are keyed by model name (see
    :func:`assign_pools`) and hold the aggregate load; per-app state lives
    in the :class:`TenantView` built for each tenant.  Reactive scalers and
    failure injectors operate on ``modules`` (the pools) exactly as they do
    on a dedicated cluster.
    """

    def __init__(
        self,
        sim: Simulator,
        tenants: Sequence[Tenant],
        workers: int | dict[str, int],
        registry: ProfileRegistry | None = None,
        rng: RngStreams | None = None,
        sync_interval: float = 1.0,
        stats_window: float = 5.0,
        hop_delay: float = 0.0,
        admission: AdmissionHook | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("a shared cluster needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        if hop_delay < 0:
            raise ValueError("hop_delay must be >= 0")
        self.sim = sim
        self.registry = registry or DEFAULT_PROFILES
        self.rng = rng or RngStreams(seed=0)
        self.sync_interval = sync_interval
        self.hop_delay = hop_delay
        self.tenants: dict[str, Tenant] = {t.name: t for t in tenants}

        self.pool_specs, self._pool_by_member = assign_pools(
            [(t.name, t.app) for t in tenants]
        )
        # Pool target batch: each tenant plans for its own SLO; a shared
        # pool takes the tightest plan so the most latency-constrained app
        # still fits its budget.
        plans: dict[str, dict[str, int]] = {}
        for tenant in tenants:
            plans[tenant.name] = tenant.batch_plan or plan_batch_sizes(
                tenant.app.spec, self.registry, tenant.app.slo
            )
        self._queue_owners: dict[str, str] = {}
        pool_batch: dict[str, int] = {}
        for key, pool in self.pool_specs.items():
            self._queue_owners[key] = pool.members[0][0]
            pool_batch[key] = min(
                plans[tname][mid] for tname, mid in pool.members
            )

        # The demux policy must exist before the pools: workers pull their
        # queue discipline from it at construction.
        self.policy = SharedPolicy(self, admission=admission)
        self.pools: dict[str, Module] = {}
        for key, pool in self.pool_specs.items():
            if isinstance(workers, dict):
                try:
                    n = workers[key]
                except KeyError:
                    raise ValueError(
                        f"workers must cover every pool; missing {key!r} "
                        f"(pools: {sorted(self.pool_specs)})"
                    ) from None
            else:
                n = workers
            self.pools[key] = Module(
                cluster=self,
                spec=ModuleSpec(id=key, model=pool.model),
                profile=self.registry.get(pool.model),
                target_batch=pool_batch[key],
                n_workers=n,
                stats_window=stats_window,
            )

        # Per-pool worker quotas, installed only where a member tenant
        # declares one (dedicated clusters and quota-free pools keep the
        # None fast path in Module.receive).
        for key, pool in self.pool_specs.items():
            quota_map: dict[str, int] = {}
            for tname, _ in pool.members:
                quota = self.tenants[tname].quota
                if isinstance(quota, dict):
                    if key in quota:
                        quota_map[tname] = quota[key]
                elif quota is not None:
                    quota_map[tname] = quota
            if quota_map:
                self.pools[key]._quota_of = quota_map

        self.views: dict[str, TenantView] = {}
        for tenant in tenants:
            pool_of = {
                mid: self._pool_by_member[(tenant.name, mid)]
                for mid in tenant.app.spec.module_ids
            }
            self.views[tenant.name] = TenantView(self, tenant, pool_of)

        self._tick_started = False
        self._tick_handle = None
        self._periodics: list = []

        self.policy.bind(self)
        for view in self.views.values():
            view.policy.bind(view)
        # Admission (fairness) policies that need cluster state — pool
        # membership, tenant views, aggregate queues — bind last, once the
        # views exist (see repro.policies.fairness.AdmissionPolicy).
        if admission is not None and hasattr(admission, "bind"):
            admission.bind(self)

    # -- cluster interface consumed by modules/workers/scalers -------------

    @property
    def modules(self) -> dict[str, Module]:
        """The shared pools, keyed by pool name.

        Named ``modules`` so scaling engines and failure injectors written
        against :class:`~repro.simulation.cluster.Cluster` operate on a
        shared cluster unchanged — a pool is their unit of capacity.
        """
        return self.pools

    @property
    def slo(self) -> float:
        """Tightest tenant SLO — the pool-level latency yardstick.

        Used only where a single module-level bound is needed (e.g. the
        priority controller's backlog normalisation); per-request decisions
        always use ``request.slo``.
        """
        return min(v.slo for v in self.views.values())

    def queue_owner(self, module: Module) -> Tenant:
        """The tenant whose policy defines ``module``'s queue discipline."""
        return self.tenants[self._queue_owners[module.spec.id]]

    def view(self, name: str) -> TenantView:
        """The routing view of one tenant (KeyError when unknown)."""
        return self.views[name]

    def _view_of(self, request: Request) -> TenantView:
        try:
            return self.views[request.app]
        except KeyError:
            raise ValueError(
                f"request {request.rid} belongs to unknown app "
                f"{request.app!r}; submit through SharedCluster.submit_at"
            ) from None

    def on_module_done(self, request: Request, module: Module) -> None:
        self._view_of(request).on_module_done(request, module)

    def drop(self, request: Request, module_id: str, reason: DropReason) -> None:
        self._view_of(request).drop(request, module_id, reason)

    def hop_id(self, module: Module) -> str:
        """Pool-level identity (per-tenant translation lives on the views)."""
        return module.spec.id

    # -- submission --------------------------------------------------------

    def submit_at(self, tenant: str, t: float, slo: float | None = None) -> Request:
        """Schedule one request for ``tenant`` at simulation time ``t``."""
        view = self.views[tenant]
        request = Request(
            sent_at=t, slo=view.slo if slo is None else slo, app=tenant
        )
        self.sim.schedule(t, view.submit, request)
        return request

    def submit_now(self, tenant: str, t: float,
                   slo: float | None = None) -> Request:
        """Create and inject one request for ``tenant`` arriving at ``t``.

        The streaming-replay entry point (see ``Cluster.submit_now``):
        called from inside a per-tenant arrival-lane event, so requests
        materialize one at a time instead of all before the run.
        """
        view = self.views[tenant]
        request = Request(
            sent_at=t, slo=view.slo if slo is None else slo, app=tenant
        )
        view.submit(request)
        return request

    # -- periodic control plane --------------------------------------------

    def start_ticks(self) -> None:
        """Begin the periodic state-synchronisation loop (idempotent)."""
        if self._tick_started:
            return
        self._tick_started = True
        self._tick_handle = self.sim.schedule_after(self.sync_interval, self._tick)

    def _tick(self) -> None:
        self.policy.on_tick(self.sim.now)
        self._tick_handle = self.sim.schedule_after(self.sync_interval, self._tick)

    def register_periodic(self, controller) -> None:
        """Track a periodic controller (e.g. a scaler) to stop at drain."""
        self._periodics.append(controller)

    def stop_ticks(self) -> None:
        """Cancel periodic ticks so the event queue can drain."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self._tick_started = False
        for controller in self._periodics:
            controller.stop()

    # -- introspection -----------------------------------------------------

    def pool_ids(self) -> list[str]:
        """Pool keys in deterministic first-use order."""
        return list(self.pools)

    def total_queue_length(self) -> int:
        return sum(m.queue_length() for m in self.pools.values())
