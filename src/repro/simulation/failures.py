"""Worker failure injection.

The paper motivates dropping with "unpredictable events such as workload
bursts or machine failure" (§1, §2): a failed machine removes capacity
instantly while replacement capacity pays a cold start.  The injector
schedules worker failures and recoveries on a cluster and re-dispatches
any requests stranded in a failed worker's queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cluster import Cluster
from .request import RequestStatus


@dataclass(frozen=True)
class FailureEvent:
    """One injected failure: a module loses ``workers`` for ``downtime``."""

    time: float
    module_id: str
    workers: int = 1
    downtime: float = 10.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if self.workers < 1:
            raise ValueError("must fail at least one worker")
        if self.downtime <= 0:
            raise ValueError("downtime must be > 0")

    def to_dict(self) -> dict:
        """Plain-data form for scenario files."""
        return {
            "time": self.time,
            "module_id": self.module_id,
            "workers": self.workers,
            "downtime": self.downtime,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureEvent":
        unknown = set(data) - {"time", "module_id", "workers", "downtime"}
        if unknown:
            raise ValueError(f"unknown failure-event keys: {sorted(unknown)}")
        missing = {"time", "module_id"} - set(data)
        if missing:
            raise ValueError(
                f"failure event missing required keys: {sorted(missing)}"
            )
        return cls(
            time=float(data["time"]),
            module_id=str(data["module_id"]),
            workers=int(data.get("workers", 1)),
            downtime=float(data.get("downtime", 10.0)),
        )


@dataclass
class FailureInjector:
    """Applies a schedule of :class:`FailureEvent` to a cluster."""

    cluster: Cluster
    events: list[FailureEvent] = field(default_factory=list)
    log: list[str] = field(default_factory=list)

    def schedule_all(self) -> None:
        """Arm every failure event on the cluster's simulator."""
        for event in self.events:
            self.cluster.sim.schedule(event.time, self._fail, event)

    def _fail(self, event: FailureEvent) -> None:
        module = self.cluster.modules[event.module_id]
        killed = 0
        for _ in range(event.workers):
            if module.n_workers <= 1 and killed == 0 and event.workers >= 1:
                # Allow taking the last worker down: the module is dead
                # until recovery, which is exactly what a machine failure
                # does.  Requests queue at the module dispatcher level.
                pass
            if module.n_workers == 0:
                break
            worker = module.workers.pop()
            killed += 1
            self._strand(worker)
        self.log.append(
            f"t={self.cluster.sim.now:.2f}s fail {event.module_id} "
            f"-{killed} worker(s)"
        )
        self.cluster.sim.schedule_after(
            event.downtime, self._recover, event.module_id, killed
        )

    def _strand(self, worker) -> None:
        """Re-dispatch a failed worker's queued and forming requests."""
        module = worker.module
        stranded = worker.queue.drain(self.cluster.sim.now)
        stranded.extend(worker.forming)
        worker.forming = []
        # In-flight batch work is lost with the machine; those requests
        # are re-dispatched too (their GPU time so far still counts).
        if worker.executing is not None:
            worker.executing.aborted = True  # its completion event is void
            stranded.extend(worker.executing.requests)
            worker.executing = None
        for request in stranded:
            if request.status is not RequestStatus.IN_FLIGHT:
                continue
            visit = request.visits.get(module.spec.id)
            if visit is not None:
                # Reset execution bookkeeping for the retry.
                visit.t_batched = None
                visit.t_exec_start = None
                visit.t_exec_end = None
            if module.workers:
                module.dispatcher.pick(module.workers).enqueue(request)
            else:
                module.park(request)  # total outage: replay on recovery

    def _recover(self, module_id: str, workers: int) -> None:
        module = self.cluster.modules[module_id]
        for _ in range(workers):
            module.add_worker()
        self.log.append(
            f"t={self.cluster.sim.now:.2f}s recover {module_id} "
            f"+{workers} worker(s)"
        )
