"""Fault injection: worker kills, degraded workers, link partitions.

The paper motivates dropping with "unpredictable events such as workload
bursts or machine failure" (§1, §2).  The injector applies a schedule of
typed :class:`FailureEvent`\\ s to a cluster:

* ``kind="kill"`` (the legacy shape): a module instantly loses
  ``workers`` machines for ``downtime``; requests stranded in a dead
  worker's queue/batch are re-dispatched (or parked during a total
  outage and replayed on recovery).
* ``kind="degrade"``: ``workers`` machines of a module run with their
  service time inflated by ``factor`` for ``downtime`` — stragglers,
  not outages.
* ``kind="link"``: the edge ``module_id -> dst`` stops carrying token
  handoffs for ``downtime``.  Handoffs initiated while the link is down
  are parked and replayed on heal, so join accounting sees the token
  late rather than never — a partitioned branch delays its join, it
  does not deadlock it.

Every action is recorded as a structured :class:`FaultRecord`; the
legacy string log is rendered from the records, byte-identical to the
old format for worker kills.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cluster import Cluster
from .request import RequestStatus

FAULT_KINDS = ("kill", "degrade", "link")


@dataclass(frozen=True)
class FailureEvent:
    """One injected fault (see the module docstring for the kinds).

    Serialization is kind-aware: a legacy worker kill emits exactly the
    historical ``{time, module_id, workers, downtime}`` dict, so every
    pre-existing scenario keeps its serialized form — and therefore its
    cache fingerprint.  New kinds add ``kind`` (plus ``dst``/``factor``)
    on top.
    """

    time: float
    module_id: str
    workers: int = 1
    downtime: float = 10.0
    kind: str = "kill"
    dst: str | None = None  # link faults: the edge module_id -> dst
    factor: float = 2.0  # degrade faults: service-time multiplier

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if self.workers < 1:
            raise ValueError("must fail at least one worker")
        if self.downtime <= 0:
            raise ValueError("downtime must be > 0")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.kind == "link":
            if self.dst is None:
                raise ValueError("a link fault needs a dst module")
        elif self.dst is not None:
            raise ValueError(f"dst only applies to link faults, not {self.kind!r}")
        if self.kind == "degrade" and self.factor <= 1.0:
            raise ValueError("degrade factor must be > 1.0")

    def to_dict(self) -> dict:
        """Plain-data form for scenario files (legacy-stable for kills)."""
        out = {
            "time": self.time,
            "module_id": self.module_id,
            "workers": self.workers,
            "downtime": self.downtime,
        }
        if self.kind != "kill":
            out["kind"] = self.kind
        if self.dst is not None:
            out["dst"] = self.dst
        if self.kind == "degrade":
            out["factor"] = self.factor
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FailureEvent":
        unknown = set(data) - {
            "time", "module_id", "workers", "downtime", "kind", "dst", "factor",
        }
        if unknown:
            raise ValueError(f"unknown failure-event keys: {sorted(unknown)}")
        missing = {"time", "module_id"} - set(data)
        if missing:
            raise ValueError(
                f"failure event missing required keys: {sorted(missing)}"
            )
        return cls(
            time=float(data["time"]),
            module_id=str(data["module_id"]),
            workers=int(data.get("workers", 1)),
            downtime=float(data.get("downtime", 10.0)),
            kind=str(data.get("kind", "kill")),
            dst=None if data.get("dst") is None else str(data["dst"]),
            factor=float(data.get("factor", 2.0)),
        )


@dataclass(frozen=True)
class FaultRecord:
    """One structured entry of the injector's fault timeline."""

    time: float
    kind: str  # "fail" | "recover" | "degrade" | "restore" | "cut" | "heal"
    target: str  # module id, or "src->dst" for link faults
    count: int  # workers affected / handoffs replayed
    factor: float | None = None  # degrade only

    def render(self) -> str:
        """The human-readable log line (legacy format for kills)."""
        if self.kind == "fail":
            return f"t={self.time:.2f}s fail {self.target} -{self.count} worker(s)"
        if self.kind == "recover":
            return (
                f"t={self.time:.2f}s recover {self.target} "
                f"+{self.count} worker(s)"
            )
        if self.kind == "degrade":
            return (
                f"t={self.time:.2f}s degrade {self.target} "
                f"x{self.factor:g} {self.count} worker(s)"
            )
        if self.kind == "restore":
            return (
                f"t={self.time:.2f}s restore {self.target} "
                f"{self.count} worker(s)"
            )
        if self.kind == "cut":
            return f"t={self.time:.2f}s cut {self.target}"
        return f"t={self.time:.2f}s heal {self.target} +{self.count} handoff(s)"

    def to_dict(self) -> dict:
        out = {
            "time": self.time,
            "kind": self.kind,
            "target": self.target,
            "count": self.count,
        }
        if self.factor is not None:
            out["factor"] = self.factor
        return out


@dataclass
class FailureInjector:
    """Applies a schedule of :class:`FailureEvent` to a cluster."""

    cluster: Cluster
    events: list[FailureEvent] = field(default_factory=list)
    records: list[FaultRecord] = field(default_factory=list)

    @property
    def log(self) -> list[str]:
        """The fault timeline rendered to the legacy string format."""
        return [r.render() for r in self.records]

    def schedule_all(self) -> None:
        """Arm every fault event on the cluster's simulator."""
        for event in self.events:
            self.cluster.sim.schedule(event.time, self._fire, event)

    def _fire(self, event: FailureEvent) -> None:
        if event.kind == "kill":
            self._fail(event)
        elif event.kind == "degrade":
            self._degrade(event)
        else:
            self._cut(event)

    def _record(
        self, kind: str, target: str, count: int, factor: float | None = None
    ) -> None:
        self.records.append(
            FaultRecord(
                time=self.cluster.sim.now, kind=kind, target=target,
                count=count, factor=factor,
            )
        )

    # -- worker kills --------------------------------------------------------

    def _fail(self, event: FailureEvent) -> None:
        module = self.cluster.modules[event.module_id]
        killed = 0
        for _ in range(event.workers):
            if module.n_workers == 0:
                break
            # Taking the last worker down is allowed: the module is dead
            # until recovery, which is exactly what a machine failure
            # does.  Requests arriving meanwhile park at the module.
            worker = module.workers.pop()
            killed += 1
            self._strand(worker)
        self._record("fail", event.module_id, killed)
        self.cluster.sim.schedule_after(
            event.downtime, self._recover, event.module_id, killed
        )

    def _strand(self, worker) -> None:
        """Re-dispatch a failed worker's queued and forming requests."""
        module = worker.module
        stranded = worker.queue.drain(self.cluster.sim.now)
        if module._resilience is not None:
            # Resilient hops dispatch duplicates (retries/hedges) whose
            # losers linger in queues already claimed elsewhere
            # (t_batched set).  Re-dispatching one would re-execute a hop
            # that already completed, so only unclaimed entries strand.
            mid = module.spec.id
            stranded = [
                r for r in stranded
                if (v := r.visits.get(mid)) is None or v.t_batched is None
            ]
        stranded.extend(worker.forming)
        worker.forming = []
        # In-flight batch work is lost with the machine; those requests
        # are re-dispatched too (their GPU time so far still counts).
        if worker.executing is not None:
            worker.executing.aborted = True  # its completion event is void
            stranded.extend(worker.executing.requests)
            worker.executing = None
        for request in stranded:
            if request.status is not RequestStatus.IN_FLIGHT:
                continue
            visit = request.visits.get(module.spec.id)
            if visit is not None:
                # Reset execution bookkeeping for the retry.
                visit.t_batched = None
                visit.t_exec_start = None
                visit.t_exec_end = None
            if module.workers:
                module.dispatcher.pick(module.workers).enqueue(request)
            else:
                module.park(request)  # total outage: replay on recovery

    def _recover(self, module_id: str, workers: int) -> None:
        module = self.cluster.modules[module_id]
        for _ in range(workers):
            module.add_worker()
        self._record("recover", module_id, workers)

    # -- degraded workers (stragglers) ---------------------------------------

    def _degrade(self, event: FailureEvent) -> None:
        module = self.cluster.modules[event.module_id]
        victims = module.workers[: event.workers]
        for worker in victims:
            worker.degrade_factor = event.factor
        self._record(
            "degrade", event.module_id, len(victims), factor=event.factor
        )
        self.cluster.sim.schedule_after(
            event.downtime, self._restore, event.module_id, victims,
            event.factor,
        )

    def _restore(self, module_id: str, victims: list, factor: float) -> None:
        restored = 0
        for worker in victims:
            # A victim may have been killed meanwhile, or re-degraded by
            # an overlapping event (then the later restore owns it).
            if worker.degrade_factor == factor:
                worker.degrade_factor = 1.0
                restored += 1
        self._record("restore", module_id, restored)

    # -- link partitions -----------------------------------------------------

    def _cut(self, event: FailureEvent) -> None:
        flow = self.cluster
        key = (event.module_id, event.dst)
        if flow._severed is None:
            flow._severed = {}
        flow._severed.setdefault(key, [])
        self._cut_depth[key] = self._cut_depth.get(key, 0) + 1
        self._record("cut", f"{event.module_id}->{event.dst}", 0)
        self.cluster.sim.schedule_after(event.downtime, self._heal, key)

    def _heal(self, key: tuple[str, str]) -> None:
        flow = self.cluster
        depth = self._cut_depth.get(key, 0) - 1
        if depth > 0:
            # An overlapping cut of the same edge is still active; the
            # last heal replays everything.
            self._cut_depth[key] = depth
            self._record("heal", f"{key[0]}->{key[1]}", 0)
            return
        self._cut_depth.pop(key, None)
        parked = flow._severed.pop(key, []) if flow._severed else []
        if not flow._severed:
            flow._severed = None  # restore the zero-overhead fast path
        replayed = 0
        for request in parked:
            if request.status is not RequestStatus.IN_FLIGHT:
                # The request terminated while partitioned (e.g. a
                # sibling branch dropped it); its token state is already
                # reclaimed, so the parked token simply evaporates.
                continue
            replayed += 1
            flow._deliver(request, key[1])
        self._record("heal", f"{key[0]}->{key[1]}", replayed)

    def __post_init__(self) -> None:
        # Nesting depth per severed edge, for overlapping link faults.
        self._cut_depth: dict[tuple[str, str], int] = {}
