"""Worker: one GPU serving one module's model with dynamic batching.

The batching mechanics follow Figure 3b of the paper: a worker collects the
next batch *while* the previous batch executes (never letting the GPU idle),
so a request drawn into the forming batch at ``t_b`` waits ``W = t_e - t_b``
until the expected start ``t_e`` (= the end of the executing batch).  The
drop decision for each request is made exactly once, at ``t_b``, via the
bound policy — at that moment all bi-directional runtime information is
available (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..simulation.request import Request, RequestStatus
from ..interfaces import DropContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .module import Module


@dataclass(slots=True)
class Batch:
    """A batch executing on the GPU."""

    requests: list[Request]
    start: float
    end: float
    aborted: bool = False  # set when the worker dies mid-execution

    @property
    def size(self) -> int:
        return len(self.requests)


@dataclass(slots=True)
class WorkerTelemetry:
    """Counters exposed for tests and overhead analysis."""

    batches: int = 0
    executed_requests: int = 0
    dropped_requests: int = 0
    skipped_cancelled: int = 0
    busy_time: float = 0.0


class Worker:
    """One GPU container executing batches for a single module."""

    __slots__ = (
        "module", "worker_id", "sim", "queue", "forming", "executing",
        "_draining", "telemetry", "_ctx", "degrade_factor",
    )

    def __init__(self, module: "Module", worker_id: int) -> None:
        self.module = module
        self.worker_id = worker_id
        self.sim = module.sim
        self.queue = module.policy.make_queue(module)
        self.forming: list[Request] = []
        self.executing: Batch | None = None
        self._draining = False
        # Straggler injection (FailureEvent kind="degrade"): batches run
        # this many times slower while the fault is active.  1.0 — the
        # permanent value on healthy clusters — is branch-free cheap.
        self.degrade_factor = 1.0
        self.telemetry = WorkerTelemetry()
        # Reusable drop context: rewritten per drawn request in _draw so
        # the hot loop does not allocate one per decision (policies read
        # it synchronously; see the DropContext docstring).
        self._ctx = DropContext(
            request=None,  # type: ignore[arg-type] - set before every use
            module=module,
            worker=self,
            now=0.0,
            expected_start=0.0,
            batch_duration=0.0,
            slo=0.0,
        )

    @property
    def draining(self) -> bool:
        return self._draining

    @draining.setter
    def draining(self, value: bool) -> None:
        # Route through the module's draining flag so its dispatch fast
        # path (no candidate filtering while nothing drains) stays valid
        # no matter who marks the worker.
        self._draining = value
        if value:
            self.module._maybe_draining = True

    # -- introspection ------------------------------------------------------

    @property
    def load(self) -> int:
        """Outstanding work (used by the least-loaded dispatcher)."""
        executing = self.executing
        n = len(self.queue) + len(self.forming)
        if executing is None:
            return n
        return n + len(executing.requests)

    @property
    def idle(self) -> bool:
        return (
            self.executing is None
            and not self.forming
            and len(self.queue) == 0
        )

    @property
    def expected_start(self) -> float:
        """t_e: when the batch currently being formed will start executing."""
        return self.executing.end if self.executing else self.sim.now

    # -- request flow -------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Accept a dispatched request and try to advance batching."""
        self.queue.push(request, self.sim.now)
        self._draw()

    def _draw(self) -> None:
        """Pull requests from the queue into the forming batch.

        Each drawn request gets its drop decision here (t_b), with the
        expected batch start t_e known.  Respects the module's target batch
        size as the forming capacity.
        """
        now = self.sim.now
        module = self.module
        target = module.target_batch
        # Hot loop: every request drawn toward a batch passes through here
        # once, so the per-iteration lookups are bound outside the loop.
        queue_pop = self.queue.pop
        forming = self.forming
        should_drop = module.policy.should_drop
        stats = module.stats
        record_queue_delay = stats.queue_delays.record
        record_batch_wait = stats.batch_waits.record
        module_id = module.spec.id
        in_flight = RequestStatus.IN_FLIGHT
        ctx = self._ctx
        ctx.now = now
        # Resilient hops dispatch duplicate entries (retries/hedges); the
        # first worker to draw one claims the hop via t_batched and every
        # other copy is a tombstone to skip.  Hoisted: modules without a
        # resilience config never pay the per-request visit lookup.
        resilient = module._resilience is not None
        while len(forming) < target:
            request = queue_pop(now)
            if request is None:
                break
            if request.status is not in_flight:
                # A sibling DAG branch already dropped this request; skip it
                # without spending GPU time (its earlier work is already
                # accounted as invalid).
                self.telemetry.skipped_cancelled += 1
                continue
            if resilient and request.visits[module_id].t_batched is not None:
                # A duplicate dispatch lost the race: another worker (or a
                # fallback) already claimed this hop.
                self.telemetry.skipped_cancelled += 1
                continue
            executing = self.executing
            t_e = executing.end if executing is not None else now
            ctx.request = request
            ctx.expected_start = t_e
            ctx.batch_duration = module.effective_duration(now)
            # The request's own objective, not the cluster's: in a shared
            # (multi-tenant) cluster requests from different apps carry
            # different SLOs through the same pool.
            ctx.slo = request.slo
            reason = should_drop(ctx)
            visit = request.visits[module_id]
            visit.t_batched = now
            visit.worker_id = self.worker_id
            record_queue_delay(now, now - visit.t_received)
            if reason is not None:
                self.telemetry.dropped_requests += 1
                stats.record_drop()
                module.cluster.drop(request, module_id, reason)
                continue
            record_batch_wait(now, t_e - now if t_e > now else 0.0)
            forming.append(request)
        if self.executing is None and forming:
            self._start_batch()

    def _start_batch(self) -> None:
        """Begin executing the forming batch on the GPU."""
        now = self.sim.now
        requests = self.forming
        self.forming = []
        size = len(requests)
        duration = self.module.profile.duration(size)
        if self.degrade_factor != 1.0:
            duration *= self.degrade_factor  # straggler fault active
        share = duration / size
        module_id = self.module.spec.id
        end = now + duration
        for r in requests:
            v = r.visits[module_id]
            v.t_exec_start = now
            v.t_exec_end = end
            v.batch_size = size
            v.gpu_time = share
        batch = Batch(requests=requests, start=now, end=end)
        self.executing = batch
        self.telemetry.batches += 1
        self.telemetry.executed_requests += size
        self.telemetry.busy_time += duration
        self.module.stats.record_batch(now, size)
        self.sim.schedule(batch.end, self._finish_batch, batch)
        # Immediately begin forming the next batch (Figure 3b: collection
        # starts right after the previous batch begins execution).
        self._draw()

    def _finish_batch(self, batch: Batch) -> None:
        """Batch execution completed: forward requests, start next batch."""
        if batch.aborted:
            return  # the worker died mid-execution (failure injection)
        self.executing = None
        for request in batch.requests:
            self.module.cluster.on_module_done(request, self.module)
        if self.forming:
            self._start_batch()
        else:
            self._draw()
        if self.draining and self.idle:
            self.module.reap(self)
