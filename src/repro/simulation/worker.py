"""Worker: one GPU serving one module's model with dynamic batching.

The batching mechanics follow Figure 3b of the paper: a worker collects the
next batch *while* the previous batch executes (never letting the GPU idle),
so a request drawn into the forming batch at ``t_b`` waits ``W = t_e - t_b``
until the expected start ``t_e`` (= the end of the executing batch).  The
drop decision for each request is made exactly once, at ``t_b``, via the
bound policy — at that moment all bi-directional runtime information is
available (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..simulation.request import Request, RequestStatus
from ..interfaces import DropContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .module import Module


@dataclass
class Batch:
    """A batch executing on the GPU."""

    requests: list[Request]
    start: float
    end: float
    aborted: bool = False  # set when the worker dies mid-execution

    @property
    def size(self) -> int:
        return len(self.requests)


@dataclass
class WorkerTelemetry:
    """Counters exposed for tests and overhead analysis."""

    batches: int = 0
    executed_requests: int = 0
    dropped_requests: int = 0
    skipped_cancelled: int = 0
    busy_time: float = 0.0


class Worker:
    """One GPU container executing batches for a single module."""

    def __init__(self, module: "Module", worker_id: int) -> None:
        self.module = module
        self.worker_id = worker_id
        self.sim = module.sim
        self.queue = module.policy.make_queue(module)
        self.forming: list[Request] = []
        self.executing: Batch | None = None
        self.draining = False
        self.telemetry = WorkerTelemetry()

    # -- introspection ------------------------------------------------------

    @property
    def load(self) -> int:
        """Outstanding work (used by the least-loaded dispatcher)."""
        exec_count = self.executing.size if self.executing else 0
        return len(self.queue) + len(self.forming) + exec_count

    @property
    def idle(self) -> bool:
        return (
            self.executing is None
            and not self.forming
            and len(self.queue) == 0
        )

    @property
    def expected_start(self) -> float:
        """t_e: when the batch currently being formed will start executing."""
        return self.executing.end if self.executing else self.sim.now

    # -- request flow -------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Accept a dispatched request and try to advance batching."""
        self.queue.push(request, self.sim.now)
        self._draw()

    def _draw(self) -> None:
        """Pull requests from the queue into the forming batch.

        Each drawn request gets its drop decision here (t_b), with the
        expected batch start t_e known.  Respects the module's target batch
        size as the forming capacity.
        """
        now = self.sim.now
        module = self.module
        target = module.target_batch
        while len(self.forming) < target:
            request = self.queue.pop(now)
            if request is None:
                break
            if request.status is not RequestStatus.IN_FLIGHT:
                # A sibling DAG branch already dropped this request; skip it
                # without spending GPU time (its earlier work is already
                # accounted as invalid).
                self.telemetry.skipped_cancelled += 1
                continue
            t_e = self.expected_start
            ctx = DropContext(
                request=request,
                module=module,
                worker=self,
                now=now,
                expected_start=t_e,
                batch_duration=module.effective_duration(now),
                # The request's own objective, not the cluster's: in a
                # shared (multi-tenant) cluster requests from different
                # apps carry different SLOs through the same pool.
                slo=request.slo,
            )
            reason = module.policy.should_drop(ctx)
            visit = request.visit(module.spec.id)
            visit.t_batched = now
            visit.worker_id = self.worker_id
            module.stats.record_queue_delay(now, now - visit.t_received)
            if reason is not None:
                self.telemetry.dropped_requests += 1
                module.stats.record_drop()
                module.cluster.drop(request, module.spec.id, reason)
                continue
            module.stats.record_batch_wait(now, max(0.0, t_e - now))
            self.forming.append(request)
        if self.executing is None and self.forming:
            self._start_batch()

    def _start_batch(self) -> None:
        """Begin executing the forming batch on the GPU."""
        now = self.sim.now
        requests = self.forming
        self.forming = []
        size = len(requests)
        duration = self.module.profile.duration(size)
        share = duration / size
        for r in requests:
            v = r.visit(self.module.spec.id)
            v.t_exec_start = now
            v.t_exec_end = now + duration
            v.batch_size = size
            v.gpu_time = share
        batch = Batch(requests=requests, start=now, end=now + duration)
        self.executing = batch
        self.telemetry.batches += 1
        self.telemetry.executed_requests += size
        self.telemetry.busy_time += duration
        self.module.stats.record_batch(now, size)
        self.sim.schedule(batch.end, self._finish_batch, batch)
        # Immediately begin forming the next batch (Figure 3b: collection
        # starts right after the previous batch begins execution).
        self._draw()

    def _finish_batch(self, batch: Batch) -> None:
        """Batch execution completed: forward requests, start next batch."""
        if batch.aborted:
            return  # the worker died mid-execution (failure injection)
        self.executing = None
        for request in batch.requests:
            self.module.cluster.on_module_done(request, self.module)
        if self.forming:
            self._start_batch()
        else:
            self._draw()
        if self.draining and self.idle:
            self.module.reap(self)
