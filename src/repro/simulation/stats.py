"""Sliding-window runtime statistics.

Each module's controller monitors queueing delay, arrival rate and batch
sizes over a sliding window (the paper's default: a 5-second linearly
weighted window) and exposes them to the State Planner and to the adaptive
priority mechanism.
"""

from __future__ import annotations

from collections import deque


class WindowedSamples:
    """Timestamped samples with linear-decay weighted averaging.

    A sample of age ``a`` within window ``w`` gets weight ``1 - a / w``;
    samples older than the window are evicted.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        self.window = window
        self._samples: deque[tuple[float, float]] = deque()

    def record(self, t: float, value: float) -> None:
        self._samples.append((t, value))

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        dq = self._samples
        while dq and dq[0][0] < cutoff:
            dq.popleft()

    def weighted_average(self, now: float, default: float = 0.0) -> float:
        """Linearly weighted average of samples within the window."""
        self._evict(now)
        num = 0.0
        den = 0.0
        for t, v in self._samples:
            wgt = 1.0 - (now - t) / self.window
            if wgt <= 0.0:
                continue
            num += wgt * v
            den += wgt
        return num / den if den > 0 else default

    def mean(self, now: float, default: float = 0.0) -> float:
        """Unweighted mean of samples within the window."""
        self._evict(now)
        if not self._samples:
            return default
        return sum(v for _, v in self._samples) / len(self._samples)

    def values(self, now: float) -> list[float]:
        """Samples currently inside the window (oldest first)."""
        self._evict(now)
        return [v for _, v in self._samples]

    def __len__(self) -> int:
        return len(self._samples)


class RateMeter:
    """Event-rate estimator over a sliding window of event timestamps."""

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        self.window = window
        self._events: deque[float] = deque()
        self.total = 0

    def record(self, t: float) -> None:
        self._events.append(t)
        self.total += 1

    def rate(self, now: float) -> float:
        """Events per second over the trailing window."""
        cutoff = now - self.window
        dq = self._events
        while dq and dq[0] < cutoff:
            dq.popleft()
        span = min(self.window, now) if now > 0 else self.window
        if span <= 0:
            return 0.0
        return len(dq) / span


class ModuleStats:
    """Runtime state of one module, as monitored by its controller."""

    def __init__(self, window: float = 5.0) -> None:
        self.window = window
        self.queue_delays = WindowedSamples(window)
        self.batch_waits = WindowedSamples(window)
        self.batch_sizes = WindowedSamples(window)
        self.arrivals = RateMeter(window)
        self.drops = 0
        self.executed = 0

    def record_arrival(self, t: float) -> None:
        self.arrivals.record(t)

    def record_queue_delay(self, t: float, delay: float) -> None:
        self.queue_delays.record(t, delay)

    def record_batch_wait(self, t: float, wait: float) -> None:
        self.batch_waits.record(t, wait)

    def record_batch(self, t: float, size: int) -> None:
        self.batch_sizes.record(t, float(size))
        self.executed += size

    def record_drop(self) -> None:
        self.drops += 1

    def avg_queue_delay(self, now: float) -> float:
        """Recent average queueing delay q_k (linearly weighted)."""
        return self.queue_delays.weighted_average(now, default=0.0)

    def input_rate(self, now: float) -> float:
        """T_in: measured input workload (requests/second)."""
        return self.arrivals.rate(now)

    def avg_batch_size(self, now: float, default: float) -> float:
        """Recently observed average executed batch size."""
        return self.batch_sizes.weighted_average(now, default=default)

    def recent_batch_waits(self, now: float) -> list[float]:
        """Observed batch-wait samples inside the window (for the PDF)."""
        return self.batch_waits.values(now)
