"""Sliding-window runtime statistics.

Each module's controller monitors queueing delay, arrival rate and batch
sizes over a sliding window (the paper's default: a 5-second linearly
weighted window) and exposes them to the State Planner and to the adaptive
priority mechanism.

Aggregates are O(1) amortized: :class:`WindowedSamples` maintains running
sums (count, value, timestamp and timestamp*value) updated on record and
evict, so the linear-decay weighted average is evaluated algebraically —

    weight(t) = 1 - (now - t) / w = (1 - now / w) + t / w

    sum weight_i * v_i = (1 - now / w) * sum(v) + sum(t * v) / w
    sum weight_i       = (1 - now / w) * n      + sum(t)     / w

— instead of re-looping over every sample on each ``effective_batch`` /
``load_factor`` / policy query, which made decision cost grow linearly
with the arrival rate.  Running float sums drift as samples are added and
subtracted, so the sums are rebuilt exactly from the retained samples
every O(len) mutations (amortized O(1)).
"""

from __future__ import annotations

from collections import deque


class WindowedSamples:
    """Timestamped samples with linear-decay weighted averaging.

    A sample of age ``a`` within window ``w`` gets weight ``1 - a / w``;
    samples older than the window are evicted.
    """

    __slots__ = (
        "window", "_inv_window", "_samples",
        "_sum_v", "_sum_t", "_sum_tv", "_mutations",
    )

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        self.window = window
        self._inv_window = 1.0 / window
        self._samples: deque[tuple[float, float]] = deque()
        self._sum_v = 0.0  # sum of values
        self._sum_t = 0.0  # sum of timestamps
        self._sum_tv = 0.0  # sum of timestamp * value
        self._mutations = 0  # adds/evicts since the last exact rebuild

    def record(self, t: float, value: float) -> None:
        self._samples.append((t, value))
        self._sum_v += value
        self._sum_t += t
        self._sum_tv += t * value
        self._mutations += 1

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        dq = self._samples
        if not dq or dq[0][0] >= cutoff:
            return
        popleft = dq.popleft
        while dq and dq[0][0] < cutoff:
            t, v = popleft()
            self._sum_v -= v
            self._sum_t -= t
            self._sum_tv -= t * v
            self._mutations += 1
        if not dq:
            self._sum_v = self._sum_t = self._sum_tv = 0.0
            self._mutations = 0
        elif self._mutations > (len(dq) << 2) + 64:
            self._rebuild()

    def _rebuild(self) -> None:
        """Recompute the running sums exactly from the retained samples.

        Bounds the numerical drift of incremental add/subtract: triggered
        every O(len) mutations, so the O(len) pass amortizes to O(1).
        """
        sum_v = sum_t = sum_tv = 0.0
        for t, v in self._samples:
            sum_v += v
            sum_t += t
            sum_tv += t * v
        self._sum_v, self._sum_t, self._sum_tv = sum_v, sum_t, sum_tv
        self._mutations = 0

    def weighted_average(self, now: float, default: float = 0.0) -> float:
        """Linearly weighted average of samples within the window (O(1))."""
        self._evict(now)
        n = len(self._samples)
        if n == 0:
            return default
        base = 1.0 - now * self._inv_window
        num = base * self._sum_v + self._sum_tv * self._inv_window
        den = base * n + self._sum_t * self._inv_window
        # ``den`` is a sum of weights in [0, 1]; it only fails to be
        # positive when every retained sample sits exactly on the window
        # edge (weight 0) — same guard as the explicit loop had.
        if den <= 1e-12:
            return default
        return num / den

    def mean(self, now: float, default: float = 0.0) -> float:
        """Unweighted mean of samples within the window (O(1))."""
        self._evict(now)
        n = len(self._samples)
        if n == 0:
            return default
        return self._sum_v / n

    def values(self, now: float) -> list[float]:
        """Samples currently inside the window (oldest first)."""
        self._evict(now)
        return [v for _, v in self._samples]

    def __len__(self) -> int:
        return len(self._samples)


class RateMeter:
    """Event-rate estimator over a sliding window of event timestamps."""

    __slots__ = ("window", "_events", "total", "_cached_now", "_cached_rate")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        self.window = window
        self._events: deque[float] = deque()
        self.total = 0
        # Policies query the rate repeatedly at one simulation instant
        # (every admission at time t); cache by ``now``, invalidated on
        # record, so repeat queries skip even the eviction walk.
        self._cached_now = float("nan")
        self._cached_rate = 0.0

    def record(self, t: float) -> None:
        self._events.append(t)
        self.total += 1
        self._cached_now = float("nan")

    def rate(self, now: float) -> float:
        """Events per second over the trailing window (O(1) amortized)."""
        if now == self._cached_now:
            return self._cached_rate
        cutoff = now - self.window
        dq = self._events
        while dq and dq[0] < cutoff:
            dq.popleft()
        span = min(self.window, now) if now > 0 else self.window
        rate = len(dq) / span if span > 0 else 0.0
        self._cached_now = now
        self._cached_rate = rate
        return rate


class ModuleStats:
    """Runtime state of one module, as monitored by its controller."""

    __slots__ = (
        "window", "queue_delays", "batch_waits", "batch_sizes",
        "arrivals", "drops", "executed",
    )

    def __init__(self, window: float = 5.0) -> None:
        self.window = window
        self.queue_delays = WindowedSamples(window)
        self.batch_waits = WindowedSamples(window)
        self.batch_sizes = WindowedSamples(window)
        self.arrivals = RateMeter(window)
        self.drops = 0
        self.executed = 0

    def record_arrival(self, t: float) -> None:
        self.arrivals.record(t)

    def record_queue_delay(self, t: float, delay: float) -> None:
        self.queue_delays.record(t, delay)

    def record_batch_wait(self, t: float, wait: float) -> None:
        self.batch_waits.record(t, wait)

    def record_batch(self, t: float, size: int) -> None:
        self.batch_sizes.record(t, float(size))
        self.executed += size

    def record_drop(self) -> None:
        self.drops += 1

    def avg_queue_delay(self, now: float) -> float:
        """Recent average queueing delay q_k (linearly weighted)."""
        return self.queue_delays.weighted_average(now, default=0.0)

    def input_rate(self, now: float) -> float:
        """T_in: measured input workload (requests/second)."""
        return self.arrivals.rate(now)

    def avg_batch_size(self, now: float, default: float) -> float:
        """Recently observed average executed batch size."""
        return self.batch_sizes.weighted_average(now, default=default)

    def recent_batch_waits(self, now: float) -> list[float]:
        """Observed batch-wait samples inside the window (for the PDF)."""
        return self.batch_waits.values(now)
