"""Request dispatch among a module's workers."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .worker import Worker


class Dispatcher(abc.ABC):
    """Chooses which worker receives the next request."""

    @abc.abstractmethod
    def pick(self, workers: list["Worker"]) -> "Worker":
        """Select a worker from a non-empty list of candidates."""


class LeastLoadedDispatcher(Dispatcher):
    """Send each request to the worker with the fewest outstanding requests.

    Ties break on worker id, which keeps runs deterministic.
    """

    def pick(self, workers: list["Worker"]) -> "Worker":
        if not workers:
            raise ValueError("no workers available to dispatch to")
        # Manual scan: equivalent to min(key=(load, worker_id)) without
        # allocating a key tuple per worker on the dispatch hot path.
        best = workers[0]
        best_load = best.load
        for i in range(1, len(workers)):
            w = workers[i]
            load = w.load
            if load < best_load or (
                load == best_load and w.worker_id < best.worker_id
            ):
                best = w
                best_load = load
        return best


class RoundRobinDispatcher(Dispatcher):
    """Cycle through workers in id order."""

    def __init__(self) -> None:
        self._next = 0

    def pick(self, workers: list["Worker"]) -> "Worker":
        if not workers:
            raise ValueError("no workers available to dispatch to")
        ordered = sorted(workers, key=lambda w: w.worker_id)
        worker = ordered[self._next % len(ordered)]
        self._next += 1
        return worker
