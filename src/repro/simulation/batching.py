"""Dynamic batching plan.

Following Nexus-style batching (which the paper adopts, §5.1), each module
gets a *target* batch size derived from offline profiles: the end-to-end SLO
is split across modules proportionally to their single-request durations,
and the largest batch whose execution fits a fraction of that share is
chosen — leaving the remaining fraction as headroom for queueing and batch
wait.  Workers then batch *up to* the target; under light load batches are
smaller because the GPU never idles waiting for work.
"""

from __future__ import annotations

import math

from ..pipeline.profiles import ModelProfile, ProfileRegistry
from ..pipeline.spec import PipelineSpec


def slo_split(
    spec: PipelineSpec, registry: ProfileRegistry, slo: float
) -> dict[str, float]:
    """Split ``slo`` across modules proportionally to ``duration(1)``.

    This is the split Clipper++ uses (``SLO_k = SLO * d_k / sum d_i``) and
    the base for planning target batch sizes.
    """
    d1 = {m.id: registry.get(m.model).duration(1) for m in spec.modules}
    total = sum(d1.values())
    return {mid: slo * d / total for mid, d in d1.items()}


def plan_batch_sizes(
    spec: PipelineSpec,
    registry: ProfileRegistry,
    slo: float,
    execution_fraction: float = 0.5,
) -> dict[str, int]:
    """Target batch size per module.

    ``execution_fraction`` is the share of each module's SLO split spent on
    execution; the rest is headroom for queueing delay and batch wait.  A
    module whose single-request duration already exceeds its budget gets
    batch size 1 (it will simply violate SLOs under load — exactly the
    regime where dropping policies matter).
    """
    if not 0 < execution_fraction <= 1:
        raise ValueError("execution_fraction must be in (0, 1]")
    shares = slo_split(spec, registry, slo)
    plan: dict[str, int] = {}
    for m in spec.modules:
        profile = registry.get(m.model)
        budget = shares[m.id] * execution_fraction
        plan[m.id] = max(1, profile.feasible_batch(budget))
    return plan


def module_throughput(profile: ModelProfile, batch_size: int, workers: int) -> float:
    """Aggregate requests/second for ``workers`` workers at ``batch_size``."""
    if workers < 0:
        raise ValueError("workers must be >= 0")
    return workers * profile.throughput(batch_size)


def provision_workers(
    spec: PipelineSpec,
    registry: ProfileRegistry,
    batch_plan: dict[str, int],
    rate: float,
    headroom: float = 1.0,
) -> dict[str, int]:
    """Workers per module needed to sustain ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    out: dict[str, int] = {}
    for m in spec.modules:
        profile = registry.get(m.model)
        per_worker = profile.throughput(batch_plan[m.id])
        need = rate * headroom / per_worker
        out[m.id] = max(1, math.ceil(need))
    return out
