"""Discrete-event serving-cluster substrate (replaces the paper's testbed)."""

from .batching import plan_batch_sizes, provision_workers, slo_split
from .cluster import Cluster
from .dispatcher import LeastLoadedDispatcher, RoundRobinDispatcher
from .engine import EventHandle, Simulator
from .failures import FailureEvent, FailureInjector
from .module import Module
from .request import DropReason, ModuleVisit, Request, RequestStatus
from .rng import RngStreams
from .routing import (
    PathRouter,
    ProbabilisticRouter,
    ResultDependentRouter,
    StaticRouter,
)
from .scaling import ReactiveScaler, ScalingEvent
from .stats import ModuleStats, RateMeter, WindowedSamples
from .tenancy import (
    PoolSpec,
    SharedCluster,
    SharedPolicy,
    Tenant,
    TenantView,
    assign_pools,
)
from .worker import Batch, Worker

__all__ = [
    "Batch",
    "Cluster",
    "DropReason",
    "EventHandle",
    "FailureEvent",
    "FailureInjector",
    "LeastLoadedDispatcher",
    "Module",
    "PathRouter",
    "PoolSpec",
    "ProbabilisticRouter",
    "ResultDependentRouter",
    "SharedCluster",
    "SharedPolicy",
    "StaticRouter",
    "Tenant",
    "TenantView",
    "ModuleStats",
    "ModuleVisit",
    "RateMeter",
    "ReactiveScaler",
    "Request",
    "RequestStatus",
    "RngStreams",
    "RoundRobinDispatcher",
    "ScalingEvent",
    "Simulator",
    "WindowedSamples",
    "Worker",
    "assign_pools",
    "plan_batch_sizes",
    "provision_workers",
    "slo_split",
]
