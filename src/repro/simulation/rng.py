"""Seeded, named random-number streams.

Each consumer (trace generation, dispatch jitter, batch-wait sampling, the
RAG latency models, ...) pulls an independent ``numpy`` generator keyed by a
stable name, so adding a new consumer never perturbs the draws seen by the
others.  This is what makes "same seed, same metrics" hold as the codebase
grows.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(name: str) -> int:
    """A process-independent 64-bit hash of ``name`` (``hash()`` is salted)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory of independent named random streams derived from one seed.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("dispatch")
    >>> a is streams.stream("arrivals")
    True
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, stable_hash(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are independent of ours."""
        return RngStreams(seed=(self.seed * 1_000_003 + stable_hash(name)) % 2**63)
