"""Per-hop resilience: timeouts, retries with backoff, hedging, fallback.

A :class:`HopResilience` declares, for one module of a pipeline, how a
request that gets stuck there is rescued:

* **timeout** — a watchdog armed at arrival; a request still waiting in
  a queue when it fires is acted on per ``on_timeout``:
  ``"retry"`` re-dispatches it (below), ``"drop"`` kills it (a request
  already *executing* is only ever killed, never duplicated).
* **retry** — up to ``retry.max`` re-dispatches with deterministic
  seeded exponential backoff (``base * 2**attempt``, optionally
  jittered from the cluster's named RNG stream).
* **hedge** — one duplicate dispatch to a second worker after a fixed
  delay, first draw wins.
* **fallback** — after retries are exhausted, the hop executes on a
  declared degraded module's workers instead of dropping; the flow
  continues downstream as if the origin module had completed.

Mechanically every rescue is a *duplicate queue entry* for the same
request: the first worker to draw an entry claims the hop by stamping
``visit.t_batched``, and every other entry is lazily skipped at draw
time — the same tombstone discipline the event heap uses for cancelled
events, so a request still terminates exactly once.  Watchdog and hedge
timers are plain heap events that no-op when they fire stale.

Fallback targets execute the *origin's* visit on their own workers and
must therefore be branches the request will not otherwise visit (e.g. a
sibling branch the router did not choose); a fallback to a module the
request already visited degrades to a drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .request import DropReason, Request, RequestStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import Cluster
    from .module import Module

ON_TIMEOUT = ("retry", "drop")


def descendants(spec, module_id: str) -> set[str]:
    """All modules reachable strictly downstream of ``module_id``."""
    out: set[str] = set()
    frontier = list(spec.successors(module_id))
    while frontier:
        mid = frontier.pop()
        if mid in out:
            continue
        out.add(mid)
        frontier.extend(spec.successors(mid))
    return out


@dataclass(frozen=True)
class HopResilience:
    """Declarative resilience configuration for one pipeline module."""

    timeout: float | None = None
    on_timeout: str = "retry"
    retry_max: int = 1
    backoff_base: float = 0.05
    backoff_jitter: float = 0.0
    hedge: float | None = None
    fallback: str | None = None

    def __post_init__(self) -> None:
        if self.timeout is None and self.hedge is None:
            raise ValueError(
                "a resilience hop needs at least a timeout or a hedge delay"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("resilience timeout must be > 0")
        if self.on_timeout not in ON_TIMEOUT:
            raise ValueError(
                f"on_timeout must be one of {ON_TIMEOUT}, got {self.on_timeout!r}"
            )
        if self.retry_max < 0:
            raise ValueError("retry.max must be >= 0")
        if self.backoff_base <= 0:
            raise ValueError("retry.base must be > 0")
        if self.backoff_jitter < 0:
            raise ValueError("retry.jitter must be >= 0")
        if self.hedge is not None and self.hedge <= 0:
            raise ValueError("hedge delay must be > 0")
        if self.fallback is not None and self.timeout is None:
            raise ValueError("fallback requires a timeout")

    def to_dict(self) -> dict:
        out: dict = {}
        if self.timeout is not None:
            out["timeout"] = self.timeout
            out["on_timeout"] = self.on_timeout
            out["retry"] = {
                "max": self.retry_max,
                "base": self.backoff_base,
                "jitter": self.backoff_jitter,
            }
        if self.hedge is not None:
            out["hedge"] = self.hedge
        if self.fallback is not None:
            out["fallback"] = self.fallback
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "HopResilience":
        unknown = set(data) - {"timeout", "on_timeout", "retry", "hedge", "fallback"}
        if unknown:
            raise ValueError(f"unknown resilience keys: {sorted(unknown)}")
        retry = dict(data.get("retry", {}))
        bad = set(retry) - {"max", "base", "jitter"}
        if bad:
            raise ValueError(f"unknown retry keys: {sorted(bad)}")
        return cls(
            timeout=(
                None if data.get("timeout") is None else float(data["timeout"])
            ),
            on_timeout=str(data.get("on_timeout", "retry")),
            retry_max=int(retry.get("max", 1)),
            backoff_base=float(retry.get("base", 0.05)),
            backoff_jitter=float(retry.get("jitter", 0.0)),
            hedge=None if data.get("hedge") is None else float(data["hedge"]),
            fallback=(
                None if data.get("fallback") is None else str(data["fallback"])
            ),
        )


class ResilienceManager:
    """Runtime for the per-hop :class:`HopResilience` configs of a cluster."""

    def __init__(self, cluster: "Cluster", hops: dict[str, HopResilience]) -> None:
        for mid, hop in hops.items():
            if mid not in cluster.modules:
                raise ValueError(f"resilience targets unknown module {mid!r}")
            if hop.fallback is not None:
                if hop.fallback not in cluster.modules:
                    raise ValueError(
                        f"resilience fallback targets unknown module "
                        f"{hop.fallback!r}"
                    )
                if hop.fallback == mid:
                    raise ValueError(
                        f"module {mid!r} cannot fall back to itself"
                    )
                if hop.fallback in descendants(cluster.spec, mid):
                    # The flow would route into the fallback again after
                    # the substituted hop completes — a guaranteed
                    # double-visit.  Valid targets are off-path branches
                    # (e.g. a router-skipped sibling).
                    raise ValueError(
                        f"module {mid!r} cannot fall back to its "
                        f"downstream module {hop.fallback!r}"
                    )
        self.cluster = cluster
        self.sim = cluster.sim
        self.hops = dict(hops)
        self._rng = cluster.rng.stream("resilience")

    # -- arming --------------------------------------------------------------

    def arm(self, request: Request, module: "Module") -> None:
        """Called by a resilient module for every accepted arrival."""
        hop = self.hops[module.spec.id]
        if hop.hedge is not None:
            self.sim.schedule_after(hop.hedge, self._hedge_fire, request, module)
        if hop.timeout is not None:
            self.sim.schedule_after(
                hop.timeout, self._deadline, request, module, 0
            )

    # -- hedging -------------------------------------------------------------

    def _hedge_fire(self, request: Request, module: "Module") -> None:
        if request.status is not RequestStatus.IN_FLIGHT:
            return
        visit = request.visits.get(module.spec.id)
        if visit is None or visit.t_batched is not None:
            return  # already claimed by a worker: the hedge is moot
        if len(module.workers) < 2:
            return  # no second machine to hedge onto
        self.cluster.metrics.res_hedges += 1
        module.dispatcher.pick(module.workers).enqueue(request)

    # -- timeout / retry / fallback ------------------------------------------

    def _deadline(
        self, request: Request, module: "Module", attempt: int
    ) -> None:
        if request.status is not RequestStatus.IN_FLIGHT:
            return
        mid = module.spec.id
        visit = request.visits.get(mid)
        if visit is None or visit.t_exec_end is not None:
            return  # the hop completed in time
        hop = self.hops[mid]
        if visit.t_batched is not None:
            # Claimed: forming or executing somewhere.  Duplication cannot
            # help (the claim would make the duplicate a no-op), so the
            # only meaningful action is a kill.
            if hop.on_timeout == "drop":
                self.cluster.metrics.res_timeouts += 1
                self.cluster.drop(request, mid, DropReason.TIMEOUT)
            return
        if module.n_workers == 0:
            # Total outage: the request is parked at the module.  Restart
            # the clock so recovery gets a full budget before retries.
            self.sim.schedule_after(
                hop.timeout, self._deadline, request, module, attempt
            )
            return
        self.cluster.metrics.res_timeouts += 1
        if hop.on_timeout == "drop" or attempt >= hop.retry_max:
            if hop.on_timeout == "retry" and hop.fallback is not None:
                self._fallback(request, module, hop)
            else:
                self.cluster.drop(request, mid, DropReason.TIMEOUT)
            return
        self.sim.schedule_after(
            self._backoff(hop, attempt), self._redispatch, request, module,
            attempt,
        )

    def _backoff(self, hop: HopResilience, attempt: int) -> float:
        delay = hop.backoff_base * (2.0 ** attempt)
        if hop.backoff_jitter:
            delay *= 1.0 + hop.backoff_jitter * float(self._rng.random())
        return delay

    def _redispatch(
        self, request: Request, module: "Module", attempt: int
    ) -> None:
        if request.status is not RequestStatus.IN_FLIGHT:
            return
        mid = module.spec.id
        visit = request.visits.get(mid)
        if visit is None or visit.t_batched is not None:
            return  # claimed during the backoff window
        hop = self.hops[mid]
        if module.n_workers == 0:
            self.sim.schedule_after(
                hop.timeout, self._deadline, request, module, attempt
            )
            return
        self.cluster.metrics.res_retries += 1
        module.dispatcher.pick(module.workers).enqueue(request)
        self.sim.schedule_after(
            hop.timeout, self._deadline, request, module, attempt + 1
        )

    def _fallback(
        self, request: Request, module: "Module", hop: HopResilience
    ) -> None:
        mid = module.spec.id
        if hop.fallback in request.visits:
            # The request already visited (or is visiting) the fallback
            # branch; executing the origin's work there would collide.
            self.cluster.drop(request, mid, DropReason.TIMEOUT)
            return
        visit = request.visits[mid]
        # Claim the origin hop so its stale queue entries skip at draw.
        visit.t_batched = self.sim.now
        self.cluster.metrics.res_fallbacks += 1
        flow = self.cluster
        if flow._fallback_origin is None:
            flow._fallback_origin = {}
        flow._fallback_origin[request.rid] = (hop.fallback, mid)
        flow.modules[hop.fallback].receive(request)
