"""LLMWorker: iteration-level continuous batching with a KV-cache budget.

Where the base :class:`~repro.simulation.worker.Worker` executes fixed
batches back-to-back, an LLM engine interleaves *iterations*: each engine
step first admits queued requests into the running batch, then executes
either one prefill iteration (over the newly admitted requests' prompt
tokens, emitting each one's first output token) or one decode iteration
(appending one token to every running request), and retires requests
whose sampled output length is exhausted.  Iteration durations come from
the module's :class:`~repro.pipeline.llm_profiles.LLMProfile`.

The KV cache is a schedulable resource.  Every admitted request holds a
token reservation against the profile's per-worker ``kv_capacity``:

* **block mode** (default): ``prompt + output`` tokens are reserved at
  admission, and admission simply blocks while the cache is full — the
  policy layer sees memory pressure as queueing delay, nothing else.
* **preempt mode** (``profile.preempt=True``): only ``prompt +
  generated`` tokens are reserved, the reservation grows one token per
  decode, and when the cache fills the most recently admitted request is
  preempted back to the head of the admission buffer (keeping its
  generated-token count; its KV is conceptually swapped out).

Contract compatibility: the worker keeps the base class's ``queue`` /
``forming`` / ``executing`` surface, so dispatchers, draining, scaling
and :class:`~repro.simulation.failures.FailureInjector` stranding work
unchanged.  ``forming`` holds requests popped from the queue but blocked
on cache space (plus preempted requests awaiting resume); ``executing``
is a :class:`~repro.simulation.worker.Batch` spanning the current
iteration whose ``requests`` list every running sequence, so a worker
failure strands *all* of them (their per-worker KV state dies with the
worker, and generation restarts from scratch on re-dispatch — the sampled
token lengths on the visit are sticky, so the replay is deterministic).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..pipeline.llm_profiles import LLMProfile
from .request import DropReason, Request, RequestStatus
from .worker import Batch, Worker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .module import Module


class LLMWorker(Worker):
    """One GPU running continuous batching for a token-level module."""

    __slots__ = ("kv_used", "_running", "_reserved", "_generated", "_need_prefill")

    def __init__(self, module: "Module", worker_id: int) -> None:
        if not isinstance(module.profile, LLMProfile):
            raise TypeError(
                f"module {module.spec.id!r}: LLMWorker needs an LLMProfile, "
                f"got {type(module.profile).__name__}"
            )
        super().__init__(module, worker_id)
        self.kv_used = 0
        self._running: list[Request] = []  # admitted, KV-resident sequences
        self._reserved: dict[int, int] = {}  # rid -> reserved cache tokens
        self._generated: dict[int, int] = {}  # rid -> output tokens produced
        self._need_prefill: list[Request] = []  # admitted but not yet prefilled

    # -- introspection ------------------------------------------------------

    @property
    def load(self) -> int:
        return len(self.queue) + len(self.forming) + len(self._running)

    @property
    def idle(self) -> bool:
        return (
            self.executing is None
            and not self._running
            and not self.forming
            and len(self.queue) == 0
        )

    # -- request flow -------------------------------------------------------

    def _sample_tokens(self, request: Request) -> None:
        """Sample prompt/output lengths once per request per module.

        Drawn from the cluster's named RNG stream in dispatch order, so
        lengths are deterministic for a given scenario seed and sticky
        across failure re-dispatch (0 is the not-sampled sentinel; draws
        are clamped >= 1).
        """
        module = self.module
        visit = request.visits[module.spec.id]
        if visit.prompt_tokens:
            return
        profile = module.profile
        rng = module.cluster.rng.stream(f"llm:{module.spec.id}")
        visit.prompt_tokens = profile.prompt_dist.sample(rng)
        visit.output_tokens = profile.output_dist.sample(rng)

    def enqueue(self, request: Request) -> None:
        """Accept a dispatched request and advance the engine if idle."""
        self._sample_tokens(request)
        self.queue.push(request, self.sim.now)
        if self.executing is None:
            self._step()

    def _release(self, rid: int) -> None:
        self.kv_used -= self._reserved.pop(rid, 0)

    def _purge(self) -> None:
        """Evict sequences a sibling branch already dropped (free their KV)."""
        in_flight = RequestStatus.IN_FLIGHT
        running = self._running
        if all(r.status is in_flight for r in running):
            return
        keep = []
        for r in running:
            if r.status is in_flight:
                keep.append(r)
            else:
                self.telemetry.skipped_cancelled += 1
                self._release(r.rid)
                self._generated.pop(r.rid, None)
        self._running = keep
        self._need_prefill = [
            r for r in self._need_prefill if r.status is in_flight
        ]

    def _admit(self, now: float) -> None:
        """Move queued requests into the running batch.

        Each *fresh* request gets its once-only drop decision here (t_b);
        resumed preemptions were decided at first admission.  Admission
        stops at the module's target batch (max concurrent sequences) or
        when the next request's KV reservation does not fit — blocked
        requests wait in ``forming`` in FIFO order so memory pressure
        surfaces as queueing delay, never reordering.
        """
        module = self.module
        profile = module.profile
        target = module.target_batch
        running = self._running
        capacity = profile.kv_capacity
        block = not profile.preempt
        module_id = module.spec.id
        in_flight = RequestStatus.IN_FLIGHT
        stats = module.stats
        ctx = self._ctx
        ctx.now = now
        forming = self.forming
        resilient = module._resilience is not None
        while len(running) < target:
            if forming:
                request = forming[0]
                from_forming = True
            else:
                from_forming = False
                request = self.queue.pop(now)
                if request is None:
                    break
            if request.status is not in_flight:
                if from_forming:
                    forming.pop(0)
                self.telemetry.skipped_cancelled += 1
                continue
            self._sample_tokens(request)  # parked arrivals skip enqueue()
            visit = request.visits[module_id]
            worst = visit.prompt_tokens + visit.output_tokens
            generated = self._generated.get(request.rid)
            if resilient and generated is None and visit.t_batched is not None:
                # A duplicate dispatch (retry/hedge) lost the race: this
                # hop was already claimed at another worker.  Preempted
                # resumes are exempt — they carry per-worker generated
                # state, which duplicates never have.
                if from_forming:
                    forming.pop(0)
                self.telemetry.skipped_cancelled += 1
                continue
            if worst > capacity:
                # Could never fit even on an empty cache: reject outright
                # rather than wedging the worker behind it forever.
                if from_forming:
                    forming.pop(0)
                visit.t_batched = now
                visit.worker_id = self.worker_id
                stats.queue_delays.record(now, now - visit.t_received)
                self.telemetry.dropped_requests += 1
                stats.record_drop()
                module.cluster.drop(
                    request, module_id, DropReason.ADMISSION_CONTROL
                )
                continue
            # Fresh sequences in preempt mode reserve prompt + the first
            # token prefill will emit; block mode reserves the worst case.
            need = worst if block else visit.prompt_tokens + (generated or 1)
            if self.kv_used + need > capacity:
                if not from_forming:
                    forming.append(request)
                break
            if from_forming:
                forming.pop(0)
            if generated is None:
                ctx.request = request
                ctx.expected_start = now
                ctx.batch_duration = profile.request_estimate(
                    visit.prompt_tokens, visit.output_tokens, len(running) + 1
                )
                ctx.slo = request.slo
                visit.t_batched = now
                visit.worker_id = self.worker_id
                stats.queue_delays.record(now, now - visit.t_received)
                reason = module.policy.should_drop(ctx)
                if reason is not None:
                    self.telemetry.dropped_requests += 1
                    stats.record_drop()
                    module.cluster.drop(request, module_id, reason)
                    continue
                stats.batch_waits.record(now, 0.0)
                self._need_prefill.append(request)
            self.kv_used += need
            self._reserved[request.rid] = need
            running.append(request)

    def _grow_reservations(self) -> None:
        """Preempt mode: reserve one more token per sequence before a
        decode iteration, preempting the most recently admitted sequences
        while the cache cannot hold the growth (at least one sequence
        always keeps making progress)."""
        running = self._running
        capacity = self.module.profile.kv_capacity
        while len(running) > 1 and self.kv_used + len(running) > capacity:
            victim = running.pop()
            self._release(victim.rid)
            self.forming.insert(0, victim)
        for r in running:
            self._reserved[r.rid] += 1
        self.kv_used += len(running)

    def _step(self) -> None:
        """Run one continuous-batching engine iteration."""
        if self.executing is not None:
            return
        now = self.sim.now
        self._purge()
        self._admit(now)
        running = self._running
        if not running:
            if self.draining and self.idle:
                self.module.reap(self)
            return
        module = self.module
        profile = module.profile
        if self._need_prefill:
            prefill_seqs = self._need_prefill
            self._need_prefill = []
            module_id = module.spec.id
            total_prompt = sum(
                r.visits[module_id].prompt_tokens for r in prefill_seqs
            )
            duration = profile.prefill_duration(total_prompt)
        else:
            prefill_seqs = None
            if profile.preempt:
                self._grow_reservations()
            duration = profile.decode_duration(len(running))
        if self.degrade_factor != 1.0:
            duration *= self.degrade_factor  # straggler fault active
        batch = Batch(requests=list(running), start=now, end=now + duration)
        self.executing = batch
        self.telemetry.batches += 1
        self.telemetry.busy_time += duration
        module.stats.record_batch(now, batch.size)
        self.sim.schedule(batch.end, self._finish_step, batch, prefill_seqs)

    def _finish_step(
        self, batch: Batch, prefill_seqs: list[Request] | None
    ) -> None:
        """One iteration finished: emit tokens, retire exhausted sequences."""
        if batch.aborted:
            return  # the worker died mid-iteration (failure injection)
        now = self.sim.now
        module = self.module
        module_id = module.spec.id
        in_flight = RequestStatus.IN_FLIGHT
        source = prefill_seqs if prefill_seqs is not None else batch.requests
        producers = [r for r in source if r.status is in_flight]
        retired: list[Request] = []
        if producers:
            share = (batch.end - batch.start) / len(producers)
            for request in producers:
                visit = request.visits[module_id]
                if visit.t_exec_start is None:
                    visit.t_exec_start = batch.start
                    visit.batch_size = batch.size
                visit.gpu_time += share
                generated = self._generated.get(request.rid, 0) + 1
                self._generated[request.rid] = generated
                if request.first_token_at is None:
                    request.first_token_at = now
                request.last_token_at = now
                request.tokens_out += 1
                if generated >= visit.output_tokens:
                    # Last token: free the KV reservation and retire.
                    visit.t_exec_end = now
                    self._release(request.rid)
                    self._generated.pop(request.rid, None)
                    self._running.remove(request)
                    self.telemetry.executed_requests += 1
                    retired.append(request)
        # Forward retirees only after all engine bookkeeping is settled:
        # on_module_done can synchronously re-enter this worker (a shared
        # pool serving consecutive pipeline modules dispatches right back),
        # which must observe a consistent running set.  The iteration stays
        # marked as executing until here so a re-entrant enqueue defers to
        # the _step below instead of starting a conflicting one.
        self.executing = None
        on_module_done = module.cluster.on_module_done
        for request in retired:
            on_module_done(request, module)
        self._step()
