"""Cross-app fairness policies for the shared-cluster admission seam.

A :class:`~repro.simulation.tenancy.SharedCluster` consults one optional
``admission`` hook on every module entry *before* the owning tenant's own
drop policy runs — the only place a policy observes the aggregate state of
all tenants at once.  The two policies here are the seam's first
parameterized occupants, declared entirely from JSON via
``MultiScenario.admission`` (a :class:`~repro.policies.spec.PolicySpec`):

* ``weighted-fair`` — weighted fair *dropping*: when a shared pool's
  backlog exceeds capacity, requests of tenants consuming more than their
  weighted share of the pool's recent demand are shed first, so a
  well-behaved victim keeps its share through an aggressor's burst.
* ``token-bucket`` — per-tenant *rate limiting*: each tenant refills a
  token bucket at ``rate x weight`` requests/s (burst capacity
  ``burst`` seconds of that rate) and is charged one token at its entry
  hop; requests beyond the sustained rate are rejected up front.

Both are deterministic (no RNG draw), so shared-cluster sweeps stay
bitwise-identical across worker counts.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Mapping

from ..simulation.request import DropReason, Request
from .spec import ParamSpec
from .registry import register_admission

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulation.module import Module
    from ..simulation.tenancy import SharedCluster

__all__ = ["AdmissionPolicy", "TokenBucketPolicy", "WeightedFairDropPolicy"]


class AdmissionPolicy:
    """Base of cross-app admission policies (the ``admission`` hook).

    Instances are callables matching :data:`~repro.simulation.tenancy.
    AdmissionHook` and are bound to the shared cluster before the run
    (:meth:`bind` — called by ``SharedCluster.__init__``), which is where
    tenant views, pool membership and weights meet.
    """

    name = "admission"

    def __init__(self, weights: Mapping[str, float]) -> None:
        self.weights = {str(k): float(v) for k, v in weights.items()}
        self.shared: "SharedCluster | None" = None

    def bind(self, shared: "SharedCluster") -> None:
        self.shared = shared

    def weight_of(self, tenant: str) -> float:
        """Declared weight of a tenant (1.0 when not declared)."""
        return self.weights.get(tenant, 1.0)

    def __call__(
        self, request: Request, module: "Module", now: float
    ) -> DropReason | None:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class WeightedFairDropPolicy(AdmissionPolicy):
    """Drop over-share tenants first when a shared pool backs up.

    Demand is tracked per (pool, tenant) over a sliding ``window`` of
    arrivals.  While the pool's queue exceeds ``backlog`` requests per
    worker, an arriving request is shed iff its tenant's share of the
    pool's windowed demand exceeds ``slack`` times its weighted fair share
    among the pool's member tenants — dropping *only* the tenants pushing
    past their share, never the ones under it.
    """

    name = "weighted-fair"

    def __init__(
        self,
        weights: Mapping[str, float],
        backlog: float = 4.0,
        window: float = 5.0,
        slack: float = 1.25,
    ) -> None:
        super().__init__(weights)
        if backlog <= 0:
            raise ValueError("backlog must be > 0")
        if window <= 0:
            raise ValueError("window must be > 0")
        if slack < 1.0:
            raise ValueError("slack must be >= 1.0 (a tolerance)")
        self.backlog = backlog
        self.window = window
        self.slack = slack
        self._demand: dict[tuple[str, str], deque[float]] = {}

    def _record(self, pool: str, tenant: str, now: float) -> None:
        q = self._demand.setdefault((pool, tenant), deque())
        q.append(now)
        cutoff = now - self.window
        while q and q[0] < cutoff:
            q.popleft()

    def __call__(
        self, request: Request, module: "Module", now: float
    ) -> DropReason | None:
        assert self.shared is not None, "admission policy used unbound"
        pool_key = module.spec.id
        self._record(pool_key, request.app, now)
        if module.queue_length() <= self.backlog * max(1, module.n_workers):
            return None
        # Sorted member order: float sums must not depend on set-iteration
        # order (salted string hashing), or cached cells could disagree
        # bitwise with their recomputation.
        members = sorted({
            tname for tname, _ in self.shared.pool_specs[pool_key].members
        })
        # Prune every member's deque to the window and count via len():
        # timestamps only ever leave from the left, so this is amortized
        # O(1) per arrival instead of rescanning the window each time.
        cutoff = now - self.window
        counts: dict[str, int] = {}
        for t in members:
            q = self._demand.get((pool_key, t))
            if q is not None:
                while q and q[0] < cutoff:
                    q.popleft()
            counts[t] = len(q) if q is not None else 0
        total = sum(counts.values())
        if total == 0:
            return None
        total_weight = sum(self.weight_of(t) for t in members)
        fair = self.weight_of(request.app) / total_weight
        share = counts[request.app] / total
        if share > self.slack * fair:
            return DropReason.ADMISSION_CONTROL
        return None

    def describe(self) -> str:
        return (f"{self.name}(backlog={self.backlog}, window={self.window}, "
                f"slack={self.slack})")


class TokenBucketPolicy(AdmissionPolicy):
    """Per-tenant token-bucket rate limit at the pipeline entry.

    Tenant ``t`` refills at ``rate x weight_t`` tokens/s up to a capacity
    of ``burst`` seconds of that rate; each request is charged one token
    when it enters its *entry* hop (downstream hops are free — the request
    was already admitted).  An empty bucket rejects the request with
    ``ADMISSION_CONTROL``, bounding every tenant's sustained rate no
    matter how aggressively it submits.
    """

    name = "token-bucket"

    def __init__(
        self,
        weights: Mapping[str, float],
        rate: float = 50.0,
        burst: float = 2.0,
    ) -> None:
        super().__init__(weights)
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if burst <= 0:
            raise ValueError("burst must be > 0")
        self.rate = rate
        self.burst = burst
        # tenant -> (token level, last refill time); buckets start full.
        self._buckets: dict[str, tuple[float, float]] = {}

    def _tenant_rate(self, tenant: str) -> float:
        return self.rate * self.weight_of(tenant)

    def __call__(
        self, request: Request, module: "Module", now: float
    ) -> DropReason | None:
        assert self.shared is not None, "admission policy used unbound"
        view = self.shared.views.get(request.app)
        if view is None or view.hop_id(module) != view.entry_id:
            return None
        rate = self._tenant_rate(request.app)
        # Capacity is floored at one token: a low-weight tenant whose
        # burst allowance rounds below a single request must still be
        # *rate-limited* (admitted as tokens accrue), never starved.
        cap = max(1.0, self.burst * rate)
        level, last = self._buckets.get(request.app, (cap, now))
        level = min(cap, level + (now - last) * rate)
        if level < 1.0:
            self._buckets[request.app] = (level, now)
            return DropReason.ADMISSION_CONTROL
        self._buckets[request.app] = (level - 1.0, now)
        return None

    def describe(self) -> str:
        return f"{self.name}(rate={self.rate}, burst={self.burst})"


@register_admission("weighted-fair", params=(
    ParamSpec("backlog", "float", 4.0,
              help="queued requests per worker marking the pool congested"),
    ParamSpec("window", "float", 5.0,
              help="sliding demand-measurement window (s)"),
    ParamSpec("slack", "float", 1.25,
              help="tolerated overshoot of the weighted fair share"),
))
def _weighted_fair(
    weights: Mapping[str, float], seed: int, **params
) -> WeightedFairDropPolicy:
    return WeightedFairDropPolicy(weights, **params)


@register_admission("token-bucket", params=(
    ParamSpec("rate", "float", 50.0,
              help="tokens/s per unit of tenant weight"),
    ParamSpec("burst", "float", 2.0,
              help="bucket capacity, in seconds of the sustained rate"),
))
def _token_bucket(
    weights: Mapping[str, float], seed: int, **params
) -> TokenBucketPolicy:
    return TokenBucketPolicy(weights, **params)
