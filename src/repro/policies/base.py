"""Compatibility re-export; the interfaces live in :mod:`repro.interfaces`.

Keeping the canonical definitions in a top-level module (imported by both
``repro.core`` and ``repro.simulation``) avoids a circular import through
the ``repro.policies`` package initialiser.
"""

from ..interfaces import DropContext, DropPolicy, FifoQueue, RequestQueue

__all__ = ["DropContext", "DropPolicy", "FifoQueue", "RequestQueue"]
