"""Clipper++ baseline: per-module SLO split, drop-if-already-expired.

Clipper (NSDI '17) serves single-model applications and drops a request
only when it has *already* exceeded the latency objective before inference
(the paper's "Lazy Drop", Figure 1a).  Following the paper's §5.1, we
extend it to pipelines as Clipper++: the end-to-end SLO is divided across
modules proportionally to profiled durations, ``SLO_k = SLO * d_k / sum d``,
and a request is dropped at module k when its elapsed time at decision
point already exceeds its cumulative budget through module k.
"""

from __future__ import annotations

from ..simulation.batching import slo_split
from ..simulation.request import DropReason
from ..interfaces import DropContext, DropPolicy


class ClipperPlusPlusPolicy(DropPolicy):
    """Reactive lazy dropping with a fixed proportional SLO split."""

    name = "Clipper++"

    def __init__(self) -> None:
        super().__init__()
        self._cum_budget: dict[str, float] = {}

    def bind(self, cluster) -> None:
        super().bind(cluster)
        spec = cluster.spec
        shares = slo_split(spec, cluster.registry, cluster.slo)
        self._cum_budget = {}
        memo: dict[str, float] = {}
        for mid in spec.module_ids:
            self._cum_budget[mid] = shares[mid] + self._best_upstream(
                mid, shares, memo
            )

    def _best_upstream(
        self,
        module_id: str,
        shares: dict[str, float],
        memo: dict[str, float],
    ) -> float:
        """Cumulative share of the longest upstream path (exclusive).

        Memoized per bind: the bare recursion walks every upstream path,
        which is exponential on dense DAGs.
        """
        cached = memo.get(module_id)
        if cached is not None:
            return cached
        assert self.cluster is not None
        preds = self.cluster.spec.predecessors(module_id)
        best = max(
            (shares[p] + self._best_upstream(p, shares, memo) for p in preds),
            default=0.0,
        )
        memo[module_id] = best
        return best

    def should_drop(self, ctx: DropContext) -> DropReason | None:
        assert self.cluster is not None
        budget = self._cum_budget[self.cluster.hop_id(ctx.module)]
        if ctx.now - ctx.request.sent_at > budget:
            return DropReason.ALREADY_EXPIRED
        return None
