"""Clipper++ baseline: per-module SLO split, drop-if-already-expired.

Clipper (NSDI '17) serves single-model applications and drops a request
only when it has *already* exceeded the latency objective before inference
(the paper's "Lazy Drop", Figure 1a).  Following the paper's §5.1, we
extend it to pipelines as Clipper++: the end-to-end SLO is divided across
modules proportionally to profiled durations, ``SLO_k = SLO * d_k / sum d``,
and a request is dropped at module k when its elapsed time at decision
point already exceeds its cumulative budget through module k.
"""

from __future__ import annotations

from ..simulation.batching import slo_split
from ..simulation.request import DropReason
from ..interfaces import DropContext, DropPolicy


class ClipperPlusPlusPolicy(DropPolicy):
    """Reactive lazy dropping with a fixed proportional SLO split."""

    name = "Clipper++"

    def __init__(self) -> None:
        super().__init__()
        self._cum_budget: dict[str, float] = {}

    def bind(self, cluster) -> None:
        super().bind(cluster)
        spec = cluster.spec
        shares = slo_split(spec, cluster.registry, cluster.slo)
        # Cumulative budget through module k = the heaviest entry-to-k
        # path's share sum, straight from the spec's topological
        # reduction: the budget divides over the token flow frozen in the
        # spec, not over an enumeration of (exponentially many) paths.
        self._cum_budget = spec.cumulative_upstream_max(shares)

    def should_drop(self, ctx: DropContext) -> DropReason | None:
        assert self.cluster is not None
        budget = self._cum_budget[self.cluster.hop_id(ctx.module)]
        if ctx.now - ctx.request.sent_at > budget:
            return DropReason.ALREADY_EXPIRED
        return None
