"""PARD-oc: DAGOR-style overload control (WeChat, SoCC '18).

Microservice overload control drops at *admission* based on queueing delay:
when any module's average queueing delay exceeds a threshold ``T`` it is
considered overloaded, preceding modules are notified, and the pipeline
entry admits requests at ``(1 - alpha) x input_rate`` until the overload
clears.  The paper uses this as the PARD-oc ablation — it avoids late drops
but is blind to batching-induced latency uncertainty.
"""

from __future__ import annotations

import numpy as np

from ..simulation.request import DropReason, Request
from ..interfaces import DropContext, DropPolicy


class OverloadControlPolicy(DropPolicy):
    """Queue-delay-triggered admission control at the pipeline entry."""

    name = "PARD-oc"

    def __init__(
        self,
        threshold: float = 0.020,
        alpha: float = 0.4,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        self.threshold = threshold
        self.alpha = alpha
        self._rng = np.random.default_rng(seed)
        self.overloaded = False
        self.overload_intervals: list[tuple[float, float]] = []
        self._overload_since: float | None = None

    def on_tick(self, now: float) -> None:
        assert self.cluster is not None
        was = self.overloaded
        self.overloaded = any(
            m.stats.avg_queue_delay(now) > self.threshold
            for m in self.cluster.modules.values()
        )
        if self.overloaded and not was:
            self._overload_since = now
        elif was and not self.overloaded and self._overload_since is not None:
            self.overload_intervals.append((self._overload_since, now))
            self._overload_since = None

    def on_admit(self, request: Request, module, now: float) -> DropReason | None:
        # Throttle only at the pipeline entry — DAGOR sheds upstream so
        # no downstream work is wasted on rejected requests.
        if not self.cluster.is_entry_module(module):
            return None
        if self.overloaded and self._rng.random() < self.alpha:
            return DropReason.ADMISSION_CONTROL
        return None

    def should_drop(self, ctx: DropContext) -> DropReason | None:
        # Per-module reactive safety net: drop requests whose deadline has
        # already passed (they are useless regardless of policy).
        if ctx.now > ctx.request.deadline:
            return DropReason.ALREADY_EXPIRED
        return None

    def describe(self) -> str:
        return f"{self.name} [threshold={self.threshold}, alpha={self.alpha}]"
