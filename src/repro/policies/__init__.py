"""Serving policies: baselines and Table-1 ablations."""

from .ablations import ABLATIONS, make_ablation
from .base import DropContext, DropPolicy, FifoQueue, RequestQueue
from .clipper import ClipperPlusPlusPolicy
from .naive import NaivePolicy
from .nexus import NexusPolicy
from .overload_control import OverloadControlPolicy

__all__ = [
    "ABLATIONS",
    "ClipperPlusPlusPolicy",
    "DropContext",
    "DropPolicy",
    "FifoQueue",
    "NaivePolicy",
    "NexusPolicy",
    "OverloadControlPolicy",
    "RequestQueue",
    "make_ablation",
]
