"""Serving policies: baselines, Table-1 ablations and fairness policies."""

from .ablations import ABLATIONS, make_ablation
from .base import DropContext, DropPolicy, FifoQueue, RequestQueue
from .clipper import ClipperPlusPlusPolicy
from .fairness import AdmissionPolicy, TokenBucketPolicy, WeightedFairDropPolicy
from .naive import NaivePolicy
from .nexus import NexusPolicy
from .overload_control import OverloadControlPolicy
from .registry import (
    ADMISSIONS,
    POLICIES,
    SYSTEM_FACTORIES,
    admission_params,
    known_admissions,
    known_policies,
    make_admission,
    make_policy,
    policy_params,
    register_admission,
    register_policy,
)
from .spec import ParamSpec, PolicySpec

__all__ = [
    "ABLATIONS",
    "ADMISSIONS",
    "AdmissionPolicy",
    "ClipperPlusPlusPolicy",
    "DropContext",
    "DropPolicy",
    "FifoQueue",
    "NaivePolicy",
    "NexusPolicy",
    "OverloadControlPolicy",
    "POLICIES",
    "ParamSpec",
    "PolicySpec",
    "RequestQueue",
    "SYSTEM_FACTORIES",
    "TokenBucketPolicy",
    "WeightedFairDropPolicy",
    "admission_params",
    "known_admissions",
    "known_policies",
    "make_ablation",
    "make_admission",
    "make_policy",
    "policy_params",
    "register_admission",
    "register_policy",
]
