"""Serving policies: baselines and Table-1 ablations."""

from .ablations import ABLATIONS, make_ablation
from .base import DropContext, DropPolicy, FifoQueue, RequestQueue
from .clipper import ClipperPlusPlusPolicy
from .naive import NaivePolicy
from .nexus import NexusPolicy
from .overload_control import OverloadControlPolicy
from .registry import (
    SYSTEM_FACTORIES,
    known_policies,
    make_policy,
    register_policy,
)

__all__ = [
    "ABLATIONS",
    "ClipperPlusPlusPolicy",
    "SYSTEM_FACTORIES",
    "DropContext",
    "DropPolicy",
    "FifoQueue",
    "NaivePolicy",
    "NexusPolicy",
    "OverloadControlPolicy",
    "RequestQueue",
    "known_policies",
    "make_ablation",
    "make_policy",
    "register_policy",
]
