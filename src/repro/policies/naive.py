"""Naive baseline: serve everything, never drop."""

from __future__ import annotations

from ..simulation.request import DropReason
from ..interfaces import DropContext, DropPolicy


class NaivePolicy(DropPolicy):
    """No dropping at all — the paper's worst-goodput baseline.

    Timed-out requests still consume GPU time at every module, creating the
    queueing backpressure the paper's Figure 2 quantifies.
    """

    name = "Naive"

    def should_drop(self, ctx: DropContext) -> DropReason | None:
        return None
