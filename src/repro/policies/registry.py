"""Name -> policy construction shared by the CLI, configs and sweep workers.

Policies are constructed from *specs* (:class:`~repro.policies.spec.
PolicySpec`: a registered name plus typed params) rather than passing
factory callables around because sweep worker processes receive their work
unit by pickle: plain data survives the trip, a closure does not.  Every
factory takes the experiment seed first, so a sweep cell is fully
determined by ``(config, policy spec)``.

Each registration *declares* its parameter schema (:class:`~repro.policies.
spec.ParamSpec`): the knobs the paper's Table-1 ablation study and
sensitivity figures sweep.  Declarations are introspectable (``repro list
--params``) and enforced when a :class:`PolicySpec` is built — not
mid-run.  Two registries share the machinery:

* ``POLICIES`` — drop policies (the four systems plus every ablation);
* ``ADMISSIONS`` — cross-app admission policies for the shared-cluster
  fairness seam (:class:`~repro.simulation.tenancy.SharedPolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .ablations import ABLATIONS
from .base import DropPolicy
from .clipper import ClipperPlusPlusPolicy
from .naive import NaivePolicy
from .nexus import NexusPolicy
from .spec import ParamSpec, PolicySpec

__all__ = [
    "ADMISSIONS",
    "POLICIES",
    "PolicyInfo",
    "SYSTEM_FACTORIES",
    "admission_params",
    "known_admissions",
    "known_policies",
    "make_admission",
    "make_policy",
    "policy_params",
    "register_admission",
    "register_policy",
]


@dataclass(frozen=True)
class PolicyInfo:
    """One registry entry: factory plus its declared parameter schema."""

    name: str
    factory: Callable
    params: tuple[ParamSpec, ...] = ()
    kind: str = "system"  # "system" | "ablation" | "admission"


#: Every constructible drop policy (systems + ablations), by name.
POLICIES: dict[str, PolicyInfo] = {}

#: Cross-app admission (fairness) policies for shared clusters, by name.
ADMISSIONS: dict[str, PolicyInfo] = {}

#: The four systems compared throughout §5.2 (name -> seeded factory).
#: Kept alongside ``POLICIES`` because the CLI's default comparison set is
#: "the systems", not every ablation.
SYSTEM_FACTORIES: dict[str, Callable[[int], DropPolicy]] = {}


def register_policy(
    name: str,
    *,
    params: Sequence[ParamSpec] = (),
    kind: str = "system",
) -> Callable[[Callable], Callable]:
    """Decorator registering a seeded policy factory under ``name``.

    The factory is called as ``factory(seed, **authored_params)`` — only
    params the spec actually sets are passed, so factory defaults stay the
    single source of truth.  ``params`` declares the accepted schema.  The
    same name-keyed pattern as :func:`repro.pipeline.applications.
    register_application` and :func:`repro.workload.generators.
    register_trace`, so scenarios and sweep workers resolve policies from
    plain data.
    """

    def decorate(fn: Callable) -> Callable:
        if name in POLICIES:
            raise ValueError(f"policy {name!r} already registered")
        POLICIES[name] = PolicyInfo(
            name=name, factory=fn, params=tuple(params), kind=kind
        )
        if kind == "system":
            SYSTEM_FACTORIES[name] = fn
        return fn

    return decorate


def register_admission(
    name: str, *, params: Sequence[ParamSpec] = ()
) -> Callable[[Callable], Callable]:
    """Decorator registering a shared-cluster admission policy factory.

    The factory is called as ``factory(weights, seed, **authored_params)``
    where ``weights`` maps tenant label -> declared tenant weight — the
    fair-share vector every cross-app fairness policy needs.
    """

    def decorate(fn: Callable) -> Callable:
        if name in ADMISSIONS:
            raise ValueError(f"admission policy {name!r} already registered")
        ADMISSIONS[name] = PolicyInfo(
            name=name, factory=fn, params=tuple(params), kind="admission"
        )
        return fn

    return decorate


# -- the four systems ---------------------------------------------------------

_MODE_PARAMS = (
    ParamSpec("lam", "float", 0.1,
              help="batch-wait quantile lambda (Figure 14a)"),
    ParamSpec("samples", "int", 2000,
              help="Monte-Carlo samples for the wait distribution"),
    ParamSpec("sub_mode", "str", "full", choices=("full", "none", "durations"),
              help="forward-estimate content (PARD / -back / -sf)"),
    ParamSpec("wait_mode", "str", "quantile",
              choices=("quantile", "lower", "upper"),
              help="downstream batch-wait estimate"),
    ParamSpec("priority_mode", "str", "adaptive",
              choices=("adaptive", "instant", "hbf", "lbf", "fcfs"),
              help="queue ordering strategy"),
    ParamSpec("budget_mode", "str", "e2e", choices=("e2e", "split", "wcl"),
              help="budget the estimate is compared against"),
)


@register_policy("PARD", params=_MODE_PARAMS)
def _pard(seed: int, samples: int = 2000, **params) -> DropPolicy:
    from ..core.policy import PardPolicy

    # samples=2000 is the registered-system default (matches the historic
    # ablations.pard factory; PardPolicy's own 10_000 is the research-grade
    # setting) — the signature default here is the runtime source of truth
    # the ParamSpec declaration above documents.
    return PardPolicy(seed=seed, samples=samples, name="PARD", **params)


@register_policy("Nexus", params=(
    ParamSpec("windowed", "bool", False,
              help="use the paper's sliding-window queue scan"),
))
def _nexus(seed: int, **params) -> DropPolicy:
    return NexusPolicy(**params)


@register_policy("Clipper++")
def _clipper(seed: int) -> DropPolicy:
    return ClipperPlusPlusPolicy()


@register_policy("Naive")
def _naive(seed: int) -> DropPolicy:
    return NaivePolicy()


# -- the Table-1 ablations ----------------------------------------------------

#: Pass-through knobs every PardPolicy-based ablation still exposes (its
#: *defining* knob is fixed by the ablation itself and not re-exposed).
_ABLATION_PARAMS = (
    ParamSpec("lam", "float", 0.1,
              help="batch-wait quantile lambda (Figure 14a)"),
    ParamSpec("samples", "int", 10_000,
              help="Monte-Carlo samples for the wait distribution"),
)

_OC_PARAMS = (
    ParamSpec("threshold", "float", 0.020,
              help="avg queueing delay marking a module overloaded (s)"),
    ParamSpec("alpha", "float", 0.4,
              help="fraction of entry traffic shed while overloaded"),
)


def _register_ablations() -> None:
    """Fold every Table-1 ablation into the unified registry.

    ``PARD`` itself is already registered above (with the full knob set);
    each remaining ablation keeps its fixed defining knob and declares only
    the pass-through parameters its factory genuinely accepts.
    """
    for name, factory in ABLATIONS.items():
        if name in POLICIES:
            continue
        params = _OC_PARAMS if name == "PARD-oc" else _ABLATION_PARAMS
        register_policy(name, params=params, kind="ablation")(factory)


_register_ablations()


# -- construction -------------------------------------------------------------

def known_policies() -> list[str]:
    """All constructible drop-policy names (systems + ablations)."""
    return sorted(POLICIES)


def known_admissions() -> list[str]:
    """All registered shared-cluster admission policy names."""
    return sorted(ADMISSIONS)


def policy_params(name: str) -> tuple[ParamSpec, ...]:
    """The declared parameter schema of a drop policy (introspection)."""
    if name not in POLICIES:
        raise ValueError(
            f"unknown policy {name!r}; known: {', '.join(known_policies())}"
        )
    return POLICIES[name].params


def admission_params(name: str) -> tuple[ParamSpec, ...]:
    """The declared parameter schema of an admission policy."""
    if name not in ADMISSIONS:
        raise ValueError(
            f"unknown admission policy {name!r}; "
            f"known: {', '.join(known_admissions())}"
        )
    return ADMISSIONS[name].params


def make_policy(policy: PolicySpec | str, seed: int = 0) -> DropPolicy:
    """Construct the specified policy, seeded for deterministic replay.

    Accepts a bare name (the legacy form) or a full :class:`PolicySpec`.
    When the spec carries params, the constructed policy is renamed to the
    spec's :meth:`~repro.policies.spec.PolicySpec.label` so every result
    table distinguishes the variant from its default-configured sibling.
    """
    spec = PolicySpec.coerce(policy).validate()
    info = POLICIES[spec.name]
    built = info.factory(seed, **spec.param_dict())
    if spec.params:
        built.name = spec.label()
    return built


def make_admission(
    policy: PolicySpec | str,
    weights: Mapping[str, float],
    seed: int = 0,
):
    """Construct the specified cross-app admission policy.

    ``weights`` maps tenant label -> declared weight (the fair shares).
    The returned object is the :data:`~repro.simulation.tenancy.
    AdmissionHook` the shared cluster consults on every module entry.
    """
    spec = PolicySpec.coerce(policy).validate(kind="admission")
    info = ADMISSIONS[spec.name]
    built = info.factory(dict(weights), seed, **spec.param_dict())
    if spec.params:
        built.name = spec.label()
    return built
