"""Name -> policy construction shared by the CLI, configs and sweep workers.

Policies are constructed from *names* rather than passing factory callables
around because sweep worker processes receive their work unit by pickle:
a string survives the trip, a closure does not.  Every constructor here is
seeded from the experiment seed so a sweep cell is fully determined by
``(config, policy name)``.
"""

from __future__ import annotations

from typing import Callable

from .ablations import ABLATIONS, make_ablation
from .base import DropPolicy
from .clipper import ClipperPlusPlusPolicy
from .naive import NaivePolicy
from .nexus import NexusPolicy

#: The four systems compared throughout §5.2 (name -> seeded factory).
SYSTEM_FACTORIES: dict[str, Callable[[int], DropPolicy]] = {}


def register_policy(
    name: str,
) -> Callable[[Callable[[int], DropPolicy]], Callable[[int], DropPolicy]]:
    """Decorator registering a seeded policy factory under ``name``.

    The same name-keyed pattern as :func:`repro.pipeline.applications.
    register_application` and :func:`repro.workload.generators.
    register_trace`, so scenarios and sweep workers resolve policies from
    plain strings.
    """

    def decorate(fn: Callable[[int], DropPolicy]) -> Callable[[int], DropPolicy]:
        # Ablation names may legitimately shadow a system name (PARD is
        # both); only a second *system* registration is an error.
        if name in SYSTEM_FACTORIES:
            raise ValueError(f"policy {name!r} already registered")
        SYSTEM_FACTORIES[name] = fn
        return fn

    return decorate


@register_policy("PARD")
def _pard(seed: int) -> DropPolicy:
    return make_ablation("PARD", seed=seed)


@register_policy("Nexus")
def _nexus(seed: int) -> DropPolicy:
    return NexusPolicy()


@register_policy("Clipper++")
def _clipper(seed: int) -> DropPolicy:
    return ClipperPlusPlusPolicy()


@register_policy("Naive")
def _naive(seed: int) -> DropPolicy:
    return NaivePolicy()


def known_policies() -> list[str]:
    """All constructible policy names (systems + ablations)."""
    return sorted(set(SYSTEM_FACTORIES) | set(ABLATIONS))


def make_policy(name: str, seed: int = 0) -> DropPolicy:
    """Construct the named policy, seeded for deterministic replay."""
    if name in SYSTEM_FACTORIES:
        return SYSTEM_FACTORIES[name](seed)
    if name in ABLATIONS:
        return ABLATIONS[name](seed=seed)
    raise ValueError(
        f"unknown policy {name!r}; known: {', '.join(known_policies())}"
    )
