"""Name -> policy construction shared by the CLI, configs and sweep workers.

Policies are constructed from *names* rather than passing factory callables
around because sweep worker processes receive their work unit by pickle:
a string survives the trip, a closure does not.  Every constructor here is
seeded from the experiment seed so a sweep cell is fully determined by
``(config, policy name)``.
"""

from __future__ import annotations

from typing import Callable

from .ablations import ABLATIONS, make_ablation
from .base import DropPolicy
from .clipper import ClipperPlusPlusPolicy
from .naive import NaivePolicy
from .nexus import NexusPolicy

#: The four systems compared throughout §5.2.
SYSTEM_FACTORIES: dict[str, Callable[[int], DropPolicy]] = {
    "PARD": lambda seed: make_ablation("PARD", seed=seed),
    "Nexus": lambda seed: NexusPolicy(),
    "Clipper++": lambda seed: ClipperPlusPlusPolicy(),
    "Naive": lambda seed: NaivePolicy(),
}


def known_policies() -> list[str]:
    """All constructible policy names (systems + ablations)."""
    return sorted(set(SYSTEM_FACTORIES) | set(ABLATIONS))


def make_policy(name: str, seed: int = 0) -> DropPolicy:
    """Construct the named policy, seeded for deterministic replay."""
    if name in SYSTEM_FACTORIES:
        return SYSTEM_FACTORIES[name](seed)
    if name in ABLATIONS:
        return ABLATIONS[name](seed=seed)
    raise ValueError(
        f"unknown policy {name!r}; known: {', '.join(known_policies())}"
    )
