"""Table-1 ablation baselines.

Every ablation disables or replaces exactly one of PARD's design choices,
matching the paper's §5.3:

========== =============================================================
PARD-back   considers preceding modules only (L_sub = 0)
PARD-sf     ignores Q and W of subsequent modules (L_sub = sum d_i)
PARD-oc     DAGOR overload control on queueing delay
PARD-split  fixed per-module SLO split
PARD-WCL    dynamic worst-case-latency budget split
PARD-lower  assumes downstream batch wait = 0
PARD-upper  assumes downstream batch wait = sum d_i
PARD-FCFS   drops by arrival order
PARD-HBF    High-Budget-First only
PARD-LBF    Low-Budget-First only (SHEPHERD-like)
PARD-instant adaptive priority without delayed transition
========== =============================================================
"""

from __future__ import annotations

from typing import Callable

from ..core.broker import SubMode
from ..core.policy import BudgetMode, PardPolicy
from ..core.priority import PriorityMode
from ..core.state_planner import WaitMode
from .base import DropPolicy
from .overload_control import OverloadControlPolicy


def pard(seed: int = 0, lam: float = 0.1, samples: int = 2000) -> PardPolicy:
    """The full PARD policy (paper defaults: lambda = 0.1)."""
    return PardPolicy(lam=lam, samples=samples, seed=seed, name="PARD")


def pard_back(seed: int = 0, **kw) -> PardPolicy:
    """Backward-only estimation (Clockwork / Nexus / Scrooge style)."""
    return PardPolicy(sub_mode=SubMode.NONE, seed=seed, name="PARD-back", **kw)


def pard_sf(seed: int = 0, **kw) -> PardPolicy:
    """Static-forward estimation: downstream durations only (DREAM style)."""
    return PardPolicy(sub_mode=SubMode.DURATIONS, seed=seed, name="PARD-sf", **kw)


def pard_oc(
    seed: int = 0, threshold: float = 0.020, alpha: float = 0.4
) -> OverloadControlPolicy:
    """DAGOR-style overload control."""
    return OverloadControlPolicy(threshold=threshold, alpha=alpha, seed=seed)


def pard_split(seed: int = 0, **kw) -> PardPolicy:
    """Fixed per-module SLO split (Clipper++-style budgets, PARD mechanics)."""
    return PardPolicy(budget_mode=BudgetMode.SPLIT, seed=seed, name="PARD-split", **kw)


def pard_wcl(seed: int = 0, **kw) -> PardPolicy:
    """Dynamic worst-case-latency budget split."""
    return PardPolicy(budget_mode=BudgetMode.WCL, seed=seed, name="PARD-WCL", **kw)


def pard_lower(seed: int = 0, **kw) -> PardPolicy:
    """Assume zero downstream batch wait (under-estimation extreme)."""
    return PardPolicy(wait_mode=WaitMode.LOWER, seed=seed, name="PARD-lower", **kw)


def pard_upper(seed: int = 0, **kw) -> PardPolicy:
    """Assume maximal downstream batch wait (over-estimation extreme)."""
    return PardPolicy(wait_mode=WaitMode.UPPER, seed=seed, name="PARD-upper", **kw)


def pard_fcfs(seed: int = 0, **kw) -> PardPolicy:
    """PARD estimation with arrival-order decisions (no DEPQ)."""
    return PardPolicy(priority_mode=PriorityMode.FCFS, seed=seed, name="PARD-FCFS", **kw)


def pard_hbf(seed: int = 0, **kw) -> PardPolicy:
    """Always High-Budget-First."""
    return PardPolicy(priority_mode=PriorityMode.HBF, seed=seed, name="PARD-HBF", **kw)


def pard_lbf(seed: int = 0, **kw) -> PardPolicy:
    """Always Low-Budget-First (SHEPHERD-like earliest-deadline order)."""
    return PardPolicy(priority_mode=PriorityMode.LBF, seed=seed, name="PARD-LBF", **kw)


def pard_instant(seed: int = 0, **kw) -> PardPolicy:
    """Adaptive priority without the delayed-transition hysteresis."""
    return PardPolicy(
        priority_mode=PriorityMode.INSTANT, seed=seed, name="PARD-instant", **kw
    )


ABLATIONS: dict[str, Callable[..., DropPolicy]] = {
    "PARD": pard,
    "PARD-back": pard_back,
    "PARD-sf": pard_sf,
    "PARD-oc": pard_oc,
    "PARD-split": pard_split,
    "PARD-WCL": pard_wcl,
    "PARD-lower": pard_lower,
    "PARD-upper": pard_upper,
    "PARD-FCFS": pard_fcfs,
    "PARD-HBF": pard_hbf,
    "PARD-LBF": pard_lbf,
    "PARD-instant": pard_instant,
}


def make_ablation(name: str, seed: int = 0) -> DropPolicy:
    """Instantiate an ablation policy by its Table-1 name."""
    try:
        factory = ABLATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown ablation {name!r}; known: {sorted(ABLATIONS)}"
        ) from None
    return factory(seed=seed)
