"""Nexus baseline: reactive "Early Drop" on the end-to-end SLO.

Nexus (SOSP '19) drops requests that cannot complete the *current
module's* execution within the latency objective — i.e. it accounts for
L_pre + L_cur but ignores everything downstream (the paper's Figure 1b).
Two faithful formulations are provided:

* **per-request** (default): at the decision point t_b, with the expected
  batch start t_e known, drop iff ``t_e - t_s + d_k > SLO``;
* **windowed scan** (``windowed=True``, the paper's §5.1 description):
  scan the FIFO queue in arrival order with a sliding window equal to the
  batch size, stop at the first position where *all* requests in the
  window can meet the latency objective, and drop everything earlier.

Both reproduce Nexus's drop-too-late behaviour: early modules almost
never trigger the rule because d_k alone rarely exceeds the remaining
budget there, so drops cluster in the last modules.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..interfaces import DropContext, DropPolicy, RequestQueue
from ..simulation.request import DropReason, Request, RequestStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulation.module import Module


class NexusPolicy(DropPolicy):
    """Reactive early-drop on the full SLO, arrival order, FIFO queue."""

    name = "Nexus"

    def __init__(self, windowed: bool = False) -> None:
        super().__init__()
        self.windowed = windowed

    def make_queue(self, module: "Module") -> RequestQueue:
        if self.windowed:
            return _NexusScanQueue(module)
        return super().make_queue(module)

    def should_drop(self, ctx: DropContext) -> DropReason | None:
        finish_estimate = ctx.expected_start - ctx.request.sent_at + ctx.batch_duration
        if finish_estimate > ctx.slo:
            return DropReason.ESTIMATED_VIOLATION
        return None

    def describe(self) -> str:
        return f"{self.name} [windowed={self.windowed}]"


class _NexusScanQueue(RequestQueue):
    """FIFO queue implementing Nexus's sliding-window scan on pop.

    On every pop the queue scans from the head with a window of the
    module's target batch size, drops every request before the first
    all-feasible window, and hands out the window head.  Requests dropped
    here are routed through the cluster exactly like policy drops.
    """

    def __init__(self, module: "Module") -> None:
        self._module = module
        self._dq: deque[Request] = deque()

    def push(self, request: Request, now: float) -> None:
        self._dq.append(request)

    def __len__(self) -> int:
        return len(self._dq)

    def _feasible(self, request: Request, now: float) -> bool:
        module = self._module
        d_k = module.effective_duration(now)
        # Expected start: the least-loaded worker's current estimate; the
        # queue cannot know which worker pops, so it uses its own module's
        # earliest expected start.
        t_e = min((w.expected_start for w in module.workers), default=now)
        return max(t_e, now) - request.sent_at + d_k <= request.slo

    def pop(self, now: float) -> Request | None:
        module = self._module
        window = max(1, module.target_batch)
        while self._dq:
            # Check the window starting at the head.
            head_ok = True
            for i, request in enumerate(self._dq):
                if i >= window:
                    break
                if request.status is not RequestStatus.IN_FLIGHT:
                    continue
                if not self._feasible(request, now):
                    head_ok = False
                    break
            if head_ok:
                return self._dq.popleft()
            # Drop the head and slide the window forward.
            victim = self._dq.popleft()
            if victim.status is RequestStatus.IN_FLIGHT:
                visit = victim.visit(module.spec.id)
                visit.t_batched = now
                module.stats.record_drop()
                module.cluster.drop(
                    victim, module.spec.id, DropReason.ESTIMATED_VIOLATION
                )
        return None
