"""PolicySpec: a policy as a point in configuration space.

The paper's evaluation is a study in policy *parameterization*: PARD and
its Table-1 ablations differ only in knobs (``lam``, ``sub_mode``,
``wait_mode``, ``priority_mode``, ``budget_mode``), and the baselines carry
tuning constants of their own.  A :class:`PolicySpec` names a registered
policy plus the knob values to construct it with — plain data that
round-trips through dict/JSON, pickles into sweep workers and fingerprints
into the disk cache, so "which system" becomes "which point in
policy-configuration space" and a Figure-11-style ablation grid is one
serializable axis.

Parameters are *declared* by the registry (:class:`ParamSpec`: name, type,
default, choices) and validated here at spec-construction time — a typo'd
knob or an out-of-range choice fails when the spec is built, not minutes
into a sweep.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = ["ParamSpec", "PolicySpec"]

#: JSON-serializable scalar types a policy parameter may hold.
_SCALARS = (bool, int, float, str)


@dataclass(frozen=True)
class ParamSpec:
    """One declared, introspectable policy parameter.

    ``type`` is a type *name* ("float", "int", "str", "bool") rather than a
    Python type so the declaration itself serializes (``repro list
    --params`` prints it verbatim).  ``choices`` restricts the value to an
    enumerated set (mode knobs); ``default`` documents what the factory
    uses when the parameter is not given.
    """

    name: str
    type: str
    default: Any
    choices: tuple = ()
    help: str = ""

    def __post_init__(self) -> None:
        if self.type not in ("float", "int", "str", "bool"):
            raise ValueError(f"unknown param type {self.type!r}")
        object.__setattr__(self, "choices", tuple(self.choices))

    def coerce(self, value: Any, where: str) -> Any:
        """Validate ``value`` against this declaration; returns it coerced.

        Numeric spelling is normalised (JSON authors write ``8`` where
        Python holds ``8.0``) so equal specs fingerprint equally; genuine
        type mismatches raise with the offending policy/param named.
        """
        if self.type == "bool":
            if not isinstance(value, bool):
                raise ValueError(f"{where} must be true/false, got {value!r}")
            out: Any = value
        elif self.type == "int":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{where} must be an integer, got {value!r}")
            if int(value) != value:
                raise ValueError(f"{where} must be an integer, got {value!r}")
            out = int(value)
        elif self.type == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{where} must be a number, got {value!r}")
            out = float(value)
        else:
            if not isinstance(value, str):
                raise ValueError(f"{where} must be a string, got {value!r}")
            out = value
        if self.choices and out not in self.choices:
            raise ValueError(
                f"{where} must be one of {list(self.choices)}, got {value!r}"
            )
        return out

    def describe(self) -> str:
        """One cell of ``repro list --params`` output."""
        kind = "|".join(str(c) for c in self.choices) if self.choices else self.type
        return f"{self.name}={self.default} ({kind})"


@dataclass(frozen=True)
class PolicySpec:
    """A registered policy name plus typed construction parameters.

    The first-class unit of policy configuration: scenarios carry one,
    sweep axes vary one parameter at a time (``with_params``), and the
    registry constructs the live policy from it
    (:func:`repro.policies.registry.make_policy`).  ``params`` holds only
    the *authored* knobs — unset parameters fall to the factory defaults,
    so a bare ``PolicySpec("PARD")`` is byte-identical to the legacy string
    form in serialized scenarios (see :meth:`to_compact`).
    """

    name: str = "PARD"
    params: tuple = ()  # sorted ((key, value), ...) pairs

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"policy name must be a non-empty string, "
                             f"got {self.name!r}")
        raw: Iterable
        if isinstance(self.params, Mapping):
            raw = self.params.items()
        else:
            raw = self.params
        pairs = sorted((str(k), v) for k, v in raw)
        keys = [k for k, _ in pairs]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate params for policy {self.name!r}")
        for key, value in pairs:
            if not isinstance(value, _SCALARS):
                raise ValueError(
                    f"policy param {key!r} must be a scalar "
                    f"(bool/int/float/str), got {type(value).__name__}"
                )
        object.__setattr__(self, "params", tuple(pairs))
        # Validate eagerly when the name is already registered (the normal
        # case); unregistered names stay lazy so registration order is
        # flexible, and validate() is the authoritative check.
        schema = self._schema()
        if schema is not None:
            object.__setattr__(
                self, "params", self._coerced(schema)
            )

    # -- validation ---------------------------------------------------------

    def _schema(self) -> "tuple[ParamSpec, ...] | None":
        """The declared parameter schema, or None when not yet registered."""
        from .registry import ADMISSIONS, POLICIES

        info = POLICIES.get(self.name) or ADMISSIONS.get(self.name)
        return None if info is None else info.params

    def _coerced(self, schema: "tuple[ParamSpec, ...]") -> tuple:
        declared = {p.name: p for p in schema}
        unknown = [k for k, _ in self.params if k not in declared]
        if unknown:
            known = sorted(declared) or ["<none>"]
            raise ValueError(
                f"policy {self.name!r} does not accept params {unknown}; "
                f"declared: {', '.join(known)}"
            )
        return tuple(
            (k, declared[k].coerce(v, f"policy {self.name!r} param {k!r}"))
            for k, v in self.params
        )

    def validate(self, kind: str = "policy") -> "PolicySpec":
        """Resolve the name in the registry and re-check every param.

        ``kind`` selects the registry: ``"policy"`` for drop policies,
        ``"admission"`` for shared-cluster admission (fairness) policies.
        Returns ``self`` so callers can chain.
        """
        from .registry import ADMISSIONS, POLICIES, known_admissions, known_policies

        if kind == "admission":
            registry, known = ADMISSIONS, known_admissions()
        else:
            registry, known = POLICIES, known_policies()
        info = registry.get(self.name)
        if info is None:
            raise ValueError(
                f"unknown {kind} {self.name!r}; known: {', '.join(known)}"
            )
        self._coerced(info.params)
        return self

    # -- access -------------------------------------------------------------

    def param_dict(self) -> dict:
        return dict(self.params)

    def with_params(self, **overrides: Any) -> "PolicySpec":
        """A new spec with ``overrides`` merged over the current params.

        The sweep-axis primitive: ``spec.with_params(lam=0.3)`` is one cell
        of a ``policy.lam`` grid.
        """
        merged = self.param_dict()
        merged.update(overrides)
        return PolicySpec(name=self.name, params=merged)

    def label(self) -> str:
        """Display / cache label: the name, plus any authored params.

        Sweep tables and scenario labels use this, so two variants of one
        policy never collapse into the same row.
        """
        if not self.params:
            return self.name
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}({inner})"

    # -- serialisation ------------------------------------------------------

    @classmethod
    def coerce(cls, value: "PolicySpec | str | Mapping") -> "PolicySpec":
        """Accept every spelling a policy may arrive as.

        Bare strings are the legacy form every existing scenario file uses;
        mappings are the explicit form; specs pass through.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            return cls.from_dict(dict(value))
        raise ValueError(
            f"policy must be a name, a mapping or a PolicySpec, "
            f"got {type(value).__name__}"
        )

    def to_dict(self) -> dict:
        return {"name": self.name, "params": self.param_dict()}

    def to_compact(self) -> "str | dict":
        """The serialized form scenarios embed.

        A param-less spec serializes back to the bare string, so legacy
        files round-trip byte-identically and the two spellings share one
        fingerprint.
        """
        if not self.params:
            return self.name
        return self.to_dict()

    @classmethod
    def from_dict(cls, data: "dict | str") -> "PolicySpec":
        if isinstance(data, str):
            return cls(name=data)
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise ValueError(f"unknown policy keys: {sorted(unknown)}")
        if "name" not in data:
            raise ValueError("policy mapping requires a 'name'")
        return cls(name=str(data["name"]), params=dict(data.get("params", {})))

    def fingerprint(self) -> str:
        """Stable hex digest of the configured point (cache identity).

        Canonical over numeric spelling even when the name is not yet
        registered (schema coercion then never ran): ``lam=1`` and
        ``lam=1.0`` must share one cache identity either way.
        """

        def canonical(value):
            if isinstance(value, bool):
                return value
            if isinstance(value, int):
                return float(value)
            return value

        compact = self.to_compact()
        if isinstance(compact, dict):
            compact = dict(compact, params={
                k: canonical(v) for k, v in compact["params"].items()
            })
        blob = json.dumps(compact, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
