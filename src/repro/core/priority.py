"""Adaptive request priority (§4.3).

Requests in each worker's DEPQ are keyed by their remaining latency budget
(equivalently, absolute deadline).  Depending on the module load factor
``mu = T_in / T_m`` the broker pops from one end or the other:

* ``mu > 1 + eps`` — High Budget First (HBF): the module is
  under-provisioned; serving large-budget requests first keeps queueing
  from eating everyone's budget.
* ``mu < 1 - eps`` — Low Budget First (LBF): steady workload; serving
  tight-budget requests first (earliest-deadline-first) avoids drops
  caused by batch-wait uncertainty.
* in between — keep the previous mode (delayed transition), with
  ``eps = sum |T_in - T_s| / sum T_in`` computed from the smoothed
  workload, so bursty traces get a wider hysteresis band.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..interfaces import RequestQueue
from ..simulation.request import Request
from .depq import MinMaxHeap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulation.module import Module


class PriorityMode:
    """Queue-ordering strategies (fixed modes double as ablations)."""

    ADAPTIVE = "adaptive"  # PARD: HBF/LBF with delayed transition
    INSTANT = "instant"  # PARD-instant: HBF/LBF, no hysteresis
    HBF = "hbf"  # PARD-HBF: always High Budget First
    LBF = "lbf"  # PARD-LBF: always Low Budget First (SHEPHERD-like)
    FCFS = "fcfs"  # PARD-FCFS: arrival order (Nexus/Clipper++-like)

    ALL = (ADAPTIVE, INSTANT, HBF, LBF, FCFS)


@dataclass
class TransitionEvent:
    """Recorded HBF/LBF switch (drives Figure 13)."""

    time: float
    module_id: str
    mode: str
    load_factor: float
    epsilon: float


class LoadSmoother:
    """Tracks T_in samples and the smoothed workload T_s for epsilon.

    ``eps = sum |T_in - T_s| / sum T_in`` over the retained sample window —
    small for stable traces, large for bursty ones, which widens the
    hysteresis band exactly when workload fluctuations would otherwise
    cause priority flapping.
    """

    def __init__(self, history: int = 10, smooth: int = 5) -> None:
        if history < 1 or smooth < 1:
            raise ValueError("history and smooth must be >= 1")
        self._rates: deque[float] = deque(maxlen=history)
        self._smooth_n = smooth

    def record(self, rate: float) -> None:
        self._rates.append(rate)

    def smoothed(self) -> float:
        """T_s: sliding-window average of recent input rates."""
        if not self._rates:
            return 0.0
        recent = list(self._rates)[-self._smooth_n :]
        return sum(recent) / len(recent)

    def epsilon(self) -> float:
        """Hysteresis half-width from workload variability."""
        if not self._rates:
            return 0.0
        rates = list(self._rates)
        total = sum(rates)
        if total <= 0:
            return 0.0
        # |T_in - T_s| accumulated against the running smoothed rate.
        dev = 0.0
        window: deque[float] = deque(maxlen=self._smooth_n)
        for r in rates:
            window.append(r)
            t_s = sum(window) / len(window)
            dev += abs(r - t_s)
        return dev / total


class AdaptivePriorityController:
    """Per-module HBF/LBF mode selection with delayed transition."""

    def __init__(self, mode: str = PriorityMode.ADAPTIVE) -> None:
        if mode not in PriorityMode.ALL:
            raise ValueError(f"unknown priority mode {mode!r}")
        self.mode = mode
        self._current: dict[str, str] = {}
        self._smoothers: dict[str, LoadSmoother] = {}
        self.transitions: list[TransitionEvent] = []
        self.load_history: list[tuple[float, str, float]] = []

    def current(self, module_id: str) -> str:
        """Active ordering for ``module_id``: 'hbf', 'lbf' or 'fcfs'."""
        if self.mode == PriorityMode.FCFS:
            return PriorityMode.FCFS
        if self.mode in (PriorityMode.HBF, PriorityMode.LBF):
            return self.mode
        return self._current.get(module_id, PriorityMode.LBF)

    @staticmethod
    def effective_load(module: "Module", now: float) -> float:
        """Workload intensity mu, including backlog pressure.

        ``T_in / T_m`` alone goes quiet the moment a burst ends even though
        the accumulated queue still exceeds what the module can drain within
        an SLO; the backlog term keeps HBF active until the queue is
        serviceable again (the paper's "workload intensity" is measured the
        same way on the worker side).
        """
        t_m = module.throughput()
        if t_m <= 0:
            return float("inf")
        backlog = module.queue_length() / (t_m * module.cluster.slo)
        return module.stats.input_rate(now) / t_m + backlog

    def update(self, module: "Module", now: float) -> str:
        """Re-evaluate the mode for one module at a sync tick."""
        if self.mode in (PriorityMode.FCFS, PriorityMode.HBF, PriorityMode.LBF):
            return self.current(module.spec.id)
        mid = module.spec.id
        smoother = self._smoothers.setdefault(mid, LoadSmoother())
        rate = module.stats.input_rate(now)
        smoother.record(rate)
        mu = self.effective_load(module, now)
        eps = 0.0 if self.mode == PriorityMode.INSTANT else smoother.epsilon()
        self.load_history.append((now, mid, mu))
        prev = self._current.get(mid, PriorityMode.LBF)
        if mu > 1.0 + eps:
            new = PriorityMode.HBF
        elif mu < 1.0 - eps:
            new = PriorityMode.LBF
        else:
            new = prev  # delayed transition: hold inside the dead band
        if new != prev or mid not in self._current:
            self._current[mid] = new
            self.transitions.append(
                TransitionEvent(now, mid, new, mu, eps)
            )
        return new


class DeadlineDepqQueue(RequestQueue):
    """Worker queue: DEPQ keyed by absolute deadline.

    Remaining budget at a common 'now' orders identically to the absolute
    deadline ``t_s + SLO``, so the key never needs re-weighting as time
    passes.  LBF pops the earliest deadline (min end), HBF the latest
    (max end).  The FCFS ablation uses a plain FIFO queue instead (the
    policy's ``make_queue`` handles that), so modes never mix here.
    """

    __slots__ = ("_module", "_module_id", "_controller", "_heap")

    def __init__(self, module: "Module", controller: AdaptivePriorityController) -> None:
        self._module = module
        self._module_id = module.spec.id
        self._controller = controller
        self._heap: MinMaxHeap[Request] = MinMaxHeap()

    def push(self, request: Request, now: float) -> None:
        self._heap.push(request.deadline, request)

    def pop(self, now: float) -> Request | None:
        heap = self._heap
        if not heap:
            return None
        mode = self._controller.current(self._module_id)
        if mode == PriorityMode.HBF:
            return heap.pop_max()
        return heap.pop_min()

    def __len__(self) -> int:
        return len(self._heap)
