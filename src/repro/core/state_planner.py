"""State Planner: per-module controller state, synchronised cluster-wide.

Each module's State Planner (Figure 4, steps 1-3) monitors worker runtime
state — queueing delay, batch size, throughput — synchronises it across
modules once per ``sync_interval``, and derives the latency budget the
current module must leave for its successors:

    L_sub(k) = sum_{i>k} q_i  +  sum_{i>k} d_i  +  w_k

with w_k the lambda-quantile batch-wait estimate of §4.2.  For DAG
pipelines the estimate is computed per downstream path and the maximum is
used (§4.2 / §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .batch_wait import BatchWaitEstimator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulation.cluster import Cluster


@dataclass(frozen=True)
class ModuleState:
    """One module's synchronised runtime snapshot."""

    module_id: str
    avg_queue_delay: float  # q_i: sliding-window average queueing delay
    batch_size: int  # current planned batch size
    duration: float  # d_i: profiled execution duration at that batch size
    input_rate: float  # T_in
    throughput: float  # T_m
    observed_waits: tuple[float, ...]  # recent runtime batch-wait samples


class WaitMode:
    """How the forward batch wait is estimated (ablation knob)."""

    QUANTILE = "quantile"  # PARD: w_k = F^{-1}(lambda)
    LOWER = "lower"  # PARD-lower: w_k = 0
    UPPER = "upper"  # PARD-upper: w_k = sum d_i

    ALL = (QUANTILE, LOWER, UPPER)


class PathMode:
    """How per-path downstream estimates combine at a fork."""

    #: PARD: worst case over all downstream DAG paths (correct for static
    #: fan-out DAGs, conservative for dynamic per-request paths).
    MAX = "max"
    #: §5.2 future-work extension: weight each path by its observed branch
    #: probability (for pipelines with request-specific dynamic paths).
    PREDICTED = "predicted"

    ALL = (MAX, PREDICTED)


class StatePlanner:
    """Synchronises module states and serves downstream-latency estimates."""

    def __init__(
        self,
        lam: float = 0.1,
        samples: int = 10_000,
        wait_mode: str = WaitMode.QUANTILE,
        use_observed_waits: bool = True,
        path_mode: str = PathMode.MAX,
        seed: int = 0,
    ) -> None:
        if wait_mode not in WaitMode.ALL:
            raise ValueError(f"unknown wait mode {wait_mode!r}")
        if path_mode not in PathMode.ALL:
            raise ValueError(f"unknown path mode {path_mode!r}")
        self.lam = lam
        self.wait_mode = wait_mode
        self.path_mode = path_mode
        self.use_observed_waits = use_observed_waits
        self._estimator = BatchWaitEstimator(lam=lam, samples=samples, seed=seed)
        self.cluster: "Cluster | None" = None
        self._states: dict[str, ModuleState] = {}
        self._sub_estimates: dict[str, float] = {}
        self._path_details: dict[str, list[dict[str, float]]] = {}

    def bind(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.refresh(0.0)

    # -- state synchronisation (steps 1-2 in Figure 4) -----------------------

    def snapshot(self, now: float) -> dict[str, ModuleState]:
        """Collect every module's current runtime state."""
        assert self.cluster is not None, "planner not bound to a cluster"
        states: dict[str, ModuleState] = {}
        for mid, module in self.cluster.modules.items():
            waits = (
                tuple(module.stats.recent_batch_waits(now))
                if self.use_observed_waits
                else ()
            )
            states[mid] = ModuleState(
                module_id=mid,
                avg_queue_delay=module.stats.avg_queue_delay(now),
                batch_size=module.effective_batch(now),
                duration=module.effective_duration(now),
                input_rate=module.stats.input_rate(now),
                throughput=module.throughput(),
                observed_waits=waits,
            )
        return states

    def refresh(self, now: float) -> None:
        """Synchronise states and recompute every module's L_sub estimate."""
        assert self.cluster is not None, "planner not bound to a cluster"
        self._states = self.snapshot(now)
        spec = self.cluster.spec
        self._sub_estimates = {}
        self._path_details = {}
        for mid in spec.module_ids:
            details: list[dict[str, float]] = []
            estimates: list[float] = []
            weights: list[float] = []
            for path in spec.paths_from(mid):
                est, parts = self._path_estimate(path)
                details.append(parts)
                estimates.append(est)
                weights.append(self._path_probability(mid, path))
            if not estimates:
                combined = 0.0
            elif self.path_mode == PathMode.PREDICTED:
                total_w = sum(weights)
                combined = (
                    sum(e * w for e, w in zip(estimates, weights)) / total_w
                    if total_w > 0
                    else max(estimates)
                )
            else:
                combined = max(estimates)
            self._sub_estimates[mid] = combined
            self._path_details[mid] = details

    def _path_probability(self, module_id: str, path: list[str]) -> float:
        """Observed probability of a request taking ``path`` from here.

        Product of branch probabilities at every fork along the path; 1.0
        everywhere for chains (so PREDICTED == MAX on chains).
        """
        assert self.cluster is not None
        prob = 1.0
        prev = module_id
        for nxt in path:
            prob *= self.cluster.branch_probability(prev, nxt)
            prev = nxt
        return prob

    def _path_estimate(self, path: list[str]) -> tuple[float, dict[str, float]]:
        """(L_sub, components) along one downstream path."""
        if not path:
            return 0.0, {"queue": 0.0, "exec": 0.0, "wait": 0.0}
        states = [self._states[mid] for mid in path]
        sum_q = sum(s.avg_queue_delay for s in states)
        durations = [s.duration for s in states]
        sum_d = sum(durations)
        if self.wait_mode == WaitMode.LOWER:
            w = 0.0
        elif self.wait_mode == WaitMode.UPPER:
            w = sum_d
        else:
            observed = [list(s.observed_waits) for s in states]
            w = self._estimator.estimate(durations, observed)
        parts = {"queue": sum_q, "exec": sum_d, "wait": w}
        return sum_q + sum_d + w, parts

    # -- queries (step 3 in Figure 4) ----------------------------------------

    def sub_estimate(self, module_id: str) -> float:
        """L_sub for a request currently at ``module_id``.

        Maximum over all downstream DAG paths.  Returns 0 for exit modules.
        """
        return self._sub_estimates.get(module_id, 0.0)

    def path_components(self, module_id: str) -> list[dict[str, float]]:
        """Per-path (queue, exec, wait) components — for analysis/benches."""
        return self._path_details.get(module_id, [])

    def state(self, module_id: str) -> ModuleState:
        """Last synchronised state of one module."""
        return self._states[module_id]

    def sync_payload_bytes(self) -> int:
        """Approximate per-sync state payload size in bytes (overhead bench).

        Mirrors the paper's §5.4 accounting: queueing delay, batch size,
        throughput, drop rate and the batch-wait distribution digest.
        """
        per_module = 8 * 4  # four float64 scalars
        digest = 8 * 32  # 32-point wait-distribution digest
        return (per_module + digest) * len(self._states)
