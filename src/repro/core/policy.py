"""The PARD drop policy: proactive dropping + adaptive priority.

This is the paper's primary contribution assembled from its parts:

* :class:`~repro.core.state_planner.StatePlanner` — synchronised module
  states and the forward estimate L_sub (with the quantile sweet-spot w_k);
* :class:`~repro.core.broker.RequestBroker` — Equation-3 end-to-end
  estimates at decision time t_b;
* :class:`~repro.core.priority.DeadlineDepqQueue` — remaining-budget DEPQ
  with adaptive HBF/LBF selection and delayed transition.

Every Table-1 ablation is a configuration of this class (see
:mod:`repro.policies.ablations`); ``PardPolicy()`` with defaults is PARD.
"""

from __future__ import annotations

from ..interfaces import DropContext, DropPolicy, FifoQueue, RequestQueue
from ..simulation.request import DropReason
from .broker import RequestBroker, SubMode
from .priority import AdaptivePriorityController, DeadlineDepqQueue, PriorityMode
from .state_planner import PathMode, StatePlanner, WaitMode


class BudgetMode:
    """Which budget the estimate is compared against (ablation knob)."""

    E2E = "e2e"  # PARD: whole-pipeline SLO vs end-to-end estimate
    SPLIT = "split"  # PARD-split: fixed per-module budget split
    WCL = "wcl"  # PARD-WCL: dynamic worst-case-latency budget split

    ALL = (E2E, SPLIT, WCL)


class PardPolicy(DropPolicy):
    """Proactive request dropping with adaptive request priority."""

    name = "PARD"

    def __init__(
        self,
        lam: float = 0.1,
        samples: int = 10_000,
        sub_mode: str = SubMode.FULL,
        wait_mode: str = WaitMode.QUANTILE,
        priority_mode: str = PriorityMode.ADAPTIVE,
        budget_mode: str = BudgetMode.E2E,
        path_mode: str = PathMode.MAX,
        use_observed_waits: bool = True,
        seed: int = 0,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if budget_mode not in BudgetMode.ALL:
            raise ValueError(f"unknown budget mode {budget_mode!r}")
        self.planner = StatePlanner(
            lam=lam,
            samples=samples,
            wait_mode=wait_mode,
            use_observed_waits=use_observed_waits,
            path_mode=path_mode,
            seed=seed,
        )
        self.broker = RequestBroker(self.planner, sub_mode=sub_mode)
        self.priority = AdaptivePriorityController(mode=priority_mode)
        self.budget_mode = budget_mode
        self._budget_shares: dict[str, float] = {}
        # module id -> share of the heaviest entry-to-module path
        # (inclusive), recomputed from the spec's topological reduction
        # whenever the shares change: O(1) per drop decision.
        self._cum_shares: dict[str, float] = {}
        if name is not None:
            self.name = name

    # -- wiring ---------------------------------------------------------------

    def bind(self, cluster) -> None:
        super().bind(cluster)
        self.planner.bind(cluster)
        self._recompute_static_budgets()

    def make_queue(self, module) -> RequestQueue:
        if self.priority.mode == PriorityMode.FCFS:
            return FifoQueue()
        return DeadlineDepqQueue(module, self.priority)

    def on_tick(self, now: float) -> None:
        """Per-second state synchronisation (Figure 4, steps 1-3)."""
        assert self.cluster is not None
        self.planner.refresh(now)
        for module in self.cluster.modules.values():
            self.priority.update(module, now)
        if self.budget_mode == BudgetMode.WCL:
            self._recompute_wcl_budgets(now)

    # -- dropping decision ------------------------------------------------------

    def should_drop(self, ctx: DropContext) -> DropReason | None:
        if self.budget_mode == BudgetMode.E2E:
            if self.broker.estimate_total(ctx) > ctx.slo:
                return DropReason.ESTIMATED_VIOLATION
            return None
        # Split-budget variants compare the *cumulative* elapsed time plus
        # the current module's execution against the budget allocated to
        # modules 1..k — they never see downstream state (the point of the
        # ablation).
        assert self.cluster is not None
        budget = self._cumulative_budget(
            self.cluster.hop_id(ctx.module), ctx.slo
        )
        if ctx.elapsed + ctx.batch_duration > budget:
            return DropReason.BUDGET_EXCEEDED
        return None

    # -- split-budget ablations ---------------------------------------------------

    def _recompute_static_budgets(self) -> None:
        """PARD-split: fixed shares proportional to profiled duration(1)."""
        assert self.cluster is not None
        spec = self.cluster.spec
        d1 = {
            m.id: self.cluster.registry.get(m.model).duration(1)
            for m in spec.modules
        }
        total = sum(d1.values())
        self._budget_shares = {mid: d / total for mid, d in d1.items()}
        self._cum_shares = spec.cumulative_upstream_max(self._budget_shares)

    def _recompute_wcl_budgets(self, now: float) -> None:
        """PARD-WCL: shares proportional to runtime worst-case latency.

        WCL of a module = recent avg queueing delay + profiled duration +
        worst observed batch wait (falling back to the full duration when
        no samples exist yet).
        """
        assert self.cluster is not None
        wcl: dict[str, float] = {}
        for mid, module in self.cluster.modules.items():
            waits = module.stats.recent_batch_waits(now)
            worst_wait = max(waits) if waits else module.planned_duration
            wcl[mid] = (
                module.stats.avg_queue_delay(now)
                + module.planned_duration
                + worst_wait
            )
        total = sum(wcl.values())
        if total > 0:
            self._budget_shares = {mid: v / total for mid, v in wcl.items()}
            assert self.cluster is not None
            self._cum_shares = self.cluster.spec.cumulative_upstream_max(
                self._budget_shares
            )

    def _cumulative_budget(self, module_id: str, slo: float) -> float:
        """SLO share allocated to modules from the entry through ``module_id``.

        For DAGs the share of a module is counted on the heaviest upstream
        path (consistent with max-over-paths estimation) — read off the
        spec's :meth:`~repro.pipeline.spec.PipelineSpec.cumulative_upstream_max`
        table, which divides the budget over the token flow frozen in the
        spec instead of recursing over (exponentially many) paths.
        """
        return slo * self._cum_shares[module_id]

    def describe(self) -> str:
        # Bracketed so a param-bearing display name ("PARD(lam=0.3)") does
        # not read as nested calls.
        return (
            f"{self.name} [lam={self.planner.lam}, sub={self.broker.sub_mode}, "
            f"wait={self.planner.wait_mode}, prio={self.priority.mode}, "
            f"budget={self.budget_mode}]"
        )
