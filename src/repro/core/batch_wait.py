"""Batch-wait-time estimation (the "sweet spot" w_k of §4.2).

A request's batch wait at one module is uniform on [0, d] (Figure 3b);
the *aggregated* wait over the remaining modules is a sum of weakly
correlated uniforms, which concentrates around half its support as modules
cascade (Figure 6, central limit theorem).  PARD estimates

    w_k = F^{-1}_{k+1 -> N}(lambda)

the lambda-quantile of that aggregated distribution, as its forward batch
wait estimate: lambda = 0 reproduces the PARD-lower ablation (w = 0),
lambda = 1 reproduces PARD-upper (w = sum d_i), and the default lambda = 0.1
balances mis-kept against mis-dropped requests.

Two estimators are provided:

* a closed-form Irwin-Hall model (equal-duration analysis; used to verify
  the paper's printed quantiles 0.31/0.28/0.22/0.10 in tests), and
* an empirical sampler that draws per-module waits from observed runtime
  samples when available, else uniform(0, d_i) — this is what the State
  Planner uses online (complexity O(M * (N - k + 1)), M = 10,000 default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def irwin_hall_cdf(x: float, n: int) -> float:
    """CDF of the sum of ``n`` independent Uniform(0, 1) variables."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if x <= 0:
        return 0.0
    if x >= n:
        return 1.0
    total = 0.0
    for k in range(int(math.floor(x)) + 1):
        total += (-1) ** k * math.comb(n, k) * (x - k) ** n
    return total / math.factorial(n)


def irwin_hall_quantile(p: float, n: int, tol: float = 1e-10) -> float:
    """Inverse CDF of the Irwin-Hall(n) distribution via bisection."""
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    if p == 0:
        return 0.0
    if p == 1:
        return float(n)
    lo, hi = 0.0, float(n)
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if irwin_hall_cdf(mid, n) < p:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def aggregated_wait_quantile_uniform(
    durations: list[float], lam: float
) -> float:
    """lambda-quantile of sum of independent Uniform(0, d_i) waits.

    For equal durations this is exactly ``d * IrwinHall_n^{-1}(lambda)``;
    for unequal durations we use a normal approximation refined by Monte
    Carlo only in the empirical estimator — here the equal-d fast path plus
    a moment-matched Irwin-Hall rescaling keeps the call cheap and exact in
    the common (profiled, similar-duration) case.
    """
    if not durations:
        return 0.0
    if any(d < 0 for d in durations):
        raise ValueError("durations must be >= 0")
    n = len(durations)
    total = sum(durations)
    if total == 0:
        return 0.0
    d_equal = total / n
    if all(abs(d - d_equal) < 1e-12 for d in durations):
        return d_equal * irwin_hall_quantile(lam, n)
    # Moment-matched Irwin-Hall: match mean and variance of the true sum.
    mean = total / 2
    var = sum(d * d for d in durations) / 12.0
    # An Irwin-Hall(m) scaled by s has mean s*m/2 and var s^2*m/12.
    m = max(1, round((mean * mean * 4) / (12.0 * var)))
    s = mean * 2 / m
    q = s * irwin_hall_quantile(lam, m)
    return float(min(q, total))


@dataclass
class BatchWaitEstimator:
    """Empirical estimator of the aggregated downstream batch wait.

    Per module it draws ``samples`` waits — from observed runtime samples
    when at least ``min_observed`` are available, otherwise from the
    uniform(0, d_i) model — sums across modules and returns the requested
    quantile.  This is the State Planner's "three-round heuristic":
    (1) sample recent arrivals, (2) pick quantile lambda, (3) invert.
    """

    lam: float = 0.1
    samples: int = 10_000
    min_observed: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.lam <= 1:
            raise ValueError("lambda must be in [0, 1]")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")
        self._rng = np.random.default_rng(self.seed)

    def estimate(
        self,
        durations: list[float],
        observed: list[list[float]] | None = None,
    ) -> float:
        """w_k for downstream modules with profiled ``durations``.

        ``observed[i]`` optionally holds recent runtime batch-wait samples
        of module i (same order as ``durations``).
        """
        if not durations:
            return 0.0
        if self.lam == 0.0:
            return 0.0
        if self.lam == 1.0:
            return float(sum(durations))
        total = np.zeros(self.samples)
        for i, d in enumerate(durations):
            obs = observed[i] if observed is not None else None
            if obs and len(obs) >= self.min_observed:
                draws = self._rng.choice(np.asarray(obs, dtype=float), self.samples)
            else:
                draws = self._rng.uniform(0.0, d, self.samples)
            total += draws
        return float(np.quantile(total, self.lam))
