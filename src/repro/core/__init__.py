"""PARD's core: proactive dropping and adaptive priority."""

from .batch_wait import (
    BatchWaitEstimator,
    aggregated_wait_quantile_uniform,
    irwin_hall_cdf,
    irwin_hall_quantile,
)
from .broker import LatencyEstimate, RequestBroker, SubMode
from .depq import MinMaxHeap
from .policy import BudgetMode, PardPolicy
from .priority import (
    AdaptivePriorityController,
    DeadlineDepqQueue,
    LoadSmoother,
    PriorityMode,
    TransitionEvent,
)
from .state_planner import ModuleState, PathMode, StatePlanner, WaitMode

__all__ = [
    "AdaptivePriorityController",
    "BatchWaitEstimator",
    "BudgetMode",
    "DeadlineDepqQueue",
    "LatencyEstimate",
    "LoadSmoother",
    "MinMaxHeap",
    "ModuleState",
    "PardPolicy",
    "PathMode",
    "PriorityMode",
    "RequestBroker",
    "StatePlanner",
    "SubMode",
    "TransitionEvent",
    "WaitMode",
    "aggregated_wait_quantile_uniform",
    "irwin_hall_cdf",
    "irwin_hall_quantile",
]
