"""Request Broker: per-request end-to-end latency estimation (Equation 3).

At decision time ``t_b`` (a request is drawn from the DEPQ toward a forming
batch) the broker has all bi-directional runtime information:

* backward — ``L_pre + Q_k + W_k = t_e - t_s`` (elapsed time to the expected
  batch start; t_s travels with the request, t_e is known because the next
  batch starts exactly when the executing one finishes);
* current — ``D_k = d_k`` from offline profiling at the planned batch size;
* forward — ``L_sub`` from the State Planner (Equation 3b's q/d/w sums,
  maximum over DAG paths).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interfaces import DropContext
from .state_planner import StatePlanner


class SubMode:
    """What the forward component L_sub includes (ablation knob)."""

    FULL = "full"  # PARD: sum q + sum d + w_k
    NONE = "none"  # PARD-back: L_sub = 0 (Clockwork/Nexus/Scrooge-like)
    DURATIONS = "durations"  # PARD-sf: sum d only (DREAM-like)

    ALL = (FULL, NONE, DURATIONS)


@dataclass(frozen=True)
class LatencyEstimate:
    """Decomposed end-to-end estimate for one request at one module."""

    backward: float  # t_e - t_s: everything up to the expected batch start
    current_exec: float  # d_k
    sub: float  # L_sub estimate for downstream modules

    @property
    def total(self) -> float:
        return self.backward + self.current_exec + self.sub


class RequestBroker:
    """Computes Equation 3 estimates from a bound State Planner."""

    def __init__(self, planner: StatePlanner, sub_mode: str = SubMode.FULL) -> None:
        if sub_mode not in SubMode.ALL:
            raise ValueError(f"unknown sub mode {sub_mode!r}")
        self.planner = planner
        self.sub_mode = sub_mode

    def estimate(self, ctx: DropContext) -> LatencyEstimate:
        """End-to-end latency estimate for the request in ``ctx``."""
        backward = ctx.expected_start - ctx.request.sent_at
        return LatencyEstimate(
            backward=backward,
            current_exec=ctx.batch_duration,
            sub=self._sub(ctx),
        )

    def estimate_total(self, ctx: DropContext) -> float:
        """Equation 3's scalar total, without building the decomposition.

        The drop decision only compares the total against the SLO; this
        runs once per drawn request, so it skips the frozen-dataclass
        allocation :meth:`estimate` pays.
        """
        return (
            ctx.expected_start - ctx.request.sent_at
            + ctx.batch_duration
            + self._sub(ctx)
        )

    def _sub(self, ctx: DropContext) -> float:
        """Forward component L_sub for the request's current module."""
        assert self.planner.cluster is not None
        # Translate the data-plane module to this pipeline's DAG position:
        # in a shared cluster the pool id is not the tenant's module id.
        module_id = self.planner.cluster.hop_id(ctx.module)
        if self.sub_mode == SubMode.NONE:
            return 0.0
        if self.sub_mode == SubMode.DURATIONS:
            return self._durations_only(module_id)
        return self.planner.sub_estimate(module_id)

    def _durations_only(self, module_id: str) -> float:
        """Max over downstream paths of the profiled execution durations.

        Read off the spec's single reverse-topological reduction instead
        of enumerating paths (exponential on dense DAGs).  Durations are
        refreshed by the planner per tick, so the table cannot be frozen
        at bind time; one O(V + E) pass per estimate is still far cheaper
        than the path walk it replaces.
        """
        assert self.planner.cluster is not None
        spec = self.planner.cluster.spec
        durations = {mid: self.planner.state(mid).duration for mid in spec.module_ids}
        return spec.downstream_path_max(durations)[module_id]
