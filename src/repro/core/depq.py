"""Double-ended priority queue backed by a min-max heap.

PARD keeps each worker's pending requests in a DEPQ keyed by remaining
latency budget, so it can pop either the request with the *smallest*
remaining budget (Low-Budget-First, steady workloads) or the *largest*
(High-Budget-First, overload) in O(log n) — the data structure the paper
names in §4.3 and measures in §5.4.

The implementation is the classic Atkinson et al. min-max heap: even levels
are min-ordered, odd levels max-ordered.  Entries carry an insertion
sequence number so equal keys pop in FIFO order (deterministic runs).
"""

from __future__ import annotations

import itertools
from typing import Any, Generic, TypeVar

T = TypeVar("T")


def _level(i: int) -> int:
    """Heap level of index ``i`` (root = level 0)."""
    return (i + 1).bit_length() - 1


def _is_min_level(i: int) -> bool:
    return _level(i) % 2 == 0


class MinMaxHeap(Generic[T]):
    """Min-max heap over (key, seq, item) entries."""

    def __init__(self) -> None:
        self._h: list[tuple[float, int, T]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._h)

    def __bool__(self) -> bool:
        return bool(self._h)

    # -- public API ---------------------------------------------------------

    def push(self, key: float, item: T) -> None:
        """Insert ``item`` with priority ``key``."""
        self._h.append((key, next(self._seq), item))
        self._bubble_up(len(self._h) - 1)

    def peek_min(self) -> T:
        """Item with the smallest key (FIFO among equal keys)."""
        return self._h[self._min_index()][2]

    def peek_max(self) -> T:
        """Item with the largest key (LIFO among equal keys)."""
        return self._h[self._max_index()][2]

    def min_key(self) -> float:
        return self._h[self._min_index()][0]

    def max_key(self) -> float:
        return self._h[self._max_index()][0]

    def pop_min(self) -> T:
        """Remove and return the item with the smallest key."""
        return self._pop_at(self._min_index())

    def pop_max(self) -> T:
        """Remove and return the item with the largest key."""
        return self._pop_at(self._max_index())

    def items(self) -> list[T]:
        """All items in heap (arbitrary) order."""
        return [e[2] for e in self._h]

    # -- internals ----------------------------------------------------------

    def _min_index(self) -> int:
        if not self._h:
            raise IndexError("empty heap")
        return 0

    def _max_index(self) -> int:
        h = self._h
        if not h:
            raise IndexError("empty heap")
        if len(h) == 1:
            return 0
        if len(h) == 2:
            return 1
        # Max is one of the two children of the root (level 1 is max level).
        # The heap's total order is (key, seq), so the comparison must use
        # the same order to stay consistent with the invariant.
        return 1 if self._less(h[2], h[1]) else 2

    def _pop_at(self, i: int) -> T:
        h = self._h
        item = h[i][2]
        last = h.pop()
        if i < len(h):
            h[i] = last
            self._trickle_down(i)
        return item

    @staticmethod
    def _less(a: tuple[float, int, Any], b: tuple[float, int, Any]) -> bool:
        """Strict ordering on (key, seq): seq breaks ties FIFO.

        Seqs are unique, so comparing the full entries is equivalent —
        the comparison never falls through to the item — and avoids
        building a key tuple per probe.
        """
        return a < b

    def _swap(self, i: int, j: int) -> None:
        h = self._h
        h[i], h[j] = h[j], h[i]

    def _bubble_up(self, i: int) -> None:
        if i == 0:
            return
        h = self._h
        parent = (i - 1) >> 1
        if _is_min_level(i):
            if self._less(h[parent], h[i]):
                self._swap(i, parent)
                self._bubble_up_grand(parent, is_min=False)
            else:
                self._bubble_up_grand(i, is_min=True)
        else:
            if self._less(h[i], h[parent]):
                self._swap(i, parent)
                self._bubble_up_grand(parent, is_min=True)
            else:
                self._bubble_up_grand(i, is_min=False)

    def _bubble_up_grand(self, i: int, is_min: bool) -> None:
        h = self._h
        while i >= 3:
            grand = ((i - 1) >> 1) - 1 >> 1
            if is_min:
                if self._less(h[i], h[grand]):
                    self._swap(i, grand)
                    i = grand
                else:
                    return
            else:
                if self._less(h[grand], h[i]):
                    self._swap(i, grand)
                    i = grand
                else:
                    return

    def _trickle_down(self, i: int) -> None:
        # Inline scan over (up to) two children and four grandchildren:
        # same extremum and tie-break order as the old list-building
        # version ((key, seq) total order, first index wins ties), without
        # allocating a descendants list + key tuples per level.
        is_min = _is_min_level(i)
        h = self._h
        n = len(h)
        while True:
            first_child = 2 * i + 1
            if first_child >= n:
                return
            # Unique seqs mean full-entry tuple comparison never reaches
            # the item, so entries compare directly (see _less).
            m = first_child
            mk = h[m]
            is_grand = False
            for c in (first_child, first_child + 1):
                if c >= n:
                    break
                if c != first_child:
                    ck = h[c]
                    if (ck < mk) if is_min else (ck > mk):
                        m, mk, is_grand = c, ck, False
                for g in (2 * c + 1, 2 * c + 2):
                    if g >= n:
                        break
                    gk = h[g]
                    if (gk < mk) if is_min else (gk > mk):
                        m, mk, is_grand = g, gk, True
            if is_min:
                if not self._less(h[m], h[i]):
                    return
            else:
                if not self._less(h[i], h[m]):
                    return
            self._swap(i, m)
            if not is_grand:
                return
            parent = (m - 1) >> 1
            if is_min:
                if self._less(h[parent], h[m]):
                    self._swap(m, parent)
            else:
                if self._less(h[m], h[parent]):
                    self._swap(m, parent)
            i = m
